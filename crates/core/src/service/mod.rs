//! `nx-core::service` — the multi-tenant accelerator front end.
//!
//! The paper's central systems contribution (§IV) is *sharing*: thousands
//! of user-space processes submit CRBs to one on-die engine through VAS
//! windows, and credit-based flow control keeps a storm of tenants from
//! starving each other. This module productionizes that model on top of
//! the existing engine:
//!
//! * Each tenant opens a **receive window** ([`TenantHandle`]) with a
//!   credit budget — one credit per in-flight request, exactly the
//!   RX-window credit accounting `nx-sys::vas` models at the instruction
//!   level.
//! * Admission is **typed**: a submission either takes a credit and
//!   enters the per-tenant queue, or is rejected with
//!   [`ServiceError::NoCredit`] (window exhausted) or
//!   [`ServiceError::QueueFull`] (global engine queue at its bounded
//!   depth). Rejections are attributed in [`NxStats`](crate::NxStats)
//!   (`credit_rejects` / `depth_rejects`) so backpressure is observable.
//! * A **deficit-weighted round-robin** ([`sched::DwrrScheduler`]) drains
//!   the per-tenant queues by QoS class ([`QosClass`]): `Latency` tenants
//!   get ~16× the byte share of `Background` under contention, and no
//!   backlogged tenant is ever starved.
//! * Tiny payloads (≤ the configured coalesce limit) are **coalesced**
//!   into one engine submission of up to `coalesce_batch` requests and
//!   de-multiplexed on completion, amortizing the per-paste submission
//!   cost for RPC-sized traffic.
//!
//! The deterministic open-loop driver in [`loadgen`] replays the same
//! admission/scheduling/credit machinery on a virtual clock, which is how
//! the fairness and tail-latency properties are tested without timing
//! flakiness.

pub mod loadgen;
pub mod sched;

pub use loadgen::{run_storm, run_storm_faulted, LoadGen, StormConfig, StormReport, TenantLoad};
pub use sched::{jain_index, CreditAccount, DwrrScheduler, QosClass, Rejected, TenantSpec};

use crate::framing::Format;
use crate::stats::NxStats;
use crate::{CompressOptions, Compressed, Nx, COMPLETE_CYCLES, SUBMIT_CYCLES};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use nx_telemetry::{
    LogHistogram, MetricSource, MetricValue, Stage, TelemetrySink, TraceContext, NO_PARENT,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Global bound on queued-but-undispatched requests across all
    /// tenants (the shared engine queue depth). Admissions beyond it are
    /// rejected [`ServiceError::QueueFull`].
    pub engine_depth: usize,
    /// DWRR byte grant per weight unit per ring pass.
    pub quantum_bytes: u64,
    /// Payloads at or under this size are eligible for coalescing into
    /// one engine submission (0 disables coalescing).
    pub coalesce_limit: u64,
    /// Max requests per coalesced submission.
    pub coalesce_batch: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            engine_depth: 256,
            quantum_bytes: 32 << 10,
            coalesce_limit: 4096,
            coalesce_batch: 8,
        }
    }
}

/// Typed service-path errors. Admission never silently drops work: a
/// submission either enters the queue or returns one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServiceError {
    /// The tenant's receive window is out of credits.
    NoCredit,
    /// The shared engine queue is at its bounded depth.
    QueueFull,
    /// The service was closed before the request completed.
    Closed,
    /// The engine failed the request with a typed error (only reachable
    /// under fault injection with software fallback disabled).
    Engine(crate::Error),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::NoCredit => write!(f, "receive window out of credits"),
            ServiceError::QueueFull => write!(f, "engine queue at bounded depth"),
            ServiceError::Closed => write!(f, "service closed"),
            ServiceError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

/// A completed service request: the compression result plus the
/// per-tenant sequence numbers the ordering tests assert on.
#[derive(Debug)]
pub struct Served {
    /// The compression result.
    pub compressed: Compressed,
    /// Per-tenant admission sequence number (0-based, assigned at
    /// admission in submission order).
    pub admit_seq: u64,
    /// Per-tenant completion sequence number. The scheduler keeps each
    /// tenant's queue FIFO, so `complete_seq == admit_seq` for every
    /// request of a tenant.
    pub complete_seq: u64,
    /// Number of requests in the engine submission this rode in
    /// (>1 means it was coalesced).
    pub batched: usize,
    /// Modeled request latency in engine cycles (amortized submit +
    /// engine + completion).
    pub latency_cycles: u64,
}

/// Completion handle for one admitted request.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Result<Served, ServiceError>>,
}

impl Ticket {
    /// Blocks until the request completes or fails typed.
    pub fn wait(self) -> Result<Served, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::Closed))
    }

    /// Bounded wait; hands the ticket back on timeout.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Result<Served, ServiceError>, Ticket> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Ok(r),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Err(self),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                Ok(Err(ServiceError::Closed))
            }
        }
    }
}

/// One queued request.
struct Job {
    data: Vec<u8>,
    format: Format,
    opts: CompressOptions,
    tenant: usize,
    admit_seq: u64,
    /// Trace continuation minted at admission: the engine thread resumes
    /// this request's timeline exactly where the admit span left it.
    ctx: TraceContext,
    /// Tenant queue depth observed at admission (models queue wait).
    depth_at_admit: u64,
    reply: Sender<Result<Served, ServiceError>>,
}

/// Mutable service state behind one lock: the scheduler plus per-tenant
/// credit/sequence accounting.
struct State {
    sched: DwrrScheduler<Job>,
    tenants: Vec<TenantState>,
    open: bool,
}

struct TenantState {
    credits: CreditAccount,
    admit_seq: u64,
    complete_seq: u64,
}

struct Shared {
    state: Mutex<State>,
    // (Debug below elides the state: jobs hold reply channels.)
    /// Wake-up tokens for the engine thread (one per push; spurious
    /// tokens are harmless, a missed token is covered by the engine's
    /// bounded recv timeout).
    signal: Sender<()>,
    nx_stats: Arc<NxStats>,
    stats: Arc<ServiceStats>,
    depth_limit: usize,
    /// The engine handle's sink: admission mints trace contexts here so
    /// service spans and engine spans share one ring (and one sampler).
    telemetry: TelemetrySink,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("depth_limit", &self.depth_limit)
            .finish_non_exhaustive()
    }
}

/// Per-tenant observable counters + histograms, exported through
/// `nx-telemetry` as the `nx-service` metric source.
#[derive(Debug)]
pub struct TenantStats {
    name: String,
    class: QosClass,
    credits: u32,
    submitted: AtomicU64,
    admitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected_no_credit: AtomicU64,
    rejected_queue_full: AtomicU64,
    coalesced_requests: AtomicU64,
    /// Modeled per-request latency (cycles).
    latency: LogHistogram,
    /// Tenant queue depth sampled at each admission.
    depth: LogHistogram,
}

impl TenantStats {
    fn new(spec: &TenantSpec) -> Self {
        Self {
            name: spec.name.clone(),
            class: spec.class,
            credits: spec.credits,
            submitted: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rejected_no_credit: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            coalesced_requests: AtomicU64::new(0),
            latency: LogHistogram::new(),
            depth: LogHistogram::new(),
        }
    }

    /// Tenant name (metric label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tenant's QoS class.
    pub fn class(&self) -> QosClass {
        self.class
    }

    /// The window's credit budget.
    pub fn credits(&self) -> u32 {
        self.credits
    }

    /// Submission attempts (admitted + rejected).
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Requests admitted into the queue.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Requests completed successfully.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Requests that failed typed after admission.
    pub fn failed(&self) -> u64 {
        self.failed.load(Ordering::Relaxed)
    }

    /// Submissions rejected for lack of window credit.
    pub fn rejected_no_credit(&self) -> u64 {
        self.rejected_no_credit.load(Ordering::Relaxed)
    }

    /// Submissions rejected by the global depth bound.
    pub fn rejected_queue_full(&self) -> u64 {
        self.rejected_queue_full.load(Ordering::Relaxed)
    }

    /// Requests that rode in a coalesced submission.
    pub fn coalesced_requests(&self) -> u64 {
        self.coalesced_requests.load(Ordering::Relaxed)
    }

    /// Modeled per-request latency histogram (cycles).
    pub fn latency(&self) -> &LogHistogram {
        &self.latency
    }

    /// Tenant queue-depth histogram (sampled at admission).
    pub fn depth(&self) -> &LogHistogram {
        &self.depth
    }
}

/// Aggregate service statistics: one [`TenantStats`] per window plus
/// engine-side batch counters.
#[derive(Debug, Default)]
pub struct ServiceStats {
    tenants: Mutex<Vec<Arc<TenantStats>>>,
    batches: AtomicU64,
    coalesced_batches: AtomicU64,
}

impl ServiceStats {
    /// Snapshot of every tenant's stats handle.
    pub fn tenants(&self) -> Vec<Arc<TenantStats>> {
        self.tenants.lock().clone()
    }

    /// Engine submissions performed (batches, coalesced or not).
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Engine submissions that carried more than one request.
    pub fn coalesced_batches(&self) -> u64 {
        self.coalesced_batches.load(Ordering::Relaxed)
    }

    /// Jain fairness index over per-tenant completed counts.
    pub fn jain_completed(&self) -> f64 {
        let xs: Vec<f64> = self
            .tenants
            .lock()
            .iter()
            .map(|t| t.completed() as f64)
            .collect();
        jain_index(&xs)
    }
}

impl MetricSource for ServiceStats {
    fn collect(&self, out: &mut Vec<(String, MetricValue)>) {
        let tenants = self.tenants.lock().clone();
        for t in &tenants {
            let label = format!("{{tenant=\"{}\",class=\"{}\"}}", t.name, t.class.name());
            out.push((
                format!("nx_service_submitted_total{label}"),
                MetricValue::Counter(t.submitted()),
            ));
            out.push((
                format!("nx_service_admitted_total{label}"),
                MetricValue::Counter(t.admitted()),
            ));
            out.push((
                format!("nx_service_completed_total{label}"),
                MetricValue::Counter(t.completed()),
            ));
            out.push((
                format!("nx_service_failed_total{label}"),
                MetricValue::Counter(t.failed()),
            ));
            let creds = format!(
                "{{tenant=\"{}\",class=\"{}\",cause=\"credit\"}}",
                t.name,
                t.class.name()
            );
            out.push((
                format!("nx_service_rejected_total{creds}"),
                MetricValue::Counter(t.rejected_no_credit()),
            ));
            let depth = format!(
                "{{tenant=\"{}\",class=\"{}\",cause=\"depth\"}}",
                t.name,
                t.class.name()
            );
            out.push((
                format!("nx_service_rejected_total{depth}"),
                MetricValue::Counter(t.rejected_queue_full()),
            ));
            out.push((
                format!("nx_service_coalesced_requests_total{label}"),
                MetricValue::Counter(t.coalesced_requests()),
            ));
            out.push((
                format!("nx_service_latency_cycles{label}"),
                MetricValue::Histogram(t.latency.snapshot()),
            ));
            out.push((
                format!("nx_service_queue_depth{label}"),
                MetricValue::Histogram(t.depth.snapshot()),
            ));
        }
        out.push((
            "nx_service_batches_total".to_string(),
            MetricValue::Counter(self.batches()),
        ));
        out.push((
            "nx_service_coalesced_batches_total".to_string(),
            MetricValue::Counter(self.coalesced_batches()),
        ));
    }
}

/// The multi-tenant service: per-tenant receive windows over one shared
/// engine, DWRR-scheduled, credit-admitted.
///
/// Built with [`Nx::service`]; dropped or [`close`](Self::close)d, it
/// drains every admitted request before the engine thread exits.
#[derive(Debug)]
pub struct NxService {
    shared: Arc<Shared>,
    engine: Option<JoinHandle<()>>,
}

/// One tenant's receive window: the submission handle.
///
/// Cloning shares the window (and its credit budget) — the same way
/// multiple threads of one process share a VAS window.
#[derive(Debug, Clone)]
pub struct TenantHandle {
    shared: Arc<Shared>,
    tenant: usize,
    stats: Arc<TenantStats>,
    /// Default options for [`submit`](Self::submit) — e.g. a per-tenant
    /// canned profile set at window-open time. Per-request
    /// [`submit_with`](Self::submit_with) overrides them.
    opts: CompressOptions,
}

impl Nx {
    /// Opens a multi-tenant service over this accelerator handle.
    ///
    /// The service shares the handle's engine, stats, fault injector and
    /// telemetry: requests go through the same recovery protocol as
    /// direct calls, and if the handle has an attached telemetry
    /// registry, per-tenant metrics register as the `nx-service` source.
    pub fn service(&self, config: ServiceConfig) -> NxService {
        NxService::start(self.clone(), config)
    }
}

impl NxService {
    fn start(nx: Nx, config: ServiceConfig) -> Self {
        let stats = Arc::new(ServiceStats::default());
        if let Some(reg) = nx.telemetry().registry() {
            reg.register_source("nx-service", Arc::clone(&stats) as Arc<dyn MetricSource>);
        }
        let (signal, wake) = unbounded::<()>();
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                sched: DwrrScheduler::new(
                    config.quantum_bytes,
                    config.coalesce_limit,
                    config.coalesce_batch,
                ),
                tenants: Vec::new(),
                open: true,
            }),
            signal,
            nx_stats: Arc::clone(nx.stats_arc()),
            stats: Arc::clone(&stats),
            depth_limit: config.engine_depth.max(1),
            telemetry: nx.telemetry().clone(),
        });
        let engine_shared = Arc::clone(&shared);
        let engine = std::thread::Builder::new()
            .name("nx-service".into())
            .spawn(move || Self::engine_loop(nx, engine_shared, wake))
            .ok();
        Self { shared, engine }
    }

    /// Opens a receive window for a new tenant and returns its handle.
    pub fn open_window(&self, spec: TenantSpec) -> TenantHandle {
        self.open_window_with(spec, CompressOptions::default())
    }

    /// As [`open_window`](Self::open_window) with per-tenant default
    /// [`CompressOptions`] — the way a tenant binds a canned profile (or
    /// level/engine choice) once at window-open instead of per request.
    pub fn open_window_with(&self, spec: TenantSpec, opts: CompressOptions) -> TenantHandle {
        let tstats = Arc::new(TenantStats::new(&spec));
        let mut st = self.shared.state.lock();
        let idx = st.sched.add_tenant(spec.class.weight());
        st.tenants.push(TenantState {
            credits: CreditAccount::new(spec.credits),
            admit_seq: 0,
            complete_seq: 0,
        });
        drop(st);
        self.shared.stats.tenants.lock().push(Arc::clone(&tstats));
        TenantHandle {
            shared: Arc::clone(&self.shared),
            tenant: idx,
            stats: tstats,
            opts,
        }
    }

    /// Aggregate service statistics.
    pub fn stats(&self) -> &Arc<ServiceStats> {
        &self.shared.stats
    }

    /// Verifies credit conservation across all windows: no credits held,
    /// every admitted request completed or failed typed. Meaningful once
    /// all tickets have been waited on.
    pub fn credits_conserved(&self) -> bool {
        self.shared
            .state
            .lock()
            .tenants
            .iter()
            .all(|t| t.credits.conservation_ok())
    }

    /// Closes the service: admissions stop, queued requests drain, the
    /// engine thread exits.
    pub fn close(mut self) {
        self.close_inner();
    }

    fn close_inner(&mut self) {
        self.shared.state.lock().open = false;
        let _ = self.shared.signal.send(());
        if let Some(h) = self.engine.take() {
            let _ = h.join();
        }
    }

    fn engine_loop(nx: Nx, shared: Arc<Shared>, wake: Receiver<()>) {
        loop {
            let (batch, still_open) = {
                let mut st = shared.state.lock();
                (st.sched.next_batch(), st.open)
            };
            let batch = match batch {
                Some(b) => b,
                None => {
                    if !still_open {
                        return;
                    }
                    // Bounded wait covers any lost-token race; a token per
                    // push makes the common case immediate.
                    let _ = wake.recv_timeout(Duration::from_millis(20));
                    continue;
                }
            };
            let n = batch.items.len();
            shared.stats.batches.fetch_add(1, Ordering::Relaxed);
            if batch.coalesced {
                shared
                    .stats
                    .coalesced_batches
                    .fetch_add(1, Ordering::Relaxed);
            }
            // One engine submission for the whole batch: the paste cost is
            // paid once and amortized across the coalesced requests, then
            // completions are de-multiplexed to their tickets.
            let submit_share = SUBMIT_CYCLES / n.max(1) as u64;
            let tenant_stats = shared.stats.tenants.lock().clone();
            for job in batch.items {
                // Resume the request's timeline where admission left it:
                // a queue-wait span (modeled from the depth observed at
                // admission), a dispatch span carrying the amortized
                // paste share, then the engine stages as children of the
                // dispatch span — one trace id end to end.
                let mut ctx = job.ctx;
                let wait = job.depth_at_admit * SUBMIT_CYCLES;
                if ctx.sampled {
                    shared.telemetry.emit(
                        ctx.trace_id,
                        ctx.child_seq,
                        NO_PARENT,
                        Stage::QueueWait,
                        job.tenant as u32,
                        ctx.at_cycles,
                        wait,
                        job.data.len() as u64,
                        job.depth_at_admit,
                    );
                }
                ctx.child_seq += 1;
                ctx.at_cycles += wait;
                let dispatch_seq = ctx.child_seq;
                if ctx.sampled {
                    shared.telemetry.emit(
                        ctx.trace_id,
                        dispatch_seq,
                        NO_PARENT,
                        Stage::Dispatch,
                        job.tenant as u32,
                        ctx.at_cycles,
                        submit_share,
                        job.data.len() as u64,
                        n as u64,
                    );
                }
                ctx.child_seq += 1;
                ctx.at_cycles += submit_share;
                let child = ctx.child(dispatch_seq, ctx.child_seq, ctx.at_cycles);
                let result = nx.compress_in_trace(&job.data, job.format, job.opts, &child);
                let mut st = shared.state.lock();
                let tenant = &mut st.tenants[job.tenant];
                let complete_seq = tenant.complete_seq;
                tenant.complete_seq += 1;
                match result {
                    Ok(compressed) => {
                        tenant.credits.complete();
                        drop(st);
                        let latency = submit_share + compressed.report.cycles + COMPLETE_CYCLES;
                        if let Some(ts) = tenant_stats.get(job.tenant) {
                            ts.completed.fetch_add(1, Ordering::Relaxed);
                            // Sampled requests leave their trace id as the
                            // latency bucket's exemplar: the tail of this
                            // histogram links straight to a span breakdown.
                            if ctx.sampled {
                                ts.latency.record_traced(latency, ctx.trace_id);
                            } else {
                                ts.latency.record(latency);
                            }
                            if n > 1 {
                                ts.coalesced_requests.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        let _ = job.reply.send(Ok(Served {
                            compressed,
                            admit_seq: job.admit_seq,
                            complete_seq,
                            batched: n,
                            latency_cycles: latency,
                        }));
                    }
                    Err(e) => {
                        tenant.credits.fail();
                        drop(st);
                        if let Some(ts) = tenant_stats.get(job.tenant) {
                            ts.failed.fetch_add(1, Ordering::Relaxed);
                        }
                        let _ = job.reply.send(Err(ServiceError::Engine(e)));
                    }
                }
            }
        }
    }
}

impl Drop for NxService {
    fn drop(&mut self) {
        self.close_inner();
    }
}

impl TenantHandle {
    /// Submits a compression request at default options.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NoCredit`] when the window's credits are all in
    /// flight; [`ServiceError::QueueFull`] when the global engine queue is
    /// at depth; [`ServiceError::Closed`] after shutdown. Rejections never
    /// consume a credit.
    pub fn submit(&self, data: Vec<u8>, format: Format) -> Result<Ticket, ServiceError> {
        self.submit_with(data, format, self.opts)
    }

    /// The window's default [`CompressOptions`], as fixed at
    /// [`NxService::open_window_with`].
    pub fn default_options(&self) -> CompressOptions {
        self.opts
    }

    /// As [`submit`](Self::submit) with explicit [`CompressOptions`].
    ///
    /// # Errors
    ///
    /// As [`submit`](Self::submit).
    pub fn submit_with(
        &self,
        data: Vec<u8>,
        format: Format,
        opts: CompressOptions,
    ) -> Result<Ticket, ServiceError> {
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        let bytes = data.len() as u64;
        let mut st = self.shared.state.lock();
        if !st.open {
            return Err(ServiceError::Closed);
        }
        if st.sched.queued() >= self.shared.depth_limit {
            drop(st);
            self.stats
                .rejected_queue_full
                .fetch_add(1, Ordering::Relaxed);
            self.shared.nx_stats.record_depth_reject();
            return Err(ServiceError::QueueFull);
        }
        if !st.tenants[self.tenant].credits.try_acquire() {
            drop(st);
            self.stats
                .rejected_no_credit
                .fetch_add(1, Ordering::Relaxed);
            self.shared.nx_stats.record_credit_reject();
            return Err(ServiceError::NoCredit);
        }
        let admit_seq = st.tenants[self.tenant].admit_seq;
        st.tenants[self.tenant].admit_seq += 1;
        let (reply, rx) = bounded(1);
        // Trace admission: span 0 of a fresh request-local timeline. The
        // context advances past the admit span whether or not the trace
        // is sampled, so latency arithmetic never depends on sampling.
        let mut ctx = self.shared.telemetry.begin_trace();
        if ctx.sampled {
            self.shared.telemetry.emit(
                ctx.trace_id,
                ctx.child_seq,
                NO_PARENT,
                Stage::Admit,
                self.tenant as u32,
                ctx.at_cycles,
                SUBMIT_CYCLES,
                bytes,
                self.tenant as u64,
            );
        }
        ctx.child_seq += 1;
        ctx.at_cycles += SUBMIT_CYCLES;
        let depth_at_admit = st.sched.queue_depth(self.tenant) as u64;
        st.sched.push(
            self.tenant,
            Job {
                data,
                format,
                opts,
                tenant: self.tenant,
                admit_seq,
                ctx,
                depth_at_admit,
                reply,
            },
            bytes,
        );
        let depth_now = st.sched.queue_depth(self.tenant) as u64;
        drop(st);
        self.stats.admitted.fetch_add(1, Ordering::Relaxed);
        self.stats.depth.record(depth_now);
        let _ = self.shared.signal.send(());
        Ok(Ticket { rx })
    }

    /// This window's observable statistics.
    pub fn stats(&self) -> &Arc<TenantStats> {
        &self.stats
    }

    /// Credits currently available in this window.
    pub fn credits_available(&self) -> u32 {
        self.shared.state.lock().tenants[self.tenant]
            .credits
            .available()
    }
}
