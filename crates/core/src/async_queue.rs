//! Asynchronous job sessions.
//!
//! POWER9 software submits CRBs and continues working, collecting CSBs
//! later. [`AsyncSession`] reproduces that usage model in API form: jobs
//! go over a channel to a dedicated engine thread (one engine = one NX
//! unit, jobs served FIFO) and each submission returns a [`JobHandle`]
//! whose [`wait`](JobHandle::wait) delivers the result.

use crate::framing::{self, Format};
use crate::stats::NxStats;
use crate::{Compressed, Error, Result};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use nx_accel::{AccelConfig, Accelerator};
use std::sync::Arc;
use std::thread::JoinHandle;

enum Cmd {
    Compress {
        data: Vec<u8>,
        format: Format,
        reply: Sender<Result<Compressed>>,
    },
    Shutdown,
}

/// A queued-submission session backed by one engine thread.
///
/// Dropping the session shuts the engine down after draining queued jobs.
#[derive(Debug)]
pub struct AsyncSession {
    tx: Sender<Cmd>,
    worker: Option<JoinHandle<()>>,
}

/// A pending job's completion handle.
#[derive(Debug)]
pub struct JobHandle {
    rx: Receiver<Result<Compressed>>,
}

impl JobHandle {
    /// Blocks until the engine finishes this job.
    ///
    /// # Errors
    ///
    /// [`Error::EngineClosed`] if the engine stopped before completing it.
    pub fn wait(self) -> Result<Compressed> {
        self.rx.recv().map_err(|_| Error::EngineClosed)?
    }

    /// Non-blocking check; returns the handle back if still pending.
    ///
    /// # Errors
    ///
    /// As [`wait`](Self::wait), once complete.
    pub fn try_wait(self) -> std::result::Result<Result<Compressed>, JobHandle> {
        match self.rx.try_recv() {
            Ok(r) => Ok(r),
            Err(crossbeam::channel::TryRecvError::Empty) => Err(self),
            Err(crossbeam::channel::TryRecvError::Disconnected) => Ok(Err(Error::EngineClosed)),
        }
    }
}

impl AsyncSession {
    /// Spawns the engine thread.
    pub(crate) fn spawn(config: AccelConfig, stats: Arc<NxStats>) -> Self {
        let (tx, rx) = unbounded::<Cmd>();
        let worker = std::thread::Builder::new()
            .name("nx-engine".into())
            .spawn(move || {
                let mut engine = Accelerator::new(config);
                while let Ok(cmd) = rx.recv() {
                    match cmd {
                        Cmd::Compress {
                            data,
                            format,
                            reply,
                        } => {
                            let (raw, report) = engine.compress(&data);
                            let bytes = framing::wrap(raw, &data, format);
                            stats.record_compress(
                                data.len() as u64,
                                bytes.len() as u64,
                                report.cycles,
                            );
                            // Receiver may have been dropped; that's fine.
                            let _ = reply.send(Ok(Compressed { bytes, report }));
                        }
                        Cmd::Shutdown => break,
                    }
                }
            })
            .expect("spawn engine thread");
        Self {
            tx,
            worker: Some(worker),
        }
    }

    /// Queues a compression job; returns immediately.
    ///
    /// # Errors
    ///
    /// [`Error::EngineClosed`] if the engine thread has exited.
    pub fn submit(&self, data: Vec<u8>, format: Format) -> Result<JobHandle> {
        let (reply, rx) = bounded(1);
        self.tx
            .send(Cmd::Compress {
                data,
                format,
                reply,
            })
            .map_err(|_| Error::EngineClosed)?;
        Ok(JobHandle { rx })
    }

    /// Shuts the engine down after draining queued jobs, waiting for the
    /// thread to exit. Preferred over `drop` when callers want to observe
    /// completion.
    pub fn close(mut self) {
        self.close_inner();
    }

    fn close_inner(&mut self) {
        let _ = self.tx.send(Cmd::Shutdown);
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

impl Drop for AsyncSession {
    fn drop(&mut self) {
        self.close_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Nx;

    #[test]
    fn async_jobs_complete_in_order() {
        let nx = Nx::power9();
        let session = nx.async_session();
        let inputs: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 20_000]).collect();
        let handles: Vec<JobHandle> = inputs
            .iter()
            .map(|d| session.submit(d.clone(), Format::Gzip).unwrap())
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let c = h.wait().unwrap();
            let d = nx.decompress(&c.bytes, Format::Gzip).unwrap();
            assert_eq!(d.bytes, inputs[i]);
        }
        session.close();
        assert_eq!(nx.stats().compress_requests(), 8);
    }

    #[test]
    fn try_wait_eventually_succeeds() {
        let nx = Nx::z15();
        let session = nx.async_session();
        let mut handle = session.submit(vec![7u8; 100_000], Format::Zlib).unwrap();
        let result = loop {
            match handle.try_wait() {
                Ok(r) => break r,
                Err(h) => {
                    handle = h;
                    std::thread::yield_now();
                }
            }
        };
        assert!(result.unwrap().bytes.len() < 100_000);
    }

    #[test]
    fn submit_after_close_fails() {
        let nx = Nx::power9();
        let session = nx.async_session();
        let _ = session.tx.send(Cmd::Shutdown);
        // Wait for the worker to exit, then submissions fail.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let r = session.submit(vec![1, 2, 3], Format::RawDeflate);
        if let Ok(h) = r {
            // Raced the shutdown: the reply channel must then disconnect.
            assert!(matches!(h.wait(), Err(Error::EngineClosed) | Ok(_)));
        }
    }

    #[test]
    fn drop_drains_cleanly() {
        let nx = Nx::power9();
        {
            let session = nx.async_session();
            let _h = session.submit(vec![9u8; 50_000], Format::Gzip).unwrap();
            // Dropped with a job still possibly in flight.
        }
        // No panic, no deadlock.
    }
}
