//! Asynchronous job sessions.
//!
//! POWER9 software submits CRBs and continues working, collecting CSBs
//! later. [`AsyncSession`] reproduces that usage model in API form: jobs
//! go over a channel to a dedicated engine thread (one engine = one NX
//! unit, jobs served FIFO) and each submission returns a [`JobHandle`]
//! whose [`wait`](JobHandle::wait) delivers the result.

use crate::framing::{self, Format};
use crate::scratch::BufferPool;
use crate::stats::{Codec, NxStats};
use crate::{software, CompressOptions, Compressed, Error, Result, Trace, SUBMIT_CYCLES};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use nx_accel::{AccelConfig, Accelerator, CompressReport};
use nx_deflate::ProfileRegistry;
use nx_telemetry::{Counter, Gauge, Stage, TelemetrySink, TraceContext};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Queue-side telemetry: an instantaneous depth gauge, a depth
/// histogram sampled at each submission, and an overflow counter —
/// the VAS window-credit accounting the paper describes, in metric
/// form. All no-ops when the sink is disabled.
#[derive(Debug, Clone)]
struct QueueTelemetry {
    sink: TelemetrySink,
    depth: Option<Gauge>,
    overflows: Option<Counter>,
}

impl QueueTelemetry {
    fn new(sink: TelemetrySink) -> Self {
        let depth = sink.registry().map(|r| r.gauge("nx_async_queue_depth"));
        let overflows = sink
            .registry()
            .map(|r| r.counter("nx_async_queue_overflows_total"));
        Self {
            sink,
            depth,
            overflows,
        }
    }

    fn on_enqueue(&self) {
        if let Some(g) = &self.depth {
            let now = g.add(1);
            self.sink.record_queue_depth(now.max(0) as u64);
        }
    }

    fn on_dequeue(&self) -> i64 {
        match &self.depth {
            Some(g) => g.add(-1).max(0),
            None => 0,
        }
    }

    fn on_overflow(&self) {
        if let Some(c) = &self.overflows {
            c.inc();
        }
    }
}

enum Cmd {
    Compress {
        data: Vec<u8>,
        format: Format,
        opts: CompressOptions,
        /// Trace continuation from the submitter: the engine thread's
        /// spans resume the caller's timeline instead of minting a new
        /// root (how a service request stays one trace across the async
        /// hop). `None` mints a fresh root per job.
        ctx: Option<TraceContext>,
        reply: Sender<Result<Compressed>>,
    },
    Shutdown,
}

/// A queued-submission session backed by one engine thread.
///
/// Dropping the session shuts the engine down after draining queued jobs.
#[derive(Debug)]
pub struct AsyncSession {
    tx: Sender<Cmd>,
    worker: Option<JoinHandle<()>>,
    telemetry: QueueTelemetry,
    pool: Arc<BufferPool>,
    stats: Arc<NxStats>,
}

/// A pending job's completion handle.
#[derive(Debug)]
pub struct JobHandle {
    rx: Receiver<Result<Compressed>>,
}

impl JobHandle {
    /// Blocks until the engine finishes this job.
    ///
    /// # Errors
    ///
    /// [`Error::EngineClosed`] if the engine stopped before completing it.
    pub fn wait(self) -> Result<Compressed> {
        self.rx.recv().map_err(|_| Error::EngineClosed)?
    }

    /// Non-blocking check; returns the handle back if still pending.
    ///
    /// # Errors
    ///
    /// As [`wait`](Self::wait), once complete.
    pub fn try_wait(self) -> std::result::Result<Result<Compressed>, JobHandle> {
        match self.rx.try_recv() {
            Ok(r) => Ok(r),
            Err(crossbeam::channel::TryRecvError::Empty) => Err(self),
            Err(crossbeam::channel::TryRecvError::Disconnected) => Ok(Err(Error::EngineClosed)),
        }
    }

    /// Blocks at most `timeout` for the engine; returns the handle back
    /// if the job is still pending — the caller decides whether a missed
    /// deadline means retry, fallback, or giving up.
    ///
    /// # Errors
    ///
    /// As [`wait`](Self::wait), once complete.
    pub fn wait_timeout(
        self,
        timeout: Duration,
    ) -> std::result::Result<Result<Compressed>, JobHandle> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Ok(r),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Err(self),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Ok(Err(Error::EngineClosed)),
        }
    }
}

impl AsyncSession {
    /// Spawns the engine thread behind an unbounded queue.
    pub(crate) fn spawn(
        config: AccelConfig,
        stats: Arc<NxStats>,
        sink: TelemetrySink,
        pool: Arc<BufferPool>,
        profiles: Option<Arc<ProfileRegistry>>,
    ) -> Self {
        let (tx, rx) = unbounded::<Cmd>();
        Self::spawn_with(config, stats, sink, pool, profiles, tx, rx)
    }

    /// Spawns the engine thread behind a queue of at most `depth`
    /// outstanding commands — the VAS window credit limit in API form.
    /// [`try_submit`](Self::try_submit) surfaces a full queue as
    /// [`Error::QueueOverflow`]; blocking [`submit`](Self::submit) waits
    /// for a slot instead.
    pub(crate) fn spawn_bounded(
        config: AccelConfig,
        stats: Arc<NxStats>,
        sink: TelemetrySink,
        pool: Arc<BufferPool>,
        profiles: Option<Arc<ProfileRegistry>>,
        depth: usize,
    ) -> Self {
        let (tx, rx) = bounded::<Cmd>(depth.max(1));
        Self::spawn_with(config, stats, sink, pool, profiles, tx, rx)
    }

    fn spawn_with(
        config: AccelConfig,
        stats: Arc<NxStats>,
        sink: TelemetrySink,
        pool: Arc<BufferPool>,
        profiles: Option<Arc<ProfileRegistry>>,
        tx: Sender<Cmd>,
        rx: Receiver<Cmd>,
    ) -> Self {
        let telemetry = QueueTelemetry::new(sink);
        let worker_tel = telemetry.clone();
        let worker_pool = Arc::clone(&pool);
        let session_stats = Arc::clone(&stats);
        let worker = std::thread::Builder::new()
            .name("nx-engine".into())
            .spawn(move || {
                let freq_ghz = config.freq_ghz;
                let mut engine = Accelerator::new(config);
                while let Ok(cmd) = rx.recv() {
                    match cmd {
                        Cmd::Compress {
                            data,
                            format,
                            opts,
                            ctx,
                            reply,
                        } => {
                            let depth = worker_tel.on_dequeue();
                            // Default options run the modeled accelerator;
                            // a non-default ladder rung runs the software
                            // encoder at that level (the fixed-function
                            // engine has no level knob), reported with
                            // zero engine cycles like the fallback path. A
                            // selected canned profile runs the one-pass
                            // canned encoder; a registry miss is counted
                            // and degrades to the ladder.
                            let (bytes, report) = if opts.is_default() {
                                let (raw, report) = engine.compress(&data);
                                (framing::wrap(raw, &data, format), report)
                            } else {
                                let canned = opts.profile().and_then(|id| {
                                    profiles
                                        .as_deref()
                                        .unwrap_or_else(|| {
                                            crate::profiles::default_registry().as_ref()
                                        })
                                        .get(id)
                                });
                                if opts.profile().is_some() && canned.is_none() {
                                    nx_deflate::profile::record_profile_miss();
                                }
                                let (bytes, config_name) = match canned {
                                    Some(p) => (
                                        software::compress_with_profile(
                                            &data,
                                            opts.engine(),
                                            p,
                                            format,
                                        ),
                                        "software-canned",
                                    ),
                                    None => (
                                        software::compress_with_engine(
                                            &data,
                                            opts.level(),
                                            opts.engine(),
                                            format,
                                        ),
                                        "software-ladder",
                                    ),
                                };
                                let report = CompressReport {
                                    config_name,
                                    freq_ghz,
                                    input_bytes: data.len() as u64,
                                    output_bytes: bytes.len() as u64,
                                    cycles: 0,
                                    ingest_cycles: 0,
                                    bank_stall_cycles: 0,
                                    huffman_tail_cycles: 0,
                                    overhead_cycles: 0,
                                    blocks: 0,
                                    stored_blocks: 0,
                                    tokens: 0,
                                    discarded_matches: 0,
                                };
                                (bytes, report)
                            };
                            stats.record_compress(
                                Codec::Deflate,
                                data.len() as u64,
                                bytes.len() as u64,
                                report.cycles,
                            );
                            // The request's span timeline: queue wait is
                            // modeled from the depth ahead of the job
                            // (each queued job costs one service slot). A
                            // submitted context continues the caller's
                            // trace; otherwise the job is its own root.
                            let mut trace = match &ctx {
                                Some(c) => Trace::begin_in(&worker_tel.sink, c),
                                None => Trace::begin(&worker_tel.sink),
                            };
                            trace.span(Stage::Submit, SUBMIT_CYCLES, data.len() as u64, 0);
                            trace.span(
                                Stage::QueueWait,
                                depth as u64 * SUBMIT_CYCLES,
                                0,
                                depth as u64,
                            );
                            trace.span(Stage::Engine, report.cycles, data.len() as u64, 0);
                            trace.finish(bytes.len() as u64);
                            // Recycle the job's input buffer: the next
                            // submitter acquiring via `buffer()` reuses
                            // its capacity instead of allocating.
                            worker_pool.release(data);
                            // Receiver may have been dropped; that's fine.
                            let _ = reply.send(Ok(Compressed { bytes, report }));
                        }
                        Cmd::Shutdown => break,
                    }
                }
            })
            .expect("spawn engine thread");
        Self {
            tx,
            worker: Some(worker),
            telemetry,
            pool,
            stats: session_stats,
        }
    }

    /// Takes a recycled input buffer from the session's pool: jobs release
    /// their input buffers back to the pool once compressed, so a
    /// fill-submit-refill loop stops allocating input storage after the
    /// queue depth's worth of warmup submissions.
    pub fn buffer(&self) -> Vec<u8> {
        self.pool.acquire()
    }

    /// Queues a compression job; returns immediately.
    ///
    /// # Errors
    ///
    /// [`Error::EngineClosed`] if the engine thread has exited.
    pub fn submit(&self, data: Vec<u8>, format: Format) -> Result<JobHandle> {
        self.submit_with(data, format, CompressOptions::default())
    }

    /// Queues a compression job with explicit [`CompressOptions`]: jobs at
    /// default options run on the modeled accelerator, any other ladder
    /// rung runs the software encoder at that level on the engine thread.
    ///
    /// # Errors
    ///
    /// [`Error::EngineClosed`] if the engine thread has exited.
    pub fn submit_with(
        &self,
        data: Vec<u8>,
        format: Format,
        opts: CompressOptions,
    ) -> Result<JobHandle> {
        let (reply, rx) = bounded(1);
        self.tx
            .send(Cmd::Compress {
                data,
                format,
                opts,
                ctx: None,
                reply,
            })
            .map_err(|_| Error::EngineClosed)?;
        self.telemetry.on_enqueue();
        Ok(JobHandle { rx })
    }

    /// Queues a compression job inside the caller's trace: the engine
    /// thread's submit/queue-wait/engine/complete spans continue the
    /// context's timeline under its parent span instead of starting a
    /// fresh root — the async hop stays on one trace id.
    ///
    /// # Errors
    ///
    /// [`Error::EngineClosed`] if the engine thread has exited.
    pub fn submit_in_trace(
        &self,
        data: Vec<u8>,
        format: Format,
        opts: CompressOptions,
        ctx: &TraceContext,
    ) -> Result<JobHandle> {
        let (reply, rx) = bounded(1);
        self.tx
            .send(Cmd::Compress {
                data,
                format,
                opts,
                ctx: Some(*ctx),
                reply,
            })
            .map_err(|_| Error::EngineClosed)?;
        self.telemetry.on_enqueue();
        Ok(JobHandle { rx })
    }

    /// Queues a compression job without blocking: a session built with a
    /// bounded queue rejects the submission when no credit is free, like
    /// a paste into a full VAS window.
    ///
    /// # Errors
    ///
    /// [`Error::QueueOverflow`] when the queue is at capacity;
    /// [`Error::EngineClosed`] if the engine thread has exited.
    pub fn try_submit(&self, data: Vec<u8>, format: Format) -> Result<JobHandle> {
        self.try_submit_with(data, format, CompressOptions::default())
    }

    /// As [`try_submit`](Self::try_submit) with explicit
    /// [`CompressOptions`]; see [`submit_with`](Self::submit_with).
    ///
    /// # Errors
    ///
    /// As [`try_submit`](Self::try_submit).
    pub fn try_submit_with(
        &self,
        data: Vec<u8>,
        format: Format,
        opts: CompressOptions,
    ) -> Result<JobHandle> {
        let (reply, rx) = bounded(1);
        match self.tx.try_send(Cmd::Compress {
            data,
            format,
            opts,
            ctx: None,
            reply,
        }) {
            Ok(()) => {
                self.telemetry.on_enqueue();
                Ok(JobHandle { rx })
            }
            Err(TrySendError::Full(_)) => {
                self.telemetry.on_overflow();
                // Attribute the rejection: a full bounded queue is a
                // depth-reject, distinguishable in NxStats from credit
                // rejects (service admission) and injected fault rejects.
                self.stats.record_depth_reject();
                Err(Error::QueueOverflow)
            }
            Err(TrySendError::Disconnected(_)) => Err(Error::EngineClosed),
        }
    }

    /// Shuts the engine down after draining queued jobs, waiting for the
    /// thread to exit. Preferred over `drop` when callers want to observe
    /// completion.
    pub fn close(mut self) {
        self.close_inner();
    }

    fn close_inner(&mut self) {
        let _ = self.tx.send(Cmd::Shutdown);
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

impl Drop for AsyncSession {
    fn drop(&mut self) {
        self.close_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Nx;

    #[test]
    fn async_jobs_complete_in_order() {
        let nx = Nx::power9();
        let session = nx.async_session();
        let inputs: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 20_000]).collect();
        let handles: Vec<JobHandle> = inputs
            .iter()
            .map(|d| session.submit(d.clone(), Format::Gzip).unwrap())
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let c = h.wait().unwrap();
            let d = nx.decompress(&c.bytes, Format::Gzip).unwrap();
            assert_eq!(d.bytes, inputs[i]);
        }
        session.close();
        assert_eq!(nx.stats().compress_requests(), 8);
    }

    #[test]
    fn try_wait_eventually_succeeds() {
        let nx = Nx::z15();
        let session = nx.async_session();
        let mut handle = session.submit(vec![7u8; 100_000], Format::Zlib).unwrap();
        let result = loop {
            match handle.try_wait() {
                Ok(r) => break r,
                Err(h) => {
                    handle = h;
                    std::thread::yield_now();
                }
            }
        };
        assert!(result.unwrap().bytes.len() < 100_000);
    }

    #[test]
    fn submit_after_close_fails() {
        let nx = Nx::power9();
        let session = nx.async_session();
        let _ = session.tx.send(Cmd::Shutdown);
        // Wait for the worker to exit, then submissions fail.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let r = session.submit(vec![1, 2, 3], Format::RawDeflate);
        if let Ok(h) = r {
            // Raced the shutdown: the reply channel must then disconnect.
            assert!(matches!(h.wait(), Err(Error::EngineClosed) | Ok(_)));
        }
    }

    #[test]
    fn bounded_queue_overflows_with_typed_error() {
        let nx = Nx::power9();
        let session = nx.async_session_bounded(2);
        // Big jobs keep the engine busy long enough for the queue to
        // fill; keep trying until try_submit sees a full queue.
        let mut handles = Vec::new();
        let mut overflowed = false;
        for _ in 0..64 {
            match session.try_submit(vec![0xA5u8; 512 * 1024], Format::Gzip) {
                Ok(h) => handles.push(h),
                Err(Error::QueueOverflow) => {
                    overflowed = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(overflowed, "queue of depth 2 never filled");
        // Regression (issue 7 satellite): the rejection must be
        // attributable as a depth-reject in NxStats, not just a telemetry
        // counter.
        assert!(nx.stats().depth_rejects() >= 1);
        assert_eq!(nx.stats().credit_rejects(), 0);
        // Saturation is not loss: everything accepted still completes.
        for h in handles {
            assert!(h.wait().is_ok());
        }
        // Once drained there is room again.
        assert!(session.try_submit(vec![1u8; 100], Format::Gzip).is_ok());
        session.close();
    }

    #[test]
    fn wait_timeout_returns_handle_then_result() {
        let nx = Nx::power9();
        let session = nx.async_session();
        let handle = session
            .submit(vec![3u8; 2 * 1024 * 1024], Format::Zlib)
            .unwrap();
        // A zero timeout on a freshly submitted large job usually misses;
        // either way the protocol must hold: timeout hands the handle
        // back, completion delivers the job exactly once.
        let mut pending = match handle.wait_timeout(Duration::from_micros(1)) {
            Err(h) => h,
            Ok(r) => {
                assert!(r.is_ok());
                return;
            }
        };
        let done = loop {
            match pending.wait_timeout(Duration::from_millis(100)) {
                Ok(r) => break r,
                Err(h) => pending = h,
            }
        };
        assert!(done.unwrap().bytes.len() < 2 * 1024 * 1024);
    }

    #[test]
    fn blocking_submit_applies_backpressure_not_loss() {
        let nx = Nx::z15();
        let session = nx.async_session_bounded(1);
        let inputs: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i; 64 * 1024]).collect();
        let handles: Vec<JobHandle> = inputs
            .iter()
            .map(|d| session.submit(d.clone(), Format::Gzip).unwrap())
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let c = h.wait().unwrap();
            assert_eq!(
                nx.decompress(&c.bytes, Format::Gzip).unwrap().bytes,
                inputs[i]
            );
        }
    }

    #[test]
    fn input_buffers_recycle_through_the_pool() {
        let nx = Nx::power9();
        let session = nx.async_session();
        for i in 0..4u8 {
            let mut buf = session.buffer();
            buf.resize(50_000, i);
            session.submit(buf, Format::Gzip).unwrap().wait().unwrap();
        }
        session.close();
        // The engine releases each job's input before replying, so every
        // acquisition after the first hits the shelf.
        assert!(nx.buffer_pool().hits() >= 3);
        assert!(nx.buffer_pool().recycled() >= 3);
    }

    #[test]
    fn submit_with_runs_the_level_ladder() {
        let nx = Nx::power9();
        let session = nx.async_session();
        let data = b"ladder ladder ladder ladder ladder".repeat(500);
        let mut sizes = Vec::new();
        for rung in nx_deflate::Level::all() {
            let opts = crate::CompressOptions::from_level(rung);
            let c = session
                .submit_with(data.clone(), Format::Gzip, opts)
                .unwrap()
                .wait()
                .unwrap();
            let back = nx.decompress(&c.bytes, Format::Gzip).unwrap();
            assert_eq!(back.bytes, data, "level {rung} did not roundtrip");
            // Non-default rungs run in software: zero engine cycles.
            if !opts.is_default() {
                assert_eq!(c.report.cycles, 0, "level {rung} hit the engine");
                assert_eq!(c.report.config_name, "software-ladder");
            }
            sizes.push(c.bytes.len());
        }
        // Highly redundant input: every rung must still compress well.
        assert!(sizes.iter().all(|&s| s < data.len() / 4));
        session.close();
    }

    #[test]
    fn drop_drains_cleanly() {
        let nx = Nx::power9();
        {
            let session = nx.async_session();
            let _h = session.submit(vec![9u8; 50_000], Format::Gzip).unwrap();
            // Dropped with a job still possibly in flight.
        }
        // No panic, no deadlock.
    }
}
