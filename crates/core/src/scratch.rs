//! Buffer pooling and zero-allocation scratch sessions.
//!
//! The accelerator's driver pins its CRB/DDE buffers once and reuses them
//! for every request — steady-state operation performs no allocation.
//! This module reproduces that discipline in the facade:
//!
//! * [`BufferPool`] is a shared shelf of byte buffers with hit/miss
//!   accounting, used by the parallel pool workers (shard output) and the
//!   async engine (input recycling).
//! * [`ScratchSession`] bundles a persistent [`StreamEncoder`], an
//!   [`InflateScratch`] (decode tables + output sizing) and a pool handle
//!   so repeated same-shape compress/decompress calls through the
//!   `*_into` APIs stop touching the allocator after warmup.
//! * [`InflatePathMetrics`] exports the decoder's fast-path/careful-path
//!   byte counters (the inflate superloop hit rate) as pull metrics.
//!
//! ```
//! use nx_core::{Format, Nx};
//!
//! # fn main() -> Result<(), nx_core::Error> {
//! let nx = Nx::power9();
//! let mut sess = nx.scratch_session(6)?;
//! let data = b"scratch reuse scratch reuse".repeat(100);
//! let mut comp = sess.acquire_buffer();
//! let mut back = sess.acquire_buffer();
//! sess.compress_into(&data, Format::Gzip, &mut comp)?;
//! sess.decompress_into(&comp, Format::Gzip, &mut back)?;
//! assert_eq!(back, data);
//! sess.release_buffer(comp);
//! sess.release_buffer(back);
//! # Ok(())
//! # }
//! ```

use crate::framing::Format;
use crate::stats::{Codec, NxStats};
use crate::{Result, Trace, SUBMIT_CYCLES};
use nx_deflate::adler32::adler32;
use nx_deflate::crc32::crc32;
use nx_deflate::stream::{Flush, StreamEncoder};
use nx_deflate::{gzip, zlib, CompressionLevel, Engine, InflateScratch, Profile};
use nx_telemetry::{MetricSource, MetricValue, Stage, TelemetrySink};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Idle buffers retained per pool before further releases are dropped.
const DEFAULT_MAX_IDLE: usize = 32;

/// A shared shelf of reusable byte buffers.
///
/// `acquire` pops a previously released buffer (a *hit*) or allocates an
/// empty one (a *miss*); `release` clears a buffer and shelves it for the
/// next acquirer, dropping it instead once the shelf is full so the pool
/// cannot grow without bound. All counters are monotonic and lock-free;
/// the shelf itself is a mutex — acquisition is O(1) pop/push.
#[derive(Debug)]
pub struct BufferPool {
    shelf: Mutex<Vec<Vec<u8>>>,
    max_idle: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    recycled: AtomicU64,
    dropped: AtomicU64,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::with_max_idle(DEFAULT_MAX_IDLE)
    }
}

impl BufferPool {
    /// A pool retaining at most `max_idle` idle buffers.
    pub fn with_max_idle(max_idle: usize) -> Self {
        Self {
            shelf: Mutex::new(Vec::new()),
            max_idle,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Takes a buffer from the shelf, or a fresh empty one on a miss.
    /// Returned buffers are always empty (`len == 0`) but keep whatever
    /// capacity their previous use grew.
    pub fn acquire(&self) -> Vec<u8> {
        match self.shelf.lock().pop() {
            Some(buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        }
    }

    /// Clears `buf` and shelves it for reuse; drops it (counted) when the
    /// shelf already holds the idle maximum.
    pub fn release(&self, mut buf: Vec<u8>) {
        buf.clear();
        let mut shelf = self.shelf.lock();
        if shelf.len() < self.max_idle {
            shelf.push(buf);
            self.recycled.fetch_add(1, Ordering::Relaxed);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Buffers currently shelved.
    pub fn idle(&self) -> usize {
        self.shelf.lock().len()
    }

    /// Acquisitions served from the shelf.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Acquisitions that had to allocate.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Buffers returned to the shelf.
    pub fn recycled(&self) -> u64 {
        self.recycled.load(Ordering::Relaxed)
    }

    /// Buffers dropped at release because the shelf was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl MetricSource for BufferPool {
    fn collect(&self, out: &mut Vec<(String, MetricValue)>) {
        out.push((
            "nx_pool_hits_total".into(),
            MetricValue::Counter(self.hits()),
        ));
        out.push((
            "nx_pool_misses_total".into(),
            MetricValue::Counter(self.misses()),
        ));
        out.push((
            "nx_pool_recycled_total".into(),
            MetricValue::Counter(self.recycled()),
        ));
        out.push((
            "nx_pool_dropped_total".into(),
            MetricValue::Counter(self.dropped()),
        ));
        out.push((
            "nx_pool_idle_buffers".into(),
            MetricValue::Gauge(self.idle() as i64),
        ));
    }
}

/// Pull-source for the inflate superloop's path counters: how many output
/// bytes the fast loop produced versus the careful per-symbol loop. The
/// counters are process-wide (they aggregate every decoder in the
/// process), matching the hardware's per-unit performance counters.
#[derive(Debug, Default)]
pub struct InflatePathMetrics;

impl MetricSource for InflatePathMetrics {
    fn collect(&self, out: &mut Vec<(String, MetricValue)>) {
        let (fast, careful) = nx_deflate::decode_path_counters();
        out.push((
            "nx_inflate_fast_path_bytes_total".into(),
            MetricValue::Counter(fast),
        ));
        out.push((
            "nx_inflate_careful_path_bytes_total".into(),
            MetricValue::Counter(careful),
        ));
        // Hit rate in basis points (0..=10000) as a gauge, so dashboards
        // get the ratio without post-processing two counters.
        let total = fast + careful;
        let bp = if total == 0 {
            0
        } else {
            ((fast as u128 * 10_000) / total as u128) as i64
        };
        out.push(("nx_inflate_fast_path_bp".into(), MetricValue::Gauge(bp)));
    }
}

/// Pull-source for the deflate encoder's path counters: emitted blocks by
/// type (stored / fixed / dynamic), blocks per level-ladder rung, lazy
/// deferrals, and the chain-walk length histogram from the hash4 match
/// finder. Process-wide, like [`InflatePathMetrics`].
#[derive(Debug, Default)]
pub struct EncodePathMetrics;

impl MetricSource for EncodePathMetrics {
    fn collect(&self, out: &mut Vec<(String, MetricValue)>) {
        let c = nx_deflate::encode_counters();
        out.push((
            "nx_encode_blocks_stored_total".into(),
            MetricValue::Counter(c.blocks_stored),
        ));
        out.push((
            "nx_encode_blocks_fixed_total".into(),
            MetricValue::Counter(c.blocks_fixed),
        ));
        out.push((
            "nx_encode_blocks_dynamic_total".into(),
            MetricValue::Counter(c.blocks_dynamic),
        ));
        out.push((
            "nx_encode_lazy_deferrals_total".into(),
            MetricValue::Counter(c.lazy_deferrals),
        ));
        for (rung, &blocks) in nx_deflate::Level::all().iter().zip(&c.blocks_by_level) {
            out.push((
                format!("nx_encode_blocks_level_{rung}_total"),
                MetricValue::Counter(blocks),
            ));
        }
        // Chain-walk histogram buckets: walks of exactly 0 and 1 steps,
        // then powers of two up to 63, then everything longer.
        const BUCKETS: [&str; 8] = ["0", "1", "le_3", "le_7", "le_15", "le_31", "le_63", "gt_63"];
        for (name, &count) in BUCKETS.iter().zip(&c.chain_hist) {
            out.push((
                format!("nx_encode_chain_walk_{name}_total"),
                MetricValue::Counter(count),
            ));
        }
        // Speculative batch-matcher cover statistics: 8-position windows
        // resolved, candidates probed, positions covered by matches,
        // candidates the cover resolver discarded, and the distribution
        // of picks per window (0..=8).
        out.push((
            "nx_encode_spec_windows_total".into(),
            MetricValue::Counter(c.spec_windows),
        ));
        out.push((
            "nx_encode_spec_candidates_total".into(),
            MetricValue::Counter(c.spec_candidates),
        ));
        out.push((
            "nx_encode_spec_covered_total".into(),
            MetricValue::Counter(c.spec_covered),
        ));
        out.push((
            "nx_encode_spec_discarded_total".into(),
            MetricValue::Counter(c.spec_discarded),
        ));
        for (picks, &count) in c.spec_cover_hist.iter().enumerate() {
            out.push((
                format!("nx_encode_spec_cover_{picks}_total"),
                MetricValue::Counter(count),
            ));
        }
    }
}

/// Pull-source for the canned-profile path counters
/// ([`nx_deflate::profile_counters`]): requests routed through the
/// one-pass canned encoder, blocks emitted against canned tables versus
/// misfit fallbacks, dictionary-primed encodes, and registry misses.
/// Process-wide, like [`InflatePathMetrics`]; registered as the
/// `nx-profiles` source by [`crate::Nx::with_telemetry`].
#[derive(Debug, Default)]
pub struct ProfileMetrics;

impl MetricSource for ProfileMetrics {
    fn collect(&self, out: &mut Vec<(String, MetricValue)>) {
        let c = nx_deflate::profile_counters();
        out.push((
            "nx_profile_canned_requests_total".into(),
            MetricValue::Counter(c.canned_requests),
        ));
        out.push((
            "nx_profile_canned_blocks_total".into(),
            MetricValue::Counter(c.canned_blocks),
        ));
        out.push((
            "nx_profile_fallback_blocks_total".into(),
            MetricValue::Counter(c.fallback_blocks),
        ));
        out.push((
            "nx_profile_dict_encodes_total".into(),
            MetricValue::Counter(c.dict_encodes),
        ));
        out.push((
            "nx_profile_misses_total".into(),
            MetricValue::Counter(c.profile_misses),
        ));
        // One-pass hit rate in basis points, mirroring the inflate
        // fast-path gauge: of all blocks seen by the canned encoder, how
        // many were emitted against the canned tables.
        let total = c.canned_blocks + c.fallback_blocks;
        let bp = if total == 0 {
            0
        } else {
            ((c.canned_blocks as u128 * 10_000) / total as u128) as i64
        };
        out.push(("nx_profile_canned_bp".into(), MetricValue::Gauge(bp)));
    }
}

/// A reusable compression/decompression session bound to an [`crate::Nx`]
/// handle: the software path with every piece of per-request state —
/// encoder hash chains, decode tables, output buffers — carried across
/// calls. After one warmup call per payload shape, `compress_into` and
/// `decompress_into` stop allocating on the decode side entirely (the
/// encode side still builds its dynamic Huffman plan per block; see
/// DESIGN.md's zero-allocation notes).
///
/// Traffic is recorded in the owning handle's [`NxStats`] and its
/// telemetry sink, like any other facade request.
#[derive(Debug)]
pub struct ScratchSession {
    stats: Arc<NxStats>,
    telemetry: TelemetrySink,
    level: CompressionLevel,
    enc: StreamEncoder,
    inflate: InflateScratch,
    pool: Arc<BufferPool>,
    /// Canned profile: when set, `compress_into` runs the one-pass canned
    /// path and `decompress_into` can satisfy zlib FDICT streams with the
    /// profile's dictionary.
    profile: Option<Profile>,
}

impl ScratchSession {
    pub(crate) fn new(
        stats: Arc<NxStats>,
        telemetry: TelemetrySink,
        level: CompressionLevel,
        engine: Engine,
        pool: Arc<BufferPool>,
    ) -> Self {
        Self::with_profile(stats, telemetry, level, engine, pool, None)
    }

    pub(crate) fn with_profile(
        stats: Arc<NxStats>,
        telemetry: TelemetrySink,
        level: CompressionLevel,
        engine: Engine,
        pool: Arc<BufferPool>,
        profile: Option<Profile>,
    ) -> Self {
        Self {
            stats,
            telemetry,
            level,
            enc: StreamEncoder::with_engine(level, engine),
            inflate: InflateScratch::new(),
            pool,
            profile,
        }
    }

    /// The canned profile bound to this session, if any.
    pub fn profile(&self) -> Option<&Profile> {
        self.profile.as_ref()
    }

    /// The configured compression level.
    pub fn level(&self) -> CompressionLevel {
        self.level
    }

    /// The configured LZ77 engine selection.
    pub fn engine(&self) -> Engine {
        self.enc.engine()
    }

    /// The buffer pool this session shares with its [`crate::Nx`] handle.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Takes a reusable buffer from the shared pool.
    pub fn acquire_buffer(&self) -> Vec<u8> {
        self.pool.acquire()
    }

    /// Returns a buffer to the shared pool.
    pub fn release_buffer(&self, buf: Vec<u8>) {
        self.pool.release(buf);
    }

    /// Compresses `data` into `format` framing, writing the complete
    /// container into `out` (cleared first). The persistent encoder's
    /// window, tokenizer and bit-writer buffers are reused across calls.
    ///
    /// # Errors
    ///
    /// Infallible today; the `Result` mirrors [`crate::Nx::compress`].
    pub fn compress_into(&mut self, data: &[u8], format: Format, out: &mut Vec<u8>) -> Result<()> {
        out.clear();
        let mut trace = Trace::begin(&self.telemetry);
        trace.span(Stage::Submit, SUBMIT_CYCLES, data.len() as u64, 0);
        if let Some(p) = &self.profile {
            // One-pass canned path: dictionary-framed zlib (FDICT +
            // DICTID), dictionary-primed raw, canned-tables-only gzip —
            // the same framing policy as software::compress_with_profile,
            // writing straight into the caller's buffer.
            let engine = self.enc.engine();
            match format {
                Format::RawDeflate => {
                    nx_deflate::deflate_canned_into(data, engine, p, true, out);
                }
                Format::Gzip => {
                    gzip::write_header_into(out);
                    nx_deflate::deflate_canned_into(data, engine, p, false, out);
                    gzip::write_trailer_into(out, crc32(data), data.len() as u64);
                }
                Format::Zlib => {
                    if p.dict().is_empty() {
                        zlib::write_header_into(out, self.level);
                        nx_deflate::deflate_canned_into(data, engine, p, false, out);
                    } else {
                        zlib::write_header_with_dictid(out, self.level, p.dict_id());
                        nx_deflate::deflate_canned_into(data, engine, p, true, out);
                    }
                    zlib::write_trailer_into(out, adler32(data));
                }
            }
        } else {
            self.enc.reset_with_dict(&[]);
            match format {
                Format::RawDeflate => {
                    self.enc.write_into(data, Flush::Finish, out);
                }
                Format::Gzip => {
                    gzip::write_header_into(out);
                    self.enc.write_into(data, Flush::Finish, out);
                    gzip::write_trailer_into(out, crc32(data), data.len() as u64);
                }
                Format::Zlib => {
                    zlib::write_header_into(out, self.level);
                    self.enc.write_into(data, Flush::Finish, out);
                    zlib::write_trailer_into(out, adler32(data));
                }
            }
        }
        self.stats
            .record_compress(Codec::Deflate, data.len() as u64, out.len() as u64, 0);
        trace.span(Stage::Engine, 0, data.len() as u64, 0);
        trace.finish(out.len() as u64);
        Ok(())
    }

    /// Decompresses `format`-framed `data` into `out` (cleared first),
    /// verifying container checksums. Decode tables rebuild in place and
    /// the output is sized from the container hint — after warmup this
    /// path performs no heap allocation.
    ///
    /// # Errors
    ///
    /// [`crate::Error::Deflate`] for malformed containers or streams.
    pub fn decompress_into(
        &mut self,
        data: &[u8],
        format: Format,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        let mut trace = Trace::begin(&self.telemetry);
        trace.span(Stage::Submit, SUBMIT_CYCLES, data.len() as u64, 0);
        match format {
            Format::RawDeflate => nx_deflate::inflate_into(data, &mut self.inflate, out)?,
            Format::Gzip => gzip::decompress_into(data, &mut self.inflate, out)?,
            Format::Zlib => match zlib::decompress_into(data, &mut self.inflate, out) {
                // An FDICT stream and a session profile with a dictionary:
                // retry through the dictionary-aware decoder, exactly the
                // inflateSetDictionary dance in zlib.
                Err(nx_deflate::Error::DictionaryRequired) => {
                    match self.profile.as_ref().filter(|p| !p.dict().is_empty()) {
                        Some(p) => {
                            zlib::decompress_with_dict_into(data, p.dict(), &mut self.inflate, out)?
                        }
                        None => return Err(nx_deflate::Error::DictionaryRequired.into()),
                    }
                }
                r => r?,
            },
        }
        self.stats
            .record_decompress(Codec::Deflate, data.len() as u64, out.len() as u64, 0);
        trace.span(Stage::Engine, 0, data.len() as u64, 0);
        trace.finish(out.len() as u64);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Nx;

    #[test]
    fn pool_hit_miss_accounting() {
        let pool = BufferPool::with_max_idle(2);
        let a = pool.acquire();
        let b = pool.acquire();
        assert_eq!(pool.misses(), 2);
        assert_eq!(pool.hits(), 0);
        pool.release(a);
        pool.release(b);
        assert_eq!(pool.recycled(), 2);
        assert_eq!(pool.idle(), 2);
        let c = pool.acquire();
        assert_eq!(pool.hits(), 1);
        // Shelf full: a third release is dropped, not shelved.
        pool.release(Vec::new());
        pool.release(Vec::new());
        assert_eq!(pool.dropped(), 1);
        pool.release(c);
        assert_eq!(pool.dropped(), 2);
    }

    #[test]
    fn pool_buffers_keep_capacity() {
        let pool = BufferPool::default();
        let mut buf = pool.acquire();
        buf.extend_from_slice(&[7u8; 4096]);
        pool.release(buf);
        let again = pool.acquire();
        assert!(again.is_empty());
        assert!(again.capacity() >= 4096);
    }

    #[test]
    fn session_roundtrips_all_formats() {
        let nx = Nx::power9();
        let mut sess = nx.scratch_session(6).unwrap();
        let data = nx_corpus::CorpusKind::Json.generate(11, 48 * 1024);
        let mut comp = Vec::new();
        let mut back = Vec::new();
        for format in [Format::RawDeflate, Format::Gzip, Format::Zlib] {
            sess.compress_into(&data, format, &mut comp).unwrap();
            sess.decompress_into(&comp, format, &mut back).unwrap();
            assert_eq!(back, data, "{format:?}");
            // Interop: the ordinary facade decodes the session's output.
            assert_eq!(nx.decompress(&comp, format).unwrap().bytes, data);
        }
        assert_eq!(nx.stats().compress_requests(), 3);
        assert_eq!(nx.stats().decompress_requests(), 6);
    }

    #[test]
    fn session_buffers_stabilize() {
        let nx = Nx::z15();
        let mut sess = nx.scratch_session(6).unwrap();
        let data = nx_corpus::CorpusKind::Text.generate(5, 64 * 1024);
        let mut comp = Vec::new();
        let mut back = Vec::new();
        sess.compress_into(&data, Format::Gzip, &mut comp).unwrap();
        sess.decompress_into(&comp, Format::Gzip, &mut back)
            .unwrap();
        let (ccap, bcap) = (comp.capacity(), back.capacity());
        for _ in 0..5 {
            sess.compress_into(&data, Format::Gzip, &mut comp).unwrap();
            sess.decompress_into(&comp, Format::Gzip, &mut back)
                .unwrap();
            assert_eq!(back, data);
        }
        assert_eq!(comp.capacity(), ccap, "compress buffer reallocated");
        assert_eq!(back.capacity(), bcap, "decompress buffer reallocated");
    }

    #[test]
    fn session_detects_corruption() {
        let nx = Nx::power9();
        let mut sess = nx.scratch_session(6).unwrap();
        let data = b"integrity matters".repeat(50);
        let mut comp = Vec::new();
        sess.compress_into(&data, Format::Gzip, &mut comp).unwrap();
        let n = comp.len();
        comp[n - 5] ^= 0xFF; // CRC byte
        let mut back = Vec::new();
        assert!(sess
            .decompress_into(&comp, Format::Gzip, &mut back)
            .is_err());
        // The session stays usable after an error.
        sess.compress_into(&data, Format::Zlib, &mut comp).unwrap();
        sess.decompress_into(&comp, Format::Zlib, &mut back)
            .unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn level_zero_session_stores() {
        let nx = Nx::power9();
        let mut sess = nx.scratch_session(0).unwrap();
        let data = vec![0xABu8; 70_000];
        let mut comp = Vec::new();
        let mut back = Vec::new();
        sess.compress_into(&data, Format::Zlib, &mut comp).unwrap();
        sess.decompress_into(&comp, Format::Zlib, &mut back)
            .unwrap();
        assert_eq!(back, data);
        assert!(nx.scratch_session(10).is_err());
    }

    #[test]
    fn inflate_path_metrics_export() {
        let mut out = Vec::new();
        InflatePathMetrics.collect(&mut out);
        let names: Vec<&str> = out.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"nx_inflate_fast_path_bytes_total"));
        assert!(names.contains(&"nx_inflate_careful_path_bytes_total"));
        assert!(names.contains(&"nx_inflate_fast_path_bp"));
    }

    #[test]
    fn encode_path_metrics_export() {
        // Drive the encoder at a lazy level so the per-level, block-type
        // and chain-walk counters all move, and at a speculative level so
        // the batch-matcher cover counters move too.
        let data = b"encode metrics encode metrics encode metrics".repeat(200);
        let _ = nx_deflate::deflate(&data, CompressionLevel::new(6).unwrap());
        let _ = nx_deflate::deflate(&data, CompressionLevel::new(1).unwrap());
        let mut out = Vec::new();
        EncodePathMetrics.collect(&mut out);
        let names: Vec<&str> = out.iter().map(|(n, _)| n.as_str()).collect();
        for want in [
            "nx_encode_blocks_stored_total",
            "nx_encode_blocks_fixed_total",
            "nx_encode_blocks_dynamic_total",
            "nx_encode_lazy_deferrals_total",
            "nx_encode_blocks_level_default_total",
            "nx_encode_chain_walk_0_total",
            "nx_encode_chain_walk_gt_63_total",
            "nx_encode_spec_windows_total",
            "nx_encode_spec_candidates_total",
            "nx_encode_spec_covered_total",
            "nx_encode_spec_discarded_total",
            "nx_encode_spec_cover_0_total",
            "nx_encode_spec_cover_8_total",
        ] {
            assert!(names.contains(&want), "missing metric {want}");
        }
        let spec_windows: u64 = out
            .iter()
            .find(|(n, _)| n == "nx_encode_spec_windows_total")
            .map(|(_, v)| match v {
                MetricValue::Counter(c) => *c,
                _ => 0,
            })
            .unwrap_or(0);
        assert!(spec_windows > 0, "speculative windows not counted");
        let total_blocks: u64 = out
            .iter()
            .filter(|(n, _)| n.starts_with("nx_encode_blocks_level_"))
            .map(|(_, v)| match v {
                MetricValue::Counter(c) => *c,
                MetricValue::Gauge(g) => *g as u64,
                _ => 0,
            })
            .sum();
        assert!(total_blocks > 0, "no blocks recorded on the level ladder");
    }
}
