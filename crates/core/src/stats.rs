//! Aggregate accelerator statistics, shared across handles and sessions.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone counters for one accelerator handle (thread-safe).
#[derive(Debug, Default)]
pub struct NxStats {
    compress_requests: AtomicU64,
    decompress_requests: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    engine_cycles: AtomicU64,
}

impl NxStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_compress(&self, bytes_in: u64, bytes_out: u64, cycles: u64) {
        self.compress_requests.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes_in, Ordering::Relaxed);
        self.bytes_out.fetch_add(bytes_out, Ordering::Relaxed);
        self.engine_cycles.fetch_add(cycles, Ordering::Relaxed);
    }

    pub(crate) fn record_decompress(&self, bytes_in: u64, bytes_out: u64, cycles: u64) {
        self.decompress_requests.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes_in, Ordering::Relaxed);
        self.bytes_out.fetch_add(bytes_out, Ordering::Relaxed);
        self.engine_cycles.fetch_add(cycles, Ordering::Relaxed);
    }

    /// Compression requests served.
    pub fn compress_requests(&self) -> u64 {
        self.compress_requests.load(Ordering::Relaxed)
    }

    /// Decompression requests served.
    pub fn decompress_requests(&self) -> u64 {
        self.decompress_requests.load(Ordering::Relaxed)
    }

    /// Total source bytes received.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.load(Ordering::Relaxed)
    }

    /// Total bytes produced.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.load(Ordering::Relaxed)
    }

    /// Total modeled engine cycles consumed.
    pub fn engine_cycles(&self) -> u64 {
        self.engine_cycles.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_independently() {
        let s = NxStats::new();
        s.record_compress(100, 40, 25);
        s.record_compress(100, 30, 25);
        s.record_decompress(70, 200, 10);
        assert_eq!(s.compress_requests(), 2);
        assert_eq!(s.decompress_requests(), 1);
        assert_eq!(s.bytes_in(), 270);
        assert_eq!(s.bytes_out(), 270);
        assert_eq!(s.engine_cycles(), 60);
    }

    #[test]
    fn stats_are_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<NxStats>();
    }
}
