//! Aggregate accelerator statistics, shared across handles and sessions.
//!
//! Counters are split **per codec** (DEFLATE vs 842) and per direction:
//! the two engines have very different throughput/ratio profiles, and a
//! mixed workload folding both into one set of counters produced wrong
//! derived ratios (and 842 traffic recorded zero cycles). The flat
//! accessors remain as cross-codec aggregates; [`NxStats::deflate`] and
//! [`NxStats::p842`] expose the split, and [`NxStats::retries`] /
//! [`NxStats::software_fallbacks`] surface the recovery paths that PR 2
//! only counted on the fault injector.

use std::sync::atomic::{AtomicU64, Ordering};

use nx_telemetry::{MetricSource, MetricValue};

/// Which engine served a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    /// The DEFLATE/gzip/zlib engine.
    Deflate,
    /// The 842 memory-compression engine.
    P842,
}

impl Codec {
    /// Stable lowercase name (metric labels key on it).
    pub fn name(self) -> &'static str {
        match self {
            Codec::Deflate => "deflate",
            Codec::P842 => "842",
        }
    }
}

/// Monotone counters for one codec + direction.
#[derive(Debug, Default)]
pub struct DirStats {
    requests: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    engine_cycles: AtomicU64,
}

impl DirStats {
    fn record(&self, bytes_in: u64, bytes_out: u64, cycles: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes_in, Ordering::Relaxed);
        self.bytes_out.fetch_add(bytes_out, Ordering::Relaxed);
        self.engine_cycles.fetch_add(cycles, Ordering::Relaxed);
    }

    /// Requests served.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Source bytes received.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.load(Ordering::Relaxed)
    }

    /// Bytes produced.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.load(Ordering::Relaxed)
    }

    /// Modeled engine cycles consumed.
    pub fn engine_cycles(&self) -> u64 {
        self.engine_cycles.load(Ordering::Relaxed)
    }
}

/// Both directions of one codec's traffic.
#[derive(Debug, Default)]
pub struct CodecStats {
    compress: DirStats,
    decompress: DirStats,
}

impl CodecStats {
    /// Compression-side counters.
    pub fn compress(&self) -> &DirStats {
        &self.compress
    }

    /// Decompression-side counters.
    pub fn decompress(&self) -> &DirStats {
        &self.decompress
    }
}

/// Monotone counters for one accelerator handle (thread-safe).
#[derive(Debug, Default)]
pub struct NxStats {
    deflate: CodecStats,
    p842: CodecStats,
    retries: AtomicU64,
    software_fallbacks: AtomicU64,
    rejects_credit: AtomicU64,
    rejects_depth: AtomicU64,
    rejects_fault: AtomicU64,
}

impl NxStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    fn codec(&self, codec: Codec) -> &CodecStats {
        match codec {
            Codec::Deflate => &self.deflate,
            Codec::P842 => &self.p842,
        }
    }

    pub(crate) fn record_compress(&self, codec: Codec, bytes_in: u64, bytes_out: u64, cycles: u64) {
        self.codec(codec)
            .compress
            .record(bytes_in, bytes_out, cycles);
    }

    pub(crate) fn record_decompress(
        &self,
        codec: Codec,
        bytes_in: u64,
        bytes_out: u64,
        cycles: u64,
    ) {
        self.codec(codec)
            .decompress
            .record(bytes_in, bytes_out, cycles);
    }

    pub(crate) fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_software_fallback(&self) {
        self.software_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_credit_reject(&self) {
        self.rejects_credit.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_depth_reject(&self) {
        self.rejects_depth.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_fault_reject(&self) {
        self.rejects_fault.fetch_add(1, Ordering::Relaxed);
    }

    /// DEFLATE-engine traffic (gzip/zlib/raw framings).
    pub fn deflate(&self) -> &CodecStats {
        &self.deflate
    }

    /// 842-engine traffic.
    pub fn p842(&self) -> &CodecStats {
        &self.p842
    }

    /// Whole-attempt retries the recovery protocol performed on this
    /// handle (CSB errors, timeouts, queue overflows, corrupted output).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Requests on this handle that degraded to the software path.
    pub fn software_fallbacks(&self) -> u64 {
        self.software_fallbacks.load(Ordering::Relaxed)
    }

    /// Submissions rejected because a tenant's receive window was out of
    /// credits (per-tenant admission limit, service path).
    pub fn credit_rejects(&self) -> u64 {
        self.rejects_credit.load(Ordering::Relaxed)
    }

    /// Submissions rejected because the bounded engine queue was at depth
    /// (`try_submit` on a full queue, or the service's global depth limit).
    pub fn depth_rejects(&self) -> u64 {
        self.rejects_depth.load(Ordering::Relaxed)
    }

    /// Submission attempts bounced by an injected/observed accelerator
    /// fault (paste returned busy / CSB queue overflow) before recovery.
    pub fn fault_rejects(&self) -> u64 {
        self.rejects_fault.load(Ordering::Relaxed)
    }

    /// Compression requests served (all codecs).
    pub fn compress_requests(&self) -> u64 {
        self.deflate.compress.requests() + self.p842.compress.requests()
    }

    /// Decompression requests served (all codecs).
    pub fn decompress_requests(&self) -> u64 {
        self.deflate.decompress.requests() + self.p842.decompress.requests()
    }

    /// Total source bytes received (all codecs, both directions).
    pub fn bytes_in(&self) -> u64 {
        self.deflate.compress.bytes_in()
            + self.deflate.decompress.bytes_in()
            + self.p842.compress.bytes_in()
            + self.p842.decompress.bytes_in()
    }

    /// Total bytes produced (all codecs, both directions).
    pub fn bytes_out(&self) -> u64 {
        self.deflate.compress.bytes_out()
            + self.deflate.decompress.bytes_out()
            + self.p842.compress.bytes_out()
            + self.p842.decompress.bytes_out()
    }

    /// Total modeled engine cycles consumed (all codecs).
    pub fn engine_cycles(&self) -> u64 {
        self.deflate.compress.engine_cycles()
            + self.deflate.decompress.engine_cycles()
            + self.p842.compress.engine_cycles()
            + self.p842.decompress.engine_cycles()
    }

    /// Notes the recovery-counter movement since `mark` into a flight
    /// recorder at `at_cycles`, then advances the watermark. Flight
    /// notes are deltas, not levels, so callers (servers, the examples'
    /// observability loops) call this periodically and the black box
    /// shows *when* retries and fallbacks clustered — the fault-storm
    /// shape, not just its total.
    pub fn note_recovery(
        &self,
        flight: &nx_telemetry::FlightRecorder,
        at_cycles: u64,
        mark: &mut RecoveryWatermark,
    ) {
        let now = RecoveryWatermark {
            retries: self.retries(),
            fallbacks: self.software_fallbacks(),
            fault_rejects: self.fault_rejects(),
        };
        for (name, cur, prev) in [
            ("nx_retries_total", now.retries, mark.retries),
            ("nx_software_fallbacks_total", now.fallbacks, mark.fallbacks),
            (
                "nx_fault_rejects_total",
                now.fault_rejects,
                mark.fault_rejects,
            ),
        ] {
            let delta = cur.saturating_sub(prev);
            if delta > 0 {
                let id = flight.counter_id(name);
                flight.note(at_cycles, id, delta);
            }
        }
        *mark = now;
    }
}

/// A watermark of [`NxStats`]' recovery counters: the last levels
/// [`NxStats::note_recovery`] flushed to a flight recorder. Held by the
/// caller so the stats object itself stays write-only on the hot path.
#[derive(Debug, Default, Clone, Copy)]
pub struct RecoveryWatermark {
    retries: u64,
    fallbacks: u64,
    fault_rejects: u64,
}

impl MetricSource for NxStats {
    fn collect(&self, out: &mut Vec<(String, MetricValue)>) {
        for (codec, stats) in [("deflate", &self.deflate), ("842", &self.p842)] {
            for (dir, d) in [
                ("compress", &stats.compress),
                ("decompress", &stats.decompress),
            ] {
                let label = format!("{{format=\"{codec}\",dir=\"{dir}\"}}");
                out.push((
                    format!("nx_requests_total{label}"),
                    MetricValue::Counter(d.requests()),
                ));
                out.push((
                    format!("nx_bytes_in_total{label}"),
                    MetricValue::Counter(d.bytes_in()),
                ));
                out.push((
                    format!("nx_bytes_out_total{label}"),
                    MetricValue::Counter(d.bytes_out()),
                ));
                out.push((
                    format!("nx_engine_cycles_total{label}"),
                    MetricValue::Counter(d.engine_cycles()),
                ));
            }
        }
        out.push((
            "nx_retries_total".to_string(),
            MetricValue::Counter(self.retries()),
        ));
        out.push((
            "nx_software_fallbacks_total".to_string(),
            MetricValue::Counter(self.software_fallbacks()),
        ));
        for (cause, v) in [
            ("credit", self.credit_rejects()),
            ("depth", self.depth_rejects()),
            ("fault", self.fault_rejects()),
        ] {
            out.push((
                format!("nx_rejects_total{{cause=\"{cause}\"}}"),
                MetricValue::Counter(v),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_independently() {
        let s = NxStats::new();
        s.record_compress(Codec::Deflate, 100, 40, 25);
        s.record_compress(Codec::Deflate, 100, 30, 25);
        s.record_decompress(Codec::Deflate, 70, 200, 10);
        assert_eq!(s.compress_requests(), 2);
        assert_eq!(s.decompress_requests(), 1);
        assert_eq!(s.bytes_in(), 270);
        assert_eq!(s.bytes_out(), 270);
        assert_eq!(s.engine_cycles(), 60);
    }

    #[test]
    fn codecs_are_split() {
        let s = NxStats::new();
        s.record_compress(Codec::Deflate, 1000, 400, 50);
        s.record_compress(Codec::P842, 500, 300, 70);
        s.record_decompress(Codec::P842, 300, 500, 40);
        // Per-codec views see only their own traffic...
        assert_eq!(s.deflate().compress().requests(), 1);
        assert_eq!(s.deflate().compress().bytes_in(), 1000);
        assert_eq!(s.deflate().decompress().requests(), 0);
        assert_eq!(s.p842().compress().requests(), 1);
        assert_eq!(s.p842().compress().engine_cycles(), 70);
        assert_eq!(s.p842().decompress().bytes_out(), 500);
        // ...while the flat accessors aggregate across codecs.
        assert_eq!(s.compress_requests(), 2);
        assert_eq!(s.engine_cycles(), 160);
    }

    #[test]
    fn recovery_counters_record() {
        let s = NxStats::new();
        s.record_retry();
        s.record_retry();
        s.record_software_fallback();
        assert_eq!(s.retries(), 2);
        assert_eq!(s.software_fallbacks(), 1);
    }

    #[test]
    fn metric_source_emits_split_counters() {
        let s = NxStats::new();
        s.record_compress(Codec::P842, 64, 32, 9);
        s.record_retry();
        let mut out = Vec::new();
        s.collect(&mut out);
        assert!(out.contains(&(
            "nx_requests_total{format=\"842\",dir=\"compress\"}".to_string(),
            MetricValue::Counter(1)
        )));
        assert!(out.contains(&(
            "nx_engine_cycles_total{format=\"842\",dir=\"compress\"}".to_string(),
            MetricValue::Counter(9)
        )));
        assert!(out.contains(&("nx_retries_total".to_string(), MetricValue::Counter(1))));
        // 4 counters × 2 codecs × 2 directions + retries + fallbacks
        // + 3 reject causes.
        assert_eq!(out.len(), 21);
    }

    #[test]
    fn reject_counters_are_attributed_by_cause() {
        let s = NxStats::new();
        s.record_credit_reject();
        s.record_credit_reject();
        s.record_depth_reject();
        s.record_fault_reject();
        assert_eq!(s.credit_rejects(), 2);
        assert_eq!(s.depth_rejects(), 1);
        assert_eq!(s.fault_rejects(), 1);
        let mut out = Vec::new();
        s.collect(&mut out);
        assert!(out.contains(&(
            "nx_rejects_total{cause=\"credit\"}".to_string(),
            MetricValue::Counter(2)
        )));
        assert!(out.contains(&(
            "nx_rejects_total{cause=\"depth\"}".to_string(),
            MetricValue::Counter(1)
        )));
        assert!(out.contains(&(
            "nx_rejects_total{cause=\"fault\"}".to_string(),
            MetricValue::Counter(1)
        )));
    }

    #[test]
    fn stats_are_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<NxStats>();
    }

    #[test]
    fn note_recovery_flushes_deltas_and_advances_the_watermark() {
        let s = NxStats::new();
        let flight = nx_telemetry::FlightRecorder::new();
        let mut mark = RecoveryWatermark::default();

        // Nothing moved yet: no notes, quiet dump.
        s.note_recovery(&flight, 100, &mut mark);
        assert!(flight.dump("t", 100).contains("\"counters\":[]"));

        s.record_retry();
        s.record_retry();
        s.record_software_fallback();
        s.note_recovery(&flight, 500, &mut mark);
        let dump = flight.dump("t", 500);
        assert!(dump.contains("\"name\":\"nx_retries_total\",\"delta\":2"));
        assert!(dump.contains("\"name\":\"nx_software_fallbacks_total\",\"delta\":1"));
        assert!(!dump.contains("nx_fault_rejects_total"));

        // The watermark advanced: only movement since the last call is
        // noted, so a second retry shows as a delta of 1, not 3.
        s.record_retry();
        s.note_recovery(&flight, 900, &mut mark);
        assert!(flight
            .dump("t", 900)
            .contains("{\"at\":900,\"name\":\"nx_retries_total\",\"delta\":1}"));
    }
}
