//! The built-in canned-profile registry: content-class profiles trained
//! offline from the synthetic corpus, ready at service startup.
//!
//! The paper's NX unit ships canned Huffman tables because production
//! services compress small (1–16 KiB) RPC, log and JSON payloads where
//! per-block dynamic-table construction dominates. [`default_registry`]
//! is the software analogue: one process-wide
//! [`ProfileRegistry`](nx_deflate::ProfileRegistry) whose entries were
//! derived ([`nx_deflate::Profile::derive`]) from `nx-corpus` samples of
//! each shipped content class, trained lazily on first use and shared by
//! every [`crate::Nx`] handle that was not given an explicit registry via
//! [`crate::Nx::with_profiles`].
//!
//! Training is deterministic: fixed seeds (disjoint from the evaluation
//! seeds the experiments use), fixed sample geometry, and the profiler's
//! own deterministic fragment selection — retraining always reproduces
//! the same registry bytes, so golden tests can pin its serialization.
//!
//! ```
//! use nx_core::{profiles, CompressOptions, Format, Nx};
//!
//! # fn main() -> Result<(), nx_core::Error> {
//! let nx = Nx::power9();
//! let (id, profile) = profiles::default_registry().by_name("json").unwrap();
//! let payload = br#"{"user": "u1", "status": "active"}"#.repeat(40);
//! let c = nx.compress_with(&payload, Format::Zlib, CompressOptions::new().with_profile(id))?;
//! let back = nx_core::software::decompress_with_dict(&c.bytes, Format::Zlib, profile.dict())?;
//! assert_eq!(back, payload);
//! # Ok(())
//! # }
//! ```

use nx_corpus::CorpusKind;
use nx_deflate::{CompressionLevel, Profile, ProfileRegistry};
use std::sync::{Arc, OnceLock};

/// Content classes the built-in registry ships, in slot order. These are
/// the record-shaped corpus kinds real small-payload services send; the
/// incompressible and bulk kinds (random, redundant, sensor) deliberately
/// have no profile — canned tables cannot help them.
pub const DEFAULT_CLASSES: [CorpusKind; 5] = [
    CorpusKind::Json,
    CorpusKind::Logs,
    CorpusKind::Text,
    CorpusKind::Xmlish,
    CorpusKind::Code,
];

/// Samples drawn per class during training. Enough draws that recurring
/// fragments of low-redundancy classes (natural text) actually recur
/// across samples and make it into the dictionary.
const TRAIN_SAMPLES: u64 = 64;

/// Bytes per training sample — the middle of the small-payload band.
const TRAIN_SAMPLE_LEN: usize = 4 << 10;

/// Seed base for training samples. Experiments evaluate on low seeds
/// (0..~100); training stays in a disjoint range so measured uplift is
/// never train-on-test.
const TRAIN_SEED_BASE: u64 = 7_700;

/// Preset-dictionary budget for the shipped profiles. The profiler's
/// default cap measures best on 1–16 KiB payloads: a deeper dictionary
/// pushes the most useful fragments to longer distances and its
/// per-request priming cost grows past the payloads it serves.
const TRAIN_DICT_CAP: usize = nx_deflate::profile::DEFAULT_DICT_CAP;

/// Per-class tokenization level of the shipped profiles, tuned offline
/// (E26): the fastest rung in the batched speculative matcher's band
/// (1–3) whose dictionary-primed canned ratio still meets the default
/// ladder's on the small-payload corpus. On 1–16 KiB payloads the
/// preset dictionary recovers more ratio than the shallow parse gives
/// up, so the canned path is both faster *and* no worse in ratio —
/// the point of one-pass encode for small payloads. Natural text is
/// the outlier: its Markov stream carries little exact redundancy, so
/// the deeper level-3 parse buys ~0.4% ratio for ~15% throughput and
/// the profiler settles one rung lower.
const DEFAULT_CLASS_LEVELS: [(CorpusKind, u32); 5] = [
    (CorpusKind::Json, 3),
    (CorpusKind::Logs, 3),
    (CorpusKind::Text, 2),
    (CorpusKind::Xmlish, 3),
    (CorpusKind::Code, 3),
];

static DEFAULT_REGISTRY: OnceLock<Arc<ProfileRegistry>> = OnceLock::new();

/// Trains one class profile at `level` from the fixed training window.
fn train_profile(kind: CorpusKind, level: CompressionLevel) -> Profile {
    let samples: Vec<Vec<u8>> = (0..TRAIN_SAMPLES)
        .map(|i| kind.generate(TRAIN_SEED_BASE + i, TRAIN_SAMPLE_LEN))
        .collect();
    let refs: Vec<&[u8]> = samples.iter().map(Vec::as_slice).collect();
    Profile::derive(kind.name(), &refs, level, TRAIN_DICT_CAP)
        .expect("corpus training samples are never empty")
}

/// Trains a registry over [`DEFAULT_CLASSES`] at `level`, one profile per
/// class, named by [`CorpusKind::name`]. Deterministic (see module docs).
pub fn train_registry(level: CompressionLevel) -> ProfileRegistry {
    let mut reg = ProfileRegistry::new();
    for &kind in &DEFAULT_CLASSES {
        reg.push(train_profile(kind, level));
    }
    reg
}

/// The process-wide default registry, trained on first use at the
/// class-tuned [`DEFAULT_CLASS_LEVELS`] and shared by every handle
/// without an explicit registry.
pub fn default_registry() -> &'static Arc<ProfileRegistry> {
    DEFAULT_REGISTRY.get_or_init(|| {
        let mut reg = ProfileRegistry::new();
        for &(kind, level) in &DEFAULT_CLASS_LEVELS {
            reg.push(train_profile(
                kind,
                CompressionLevel::new(level).expect("valid class level"),
            ));
        }
        Arc::new(reg)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_registry_covers_the_shipped_classes() {
        let reg = default_registry();
        assert_eq!(reg.len(), DEFAULT_CLASSES.len());
        for kind in DEFAULT_CLASSES {
            let (_, p) = reg
                .by_name(kind.name())
                .unwrap_or_else(|| panic!("missing class {}", kind.name()));
            assert!(
                !p.dict().is_empty(),
                "{} trained no dictionary",
                kind.name()
            );
        }
    }

    #[test]
    fn training_is_deterministic() {
        let level = CompressionLevel::new(6).unwrap();
        let a = train_registry(level).to_bytes();
        let b = train_registry(level).to_bytes();
        assert_eq!(a, b);
        // And round-trips through the wire format.
        let back = ProfileRegistry::from_bytes(&a).unwrap();
        assert_eq!(back.to_bytes(), a);
    }
}
