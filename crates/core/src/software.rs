//! The software path: plain zlib-style compression on the CPU, used as
//! the baseline in every experiment and as a fallback where no
//! accelerator exists.

use crate::framing::{self, Format};
use crate::Result;
use nx_deflate::adler32::adler32;
use nx_deflate::{CompressionLevel, Engine, Profile};

/// Compresses `data` in software at `level`, framed as `format`.
///
/// ```
/// use nx_core::{software, Format};
/// use nx_deflate::CompressionLevel;
///
/// # fn main() -> Result<(), nx_core::Error> {
/// let out = software::compress(b"abcabcabc", CompressionLevel::new(6)?, Format::Zlib);
/// assert_eq!(software::decompress(&out, Format::Zlib)?, b"abcabcabc");
/// # Ok(())
/// # }
/// ```
pub fn compress(data: &[u8], level: CompressionLevel, format: Format) -> Vec<u8> {
    compress_with_engine(data, level, Engine::Auto, format)
}

/// Compresses `data` in software at `level` with an explicit LZ77
/// [`Engine`] selection (sequential ladder vs. the batched speculative
/// matcher), framed as `format`.
pub fn compress_with_engine(
    data: &[u8],
    level: CompressionLevel,
    engine: Engine,
    format: Format,
) -> Vec<u8> {
    let raw = nx_deflate::Encoder::with_engine(level, engine).compress(data);
    framing::wrap(raw, data, format)
}

/// Compresses `data` through the **one-pass canned path** of `profile`
/// (see [`nx_deflate::deflate_canned`]), framed as `format`.
///
/// Framing decides the preset-dictionary use, mirroring what each
/// container can express:
///
/// * **Zlib** — dictionary-primed when the profile carries a dictionary,
///   framed with the RFC 1950 FDICT flag and the dictionary's DICTID.
///   Decode with [`decompress_with_dict`] (or zlib `inflateSetDictionary`
///   semantics elsewhere).
/// * **Raw DEFLATE** — dictionary-primed; the caller owns the out-of-band
///   dictionary agreement, as with `deflateSetDictionary` on raw streams.
/// * **Gzip** — canned tables only, *no* dictionary: gzip has no FDICT,
///   so the output stays decodable by any stock `gzip -dc`.
pub fn compress_with_profile(
    data: &[u8],
    engine: Engine,
    profile: &Profile,
    format: Format,
) -> Vec<u8> {
    match format {
        Format::RawDeflate => nx_deflate::deflate_canned(data, engine, profile, true),
        Format::Gzip => {
            let raw = nx_deflate::deflate_canned(data, engine, profile, false);
            framing::wrap(raw, data, Format::Gzip)
        }
        Format::Zlib => {
            if profile.dict().is_empty() {
                let raw = nx_deflate::deflate_canned(data, engine, profile, false);
                framing::wrap(raw, data, Format::Zlib)
            } else {
                let raw = nx_deflate::deflate_canned(data, engine, profile, true);
                nx_deflate::zlib::wrap_deflate_with_dict(&raw, adler32(data), profile.dict_id())
            }
        }
    }
}

/// Decompresses `format`-framed `data` in software.
///
/// # Errors
///
/// [`crate::Error::Deflate`] for malformed containers or streams.
pub fn decompress(data: &[u8], format: Format) -> Result<Vec<u8>> {
    let un = framing::unwrap(data, format)?;
    let out = nx_deflate::inflate(un.deflate_stream)?;
    un.verify(&out)?;
    Ok(out)
}

/// Decompresses `format`-framed `data` with a preset dictionary — the
/// decode side of [`compress_with_profile`]'s dictionary modes.
///
/// Zlib streams are verified against the dictionary's DICTID; raw streams
/// prime the window directly; gzip streams never carry a dictionary, so
/// `dict` is ignored and the stream decodes normally.
///
/// # Errors
///
/// [`crate::Error::Deflate`] for malformed input,
/// [`nx_deflate::Error::DictionaryMismatch`] when a zlib stream's DICTID
/// disagrees with `dict` (or the stream never requested one).
pub fn decompress_with_dict(data: &[u8], format: Format, dict: &[u8]) -> Result<Vec<u8>> {
    match format {
        Format::RawDeflate => Ok(nx_deflate::inflate_with_dict(data, dict)?),
        Format::Zlib => Ok(nx_deflate::zlib::decompress_with_dict(data, dict)?),
        Format::Gzip => decompress(data, format),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn software_and_accelerator_streams_interoperate() {
        // Software output decodes on the accelerator and vice versa — the
        // paper's interoperability requirement.
        let nx = crate::Nx::power9();
        let data = nx_corpus::CorpusKind::Text.generate(3, 32 * 1024);
        for format in [Format::RawDeflate, Format::Gzip, Format::Zlib] {
            let sw = compress(&data, CompressionLevel::new(9).unwrap(), format);
            assert_eq!(nx.decompress(&sw, format).unwrap().bytes, data);
            let hw = nx.compress(&data, format).unwrap();
            assert_eq!(decompress(&hw.bytes, format).unwrap(), data);
        }
    }

    #[test]
    fn all_levels_roundtrip_gzip() {
        let data = b"levels levels levels levels".repeat(10);
        for l in 0..=9 {
            let level = CompressionLevel::new(l).unwrap();
            let out = compress(&data, level, Format::Gzip);
            assert_eq!(decompress(&out, Format::Gzip).unwrap(), data);
        }
    }
}
