//! The software path: plain zlib-style compression on the CPU, used as
//! the baseline in every experiment and as a fallback where no
//! accelerator exists.

use crate::framing::{self, Format};
use crate::Result;
use nx_deflate::{CompressionLevel, Engine};

/// Compresses `data` in software at `level`, framed as `format`.
///
/// ```
/// use nx_core::{software, Format};
/// use nx_deflate::CompressionLevel;
///
/// # fn main() -> Result<(), nx_core::Error> {
/// let out = software::compress(b"abcabcabc", CompressionLevel::new(6)?, Format::Zlib);
/// assert_eq!(software::decompress(&out, Format::Zlib)?, b"abcabcabc");
/// # Ok(())
/// # }
/// ```
pub fn compress(data: &[u8], level: CompressionLevel, format: Format) -> Vec<u8> {
    compress_with_engine(data, level, Engine::Auto, format)
}

/// Compresses `data` in software at `level` with an explicit LZ77
/// [`Engine`] selection (sequential ladder vs. the batched speculative
/// matcher), framed as `format`.
pub fn compress_with_engine(
    data: &[u8],
    level: CompressionLevel,
    engine: Engine,
    format: Format,
) -> Vec<u8> {
    let raw = nx_deflate::Encoder::with_engine(level, engine).compress(data);
    framing::wrap(raw, data, format)
}

/// Decompresses `format`-framed `data` in software.
///
/// # Errors
///
/// [`crate::Error::Deflate`] for malformed containers or streams.
pub fn decompress(data: &[u8], format: Format) -> Result<Vec<u8>> {
    let un = framing::unwrap(data, format)?;
    let out = nx_deflate::inflate(un.deflate_stream)?;
    un.verify(&out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn software_and_accelerator_streams_interoperate() {
        // Software output decodes on the accelerator and vice versa — the
        // paper's interoperability requirement.
        let nx = crate::Nx::power9();
        let data = nx_corpus::CorpusKind::Text.generate(3, 32 * 1024);
        for format in [Format::RawDeflate, Format::Gzip, Format::Zlib] {
            let sw = compress(&data, CompressionLevel::new(9).unwrap(), format);
            assert_eq!(nx.decompress(&sw, format).unwrap().bytes, data);
            let hw = nx.compress(&data, format).unwrap();
            assert_eq!(decompress(&hw.bytes, format).unwrap(), data);
        }
    }

    #[test]
    fn all_levels_roundtrip_gzip() {
        let data = b"levels levels levels levels".repeat(10);
        for l in 0..=9 {
            let level = CompressionLevel::new(l).unwrap();
            let out = compress(&data, level, Format::Gzip);
            assert_eq!(decompress(&out, Format::Gzip).unwrap(), data);
        }
    }
}
