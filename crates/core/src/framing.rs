//! Output framing: raw DEFLATE, gzip (RFC 1952) or zlib (RFC 1950).
//!
//! The accelerator computes CRC-32/Adler-32 inline with the data movement;
//! the facade reproduces that by checksumming the payload once while
//! wrapping.

use crate::Result;
use nx_deflate::{adler32::adler32, crc32::crc32, gzip, zlib, Error as DeflateError};

/// Container format for accelerator output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// Bare RFC 1951 stream, no checksum.
    RawDeflate,
    /// gzip member with CRC-32 + length trailer.
    Gzip,
    /// zlib stream with Adler-32 trailer.
    Zlib,
}

/// Wraps an accelerator-produced raw stream in the requested container.
pub(crate) fn wrap(raw: Vec<u8>, original: &[u8], format: Format) -> Vec<u8> {
    match format {
        Format::RawDeflate => raw,
        Format::Gzip => gzip::wrap_deflate(&raw, crc32(original), original.len() as u64),
        Format::Zlib => zlib::wrap_deflate(&raw, adler32(original)),
    }
}

/// A parsed container: the raw stream plus the trailer expectations.
#[derive(Debug)]
pub(crate) struct Unwrapped<'a> {
    /// The raw DEFLATE payload.
    pub deflate_stream: &'a [u8],
    expected_crc32: Option<u32>,
    expected_adler: Option<u32>,
    expected_len: Option<u32>,
}

impl Unwrapped<'_> {
    /// Verifies the decoded payload against the container trailer.
    pub fn verify(&self, decoded: &[u8]) -> Result<()> {
        if let Some(c) = self.expected_crc32 {
            if c != crc32(decoded) {
                return Err(DeflateError::GzipChecksumMismatch.into());
            }
        }
        if let Some(l) = self.expected_len {
            if l != (decoded.len() & 0xFFFF_FFFF) as u32 {
                return Err(DeflateError::GzipChecksumMismatch.into());
            }
        }
        if let Some(a) = self.expected_adler {
            if a != adler32(decoded) {
                return Err(DeflateError::ZlibChecksumMismatch.into());
            }
        }
        Ok(())
    }
}

/// Parses a container down to its raw DEFLATE payload without inflating.
pub(crate) fn unwrap(data: &[u8], format: Format) -> Result<Unwrapped<'_>> {
    match format {
        Format::RawDeflate => Ok(Unwrapped {
            deflate_stream: data,
            expected_crc32: None,
            expected_adler: None,
            expected_len: None,
        }),
        Format::Gzip => {
            // Minimal header parse (no optional fields produced by the
            // accelerator path; full parsing lives in nx_deflate::gzip).
            if data.len() < 18 {
                return Err(DeflateError::UnexpectedEof.into());
            }
            if data[0..2] != [0x1F, 0x8B] || data[2] != 8 {
                return Err(DeflateError::BadGzipHeader.into());
            }
            if data[3] != 0 {
                // Optional fields present: fall back to the full parser
                // for the header length, then slice.
                let (_, _, _used) = gzip::decompress_with_header(data)?;
                // Full path already verified everything; represent that.
                return Ok(Unwrapped {
                    deflate_stream: &data[10..data.len() - 8],
                    expected_crc32: None,
                    expected_adler: None,
                    expected_len: None,
                });
            }
            let n = data.len();
            Ok(Unwrapped {
                deflate_stream: &data[10..n - 8],
                expected_crc32: Some(u32::from_le_bytes(data[n - 8..n - 4].try_into().expect("4"))),
                expected_len: Some(u32::from_le_bytes(data[n - 4..].try_into().expect("4"))),
                expected_adler: None,
            })
        }
        Format::Zlib => {
            if data.len() < 6 {
                return Err(DeflateError::UnexpectedEof.into());
            }
            if data[0] & 0x0F != 8
                || (u16::from(data[0]) * 256 + u16::from(data[1])) % 31 != 0
                || data[1] & 0x20 != 0
            {
                return Err(DeflateError::BadZlibHeader.into());
            }
            let n = data.len();
            Ok(Unwrapped {
                deflate_stream: &data[2..n - 4],
                expected_adler: Some(u32::from_be_bytes(data[n - 4..].try_into().expect("4"))),
                expected_crc32: None,
                expected_len: None,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Error;
    use nx_deflate::{deflate, CompressionLevel};

    #[test]
    fn wrap_unwrap_roundtrip() {
        let data = b"framing roundtrip payload";
        let raw = deflate(data, CompressionLevel::default());
        for format in [Format::RawDeflate, Format::Gzip, Format::Zlib] {
            let framed = wrap(raw.clone(), data, format);
            let un = unwrap(&framed, format).unwrap();
            assert_eq!(
                nx_deflate::inflate(un.deflate_stream).unwrap(),
                data,
                "{format:?}"
            );
            un.verify(data).unwrap();
        }
    }

    #[test]
    fn verify_catches_wrong_payload() {
        let data = b"the true payload";
        let raw = deflate(data, CompressionLevel::default());
        let framed = wrap(raw, data, Format::Gzip);
        let un = unwrap(&framed, Format::Gzip).unwrap();
        assert!(matches!(un.verify(b"another payload"), Err(Error::Deflate(_))));
    }

    #[test]
    fn bad_headers_rejected() {
        assert!(unwrap(&[0u8; 20], Format::Gzip).is_err());
        assert!(unwrap(&[0u8; 8], Format::Zlib).is_err());
        assert!(unwrap(&[], Format::Gzip).is_err());
    }
}
