//! Output framing: raw DEFLATE, gzip (RFC 1952) or zlib (RFC 1950).
//!
//! The accelerator computes CRC-32/Adler-32 inline with the data movement;
//! the facade reproduces that by checksumming the payload once while
//! wrapping.

use crate::Result;
use nx_deflate::{adler32::adler32, crc32::crc32, gzip, zlib, Error as DeflateError};

/// Container format for accelerator output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// Bare RFC 1951 stream, no checksum.
    RawDeflate,
    /// gzip member with CRC-32 + length trailer.
    Gzip,
    /// zlib stream with Adler-32 trailer.
    Zlib,
}

/// Wraps an accelerator-produced raw stream in the requested container.
pub(crate) fn wrap(raw: Vec<u8>, original: &[u8], format: Format) -> Vec<u8> {
    match format {
        Format::RawDeflate => raw,
        Format::Gzip => gzip::wrap_deflate(&raw, crc32(original), original.len() as u64),
        Format::Zlib => zlib::wrap_deflate(&raw, adler32(original)),
    }
}

/// A parsed container: the raw stream plus the trailer expectations.
#[derive(Debug)]
pub(crate) struct Unwrapped<'a> {
    /// The raw DEFLATE payload.
    pub deflate_stream: &'a [u8],
    expected_crc32: Option<u32>,
    expected_adler: Option<u32>,
    expected_len: Option<u32>,
}

impl Unwrapped<'_> {
    /// Verifies the decoded payload against the container trailer.
    pub fn verify(&self, decoded: &[u8]) -> Result<()> {
        if let Some(c) = self.expected_crc32 {
            if c != crc32(decoded) {
                return Err(DeflateError::GzipChecksumMismatch.into());
            }
        }
        if let Some(l) = self.expected_len {
            if l != (decoded.len() & 0xFFFF_FFFF) as u32 {
                return Err(DeflateError::GzipChecksumMismatch.into());
            }
        }
        if let Some(a) = self.expected_adler {
            if a != adler32(decoded) {
                return Err(DeflateError::ZlibChecksumMismatch.into());
            }
        }
        Ok(())
    }
}

/// Reads the 4-byte trailer field at `at`, surfacing truncation as a
/// typed error instead of panicking on the slice conversion.
fn trailer4(data: &[u8], at: usize) -> std::result::Result<[u8; 4], DeflateError> {
    data.get(at..at + 4)
        .and_then(|s| <[u8; 4]>::try_from(s).ok())
        .ok_or(DeflateError::UnexpectedEof)
}

/// Parses a container down to its raw DEFLATE payload without inflating.
pub(crate) fn unwrap(data: &[u8], format: Format) -> Result<Unwrapped<'_>> {
    match format {
        Format::RawDeflate => Ok(Unwrapped {
            deflate_stream: data,
            expected_crc32: None,
            expected_adler: None,
            expected_len: None,
        }),
        Format::Gzip => {
            if data.len() < 18 {
                return Err(DeflateError::UnexpectedEof.into());
            }
            if data[0..2] != [0x1F, 0x8B] || data[2] != 8 {
                return Err(DeflateError::BadGzipHeader.into());
            }
            let flg = data[3];
            if flg & 0b1110_0000 != 0 {
                return Err(DeflateError::BadGzipHeader.into());
            }
            // Skip the optional header fields (RFC 1952 §2.3.1) so the
            // payload slice starts at the DEFLATE stream even for
            // foreign producers (`gzip(1)` sets FNAME by default).
            let mut pos = 10usize;
            if flg & 0x04 != 0 {
                // FEXTRA: u16 length + payload.
                if pos + 2 > data.len() {
                    return Err(DeflateError::UnexpectedEof.into());
                }
                pos += 2 + usize::from(u16::from_le_bytes([data[pos], data[pos + 1]]));
            }
            for flag in [0x08, 0x10] {
                // FNAME, FCOMMENT: zero-terminated strings.
                if flg & flag != 0 {
                    let end = data
                        .get(pos..)
                        .and_then(|rest| rest.iter().position(|&b| b == 0))
                        .ok_or(DeflateError::UnexpectedEof)?;
                    pos += end + 1;
                }
            }
            if flg & 0x02 != 0 {
                // FHCRC: CRC-16 of the header.
                pos += 2;
            }
            let n = data.len();
            if pos + 8 > n {
                return Err(DeflateError::UnexpectedEof.into());
            }
            Ok(Unwrapped {
                deflate_stream: &data[pos..n - 8],
                expected_crc32: Some(u32::from_le_bytes(trailer4(data, n - 8)?)),
                expected_len: Some(u32::from_le_bytes(trailer4(data, n - 4)?)),
                expected_adler: None,
            })
        }
        Format::Zlib => {
            if data.len() < 6 {
                return Err(DeflateError::UnexpectedEof.into());
            }
            if data[0] & 0x0F != 8
                || (u16::from(data[0]) * 256 + u16::from(data[1])) % 31 != 0
                || data[1] & 0x20 != 0
            {
                return Err(DeflateError::BadZlibHeader.into());
            }
            let n = data.len();
            Ok(Unwrapped {
                deflate_stream: &data[2..n - 4],
                expected_adler: Some(u32::from_be_bytes(trailer4(data, n - 4)?)),
                expected_crc32: None,
                expected_len: None,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Error;
    use nx_deflate::{deflate, CompressionLevel};

    #[test]
    fn wrap_unwrap_roundtrip() {
        let data = b"framing roundtrip payload";
        let raw = deflate(data, CompressionLevel::default());
        for format in [Format::RawDeflate, Format::Gzip, Format::Zlib] {
            let framed = wrap(raw.clone(), data, format);
            let un = unwrap(&framed, format).unwrap();
            assert_eq!(
                nx_deflate::inflate(un.deflate_stream).unwrap(),
                data,
                "{format:?}"
            );
            un.verify(data).unwrap();
        }
    }

    #[test]
    fn verify_catches_wrong_payload() {
        let data = b"the true payload";
        let raw = deflate(data, CompressionLevel::default());
        let framed = wrap(raw, data, Format::Gzip);
        let un = unwrap(&framed, Format::Gzip).unwrap();
        assert!(matches!(
            un.verify(b"another payload"),
            Err(Error::Deflate(_))
        ));
    }

    #[test]
    fn bad_headers_rejected() {
        assert!(unwrap(&[0u8; 20], Format::Gzip).is_err());
        assert!(unwrap(&[0u8; 8], Format::Zlib).is_err());
        assert!(unwrap(&[], Format::Gzip).is_err());
    }

    #[test]
    fn gzip_optional_header_fields_are_skipped() {
        // gzip(1) sets FNAME by default; the payload slice must start
        // after the optional fields, not at byte 10.
        let data = b"payload behind an FNAME header";
        let raw = deflate(data, CompressionLevel::default());
        let mut framed = vec![0x1F, 0x8B, 8, 0x08, 0, 0, 0, 0, 0, 3];
        framed.extend_from_slice(b"some_file.txt\0");
        framed.extend_from_slice(&raw);
        framed.extend_from_slice(&nx_deflate::crc32::crc32(data).to_le_bytes());
        framed.extend_from_slice(&(data.len() as u32).to_le_bytes());
        let un = unwrap(&framed, Format::Gzip).unwrap();
        let out = nx_deflate::inflate(un.deflate_stream).unwrap();
        assert_eq!(out, data);
        un.verify(&out).unwrap();
        // Truncated mid-FNAME (no terminator) is an EOF, not garbage.
        assert!(unwrap(&framed[..16], Format::Gzip).is_err());
    }

    #[test]
    fn every_truncation_returns_a_typed_error_not_a_panic() {
        // Regression for the `expect("4")` trailer reads: any prefix of a
        // valid container must parse or fail with a typed error — never
        // panic on the slice conversion.
        let data = b"truncation torture payload".repeat(8);
        let raw = deflate(&data, CompressionLevel::default());
        for format in [Format::RawDeflate, Format::Gzip, Format::Zlib] {
            let framed = wrap(raw.clone(), &data, format);
            for cut in 0..framed.len() {
                let _ = unwrap(&framed[..cut], format);
            }
            assert!(unwrap(&framed, format).is_ok());
        }
    }

    #[test]
    fn trailer4_rejects_short_reads() {
        assert!(trailer4(&[1, 2, 3], 0).is_err());
        assert!(trailer4(&[1, 2, 3, 4], 1).is_err());
        assert_eq!(trailer4(&[1, 2, 3, 4], 0), Ok([1, 2, 3, 4]));
    }
}
