#![warn(missing_docs)]

//! `nx-core` — the user-facing library of the `nxsim` stack: a modeled
//! IBM POWER9/z15 on-chip compression accelerator behind the API a
//! downstream application would actually adopt.
//!
//! * [`Nx`] is an accelerator handle: synchronous compress/decompress in
//!   raw-DEFLATE, gzip or zlib [`Format`]s, 842 for memory-compression
//!   use cases, per-request [cycle reports](nx_accel::CompressReport) and
//!   aggregate [`NxStats`].
//! * [`AsyncSession`] queues jobs to a background engine thread —
//!   mirroring the asynchronous paste/CSB usage model on POWER9 — and
//!   hands back [`JobHandle`]s to wait on.
//! * [`parallel`] shards one stream across a worker pool (pigz-style)
//!   while still emitting a single valid gzip/zlib/raw stream, with the
//!   trailer checksum folded from per-shard values.
//! * [`software`] exposes the zlib-level software path for baselines and
//!   fallback.
//!
//! ```
//! use nx_core::{Format, Nx};
//!
//! # fn main() -> Result<(), nx_core::Error> {
//! let nx = Nx::power9();
//! let data = b"hello hello hello hello".repeat(20);
//! let gz = nx.compress(&data, Format::Gzip)?;
//! assert!(gz.bytes.len() < data.len());
//! let back = nx.decompress(&gz.bytes, Format::Gzip)?;
//! assert_eq!(back.bytes, data);
//! # Ok(())
//! # }
//! ```

pub mod async_queue;
pub mod fault;
pub mod framing;
pub mod parallel;
pub mod parallel_inflate;
pub mod profiles;
pub mod scratch;
pub mod service;
pub mod software;
pub mod stats;
pub mod stream;

pub use async_queue::{AsyncSession, JobHandle};
pub use fault::{FaultInjector, FaultPlan, FaultRates, RecoveryPolicy};
pub use framing::Format;
pub use parallel::{ParallelEngine, ParallelOptions, ParallelSession};
pub use parallel_inflate::{
    InflateParStats, ParallelInflateOptions, ParallelInflater, SeekCheckpoint, SeekIndex,
};
pub use scratch::{
    BufferPool, EncodePathMetrics, InflatePathMetrics, ProfileMetrics, ScratchSession,
};
pub use service::{
    jain_index, NxService, QosClass, Rejected, ServiceConfig, ServiceError, TenantHandle,
    TenantSpec,
};
pub use stats::{Codec, CodecStats, DirStats, NxStats, RecoveryWatermark};
pub use stream::GzipStream;

// The canned-profile vocabulary callers need to drive
// [`CompressOptions::with_profile`] and [`Nx::with_profiles`].
pub use nx_deflate::{Profile, ProfileCounters, ProfileId, ProfileRegistry};

use nx_accel::{AccelConfig, Accelerator, CompressReport, DecompressReport};
use nx_telemetry::{duration_to_cycles, MetricSource, Stage, TelemetrySink, TraceContext};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// Modeled CRB-build + VAS-paste cost stamped on `submit` spans (cycles).
/// The paper's queue submission is sub-microsecond; ~0.5 µs at the nest
/// clock.
pub(crate) const SUBMIT_CYCLES: u64 = 1200;

/// Modeled CSB-poll + completion-notification cost on `complete` spans.
pub(crate) const COMPLETE_CYCLES: u64 = 400;

/// Modeled cost of touching one faulted page before resubmission
/// (mirrors `nx_sys::erat`'s 150 ns per touch at 2.5 GHz).
const TOUCH_CYCLES_PER_PAGE: u64 = 375;

/// Request-local span emission: a cursor over one request's private
/// cycle timeline. Timelines start at cycle 0 for every request — the
/// property that keeps trace dumps byte-identical across runs no matter
/// how threads interleave.
///
/// A trace is either a **root** ([`Trace::begin`]: fresh trace id,
/// sampling decided by the sink's [`nx_telemetry::Sampler`]) or a
/// **continuation** ([`Trace::begin_in`]: the caller's [`TraceContext`]
/// supplies the trace id, the parent span, the first free span index and
/// the cycle cursor — how the service's admission spans and the engine's
/// execution spans land on one shared timeline). Unsampled traces skip
/// the span ring but still advance seq/cursor, so the deterministic
/// latency arithmetic is identical with sampling on or off.
pub(crate) struct Trace<'a> {
    sink: &'a TelemetrySink,
    request: u64,
    seq: u32,
    parent: u32,
    cursor: u64,
    active: bool,
}

impl<'a> Trace<'a> {
    pub(crate) fn begin(sink: &'a TelemetrySink) -> Self {
        if !sink.is_enabled() {
            return Self {
                sink,
                request: 0,
                seq: 0,
                parent: 0,
                cursor: 0,
                active: false,
            };
        }
        let ctx = sink.begin_trace();
        Self::begin_in(sink, &ctx)
    }

    /// A continuation of the caller's trace (see type docs).
    pub(crate) fn begin_in(sink: &'a TelemetrySink, ctx: &TraceContext) -> Self {
        Self {
            sink,
            request: ctx.trace_id,
            seq: ctx.child_seq,
            parent: ctx.parent_span,
            cursor: ctx.at_cycles,
            active: ctx.sampled && sink.is_enabled(),
        }
    }

    /// Emits a span at the cursor and advances it by `dur` cycles.
    pub(crate) fn span(&mut self, stage: Stage, dur: u64, bytes: u64, detail: u64) {
        if self.active {
            self.sink.emit(
                self.request,
                self.seq,
                self.parent,
                stage,
                0,
                self.cursor,
                dur,
                bytes,
                detail,
            );
        }
        self.seq += 1;
        self.cursor += dur;
    }

    /// Closes the timeline: a `complete` span plus the request-latency
    /// and bytes histograms (the latency bucket keeps this trace id as
    /// its exemplar when the trace is sampled).
    pub(crate) fn finish(&mut self, bytes: u64) {
        self.span(Stage::Complete, COMPLETE_CYCLES, bytes, 0);
        if self.active {
            self.sink
                .record_request_traced(self.cursor, bytes, self.request);
        } else {
            self.sink.record_request(self.cursor, bytes);
        }
    }
}

/// Errors surfaced by the facade.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The DEFLATE/gzip/zlib payload was malformed.
    Deflate(nx_deflate::Error),
    /// The 842 payload was malformed.
    P842(nx_842::Error),
    /// The async engine was shut down before the job completed.
    EngineClosed,
    /// The accelerator is unavailable and software fallback is disabled.
    AcceleratorUnavailable,
    /// No CSB arrived within the deadline on any of `attempts` tries.
    SubmissionTimeout {
        /// Submission attempts made before giving up.
        attempts: u32,
    },
    /// The submission queue stayed full (async: [`AsyncSession::try_submit`]
    /// found no room; sync: every retry was rejected).
    QueueOverflow,
    /// The engine's output failed its integrity check on every one of
    /// `attempts` tries.
    CorruptedOutput {
        /// Submission attempts made before giving up.
        attempts: u32,
    },
    /// A parallel engine was requested with zero workers.
    NoWorkers,
    /// A serialized [`SeekIndex`] was malformed, or an index disagreed
    /// with the stream it was applied to.
    InvalidSeekIndex,
    /// A random-access offset lay beyond the end of the indexed stream.
    SeekOutOfRange,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Deflate(e) => write!(f, "deflate error: {e}"),
            Error::P842(e) => write!(f, "842 error: {e}"),
            Error::EngineClosed => write!(f, "accelerator engine closed"),
            Error::AcceleratorUnavailable => write!(f, "accelerator unavailable"),
            Error::SubmissionTimeout { attempts } => {
                write!(f, "no CSB completion after {attempts} submission attempts")
            }
            Error::QueueOverflow => write!(f, "submission queue full"),
            Error::CorruptedOutput { attempts } => {
                write!(f, "output failed integrity check on {attempts} attempts")
            }
            Error::NoWorkers => write!(f, "parallel engine needs at least one worker"),
            Error::InvalidSeekIndex => {
                write!(f, "seek index malformed or inconsistent with stream")
            }
            Error::SeekOutOfRange => write!(f, "seek offset beyond end of indexed stream"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Deflate(e) => Some(e),
            Error::P842(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nx_deflate::Error> for Error {
    fn from(e: nx_deflate::Error) -> Self {
        Error::Deflate(e)
    }
}

impl From<nx_842::Error> for Error {
    fn from(e: nx_842::Error) -> Self {
        Error::P842(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Per-request compression knobs threaded through the facade: the effort
/// rung on the software encoder's level ladder, the LZ77 engine, and an
/// optional canned [`ProfileId`] selecting the one-pass encode path.
///
/// The modeled accelerator is fixed-function — it has no level knob, just
/// like the NX unit — so options only steer the *software* paths: the
/// direct software encoder ([`Nx::compress_with`]), the parallel shard
/// engine ([`Nx::parallel_session_with`]), scratch sessions, the async
/// queue ([`AsyncSession::submit_with`]) and the service tier
/// ([`TenantHandle::submit_with`]).
///
/// ```
/// use nx_core::CompressOptions;
/// use nx_deflate::Level;
///
/// let fast = CompressOptions::from_level(Level::Fastest);
/// assert_eq!(fast.level().get(), 1);
/// assert_eq!(CompressOptions::default().ladder(), Level::Default);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompressOptions {
    level: nx_deflate::CompressionLevel,
    engine: nx_deflate::Engine,
    profile: Option<nx_deflate::ProfileId>,
}

impl CompressOptions {
    /// Options at the default level (zlib's 6).
    pub fn new() -> Self {
        Self::default()
    }

    /// Options at a ladder rung ([`nx_deflate::Level`]).
    pub fn from_level(level: nx_deflate::Level) -> Self {
        Self {
            level: level.into(),
            ..Self::default()
        }
    }

    /// Options at a numeric zlib-style level (0..=9).
    ///
    /// # Errors
    ///
    /// [`Error::Deflate`] if `level > 9`.
    pub fn from_numeric(level: u32) -> Result<Self> {
        Ok(Self {
            level: nx_deflate::CompressionLevel::new(level)?,
            ..Self::default()
        })
    }

    /// Forces an LZ77 [`nx_deflate::Engine`] for the software paths:
    /// `Speculative` runs the NX-style batched matcher at every rung,
    /// `Sequential` the classic greedy/lazy ladder; the default `Auto`
    /// routes levels 1–3 through the batch engine. Non-default engines
    /// make the options accelerator-ineligible, like non-default levels.
    pub fn with_engine(mut self, engine: nx_deflate::Engine) -> Self {
        self.engine = engine;
        self
    }

    /// The LZ77 engine selection in force.
    pub fn engine(&self) -> nx_deflate::Engine {
        self.engine
    }

    /// Selects a canned profile from the handle's
    /// [`ProfileRegistry`] (see [`Nx::with_profiles`] and
    /// [`profiles::default_registry`]): the request compresses through the
    /// one-pass canned path — preset dictionary plus pre-fused Huffman
    /// tables — instead of the per-block dynamic pipeline. Like a
    /// non-default level, a profile makes the options
    /// accelerator-ineligible: the canned encode runs on the software
    /// path. An id absent from the registry is counted as a profile miss
    /// and degrades to the level ladder.
    pub fn with_profile(mut self, id: nx_deflate::ProfileId) -> Self {
        self.profile = Some(id);
        self
    }

    /// The canned profile selection in force, if any.
    pub fn profile(&self) -> Option<nx_deflate::ProfileId> {
        self.profile
    }

    /// The exact numeric compression level in force.
    pub fn level(&self) -> nx_deflate::CompressionLevel {
        self.level
    }

    /// The ladder rung the numeric level falls on.
    pub fn ladder(&self) -> nx_deflate::Level {
        nx_deflate::Level::from_numeric(self.level.get())
    }

    /// Whether these are the default options (accelerator-eligible: the
    /// async queue only degrades to the software encoder for jobs that
    /// ask for a non-default level).
    pub fn is_default(&self) -> bool {
        *self == Self::default()
    }
}

/// A compression result: the produced bytes plus the engine's cycle
/// report.
#[derive(Debug, Clone)]
pub struct Compressed {
    /// The framed output.
    pub bytes: Vec<u8>,
    /// The engine's cycle accounting for this request.
    pub report: CompressReport,
}

/// A decompression result.
#[derive(Debug, Clone)]
pub struct Decompressed {
    /// The recovered payload.
    pub bytes: Vec<u8>,
    /// The engine's cycle accounting for this request.
    pub report: DecompressReport,
}

/// Internal view of a request result's output bytes, so the recovery
/// loop can run its integrity check over either direction.
trait Payload {
    fn payload_ref(&self) -> &[u8];
    /// Modeled engine cycles this result cost (for `engine` spans).
    fn engine_cycles(&self) -> u64;
    fn payload_len(&self) -> usize {
        self.payload_ref().len()
    }
    fn payload_clone(&self) -> Vec<u8> {
        self.payload_ref().to_vec()
    }
}

impl Payload for Compressed {
    fn payload_ref(&self) -> &[u8] {
        &self.bytes
    }
    fn engine_cycles(&self) -> u64 {
        self.report.cycles
    }
}

impl Payload for Decompressed {
    fn payload_ref(&self) -> &[u8] {
        &self.bytes
    }
    fn engine_cycles(&self) -> u64 {
        self.report.cycles
    }
}

/// A handle to one modeled accelerator unit.
///
/// Cloning shares the underlying engine (and its statistics), like
/// multiple threads sharing one NX unit through their VAS windows.
#[derive(Debug, Clone)]
pub struct Nx {
    inner: Arc<Mutex<Accelerator>>,
    stats: Arc<NxStats>,
    config: AccelConfig,
    opts: CompressOptions,
    faults: Option<Arc<FaultInjector>>,
    telemetry: TelemetrySink,
    pool: Arc<scratch::BufferPool>,
    decode_stats: Arc<InflateParStats>,
    /// Canned-profile registry for [`CompressOptions::with_profile`]
    /// requests; `None` falls back to [`profiles::default_registry`]
    /// lazily, so handles that never touch profiles never pay training.
    profiles: Option<Arc<ProfileRegistry>>,
}

impl Nx {
    /// Creates a handle with an explicit configuration.
    pub fn new(config: AccelConfig) -> Self {
        Self {
            inner: Arc::new(Mutex::new(Accelerator::new(config.clone()))),
            stats: Arc::new(NxStats::new()),
            config,
            opts: CompressOptions::default(),
            faults: None,
            telemetry: TelemetrySink::disabled(),
            pool: Arc::new(scratch::BufferPool::default()),
            decode_stats: Arc::new(InflateParStats::default()),
            profiles: None,
        }
    }

    /// Creates a handle whose submissions run under fault injection:
    /// every compress/decompress goes through the recovery protocol
    /// (resubmit-from-offset with optional touch-ahead, capped
    /// exponential backoff, integrity re-check, software fallback)
    /// against the faults `plan` injects.
    ///
    /// With [`FaultPlan::none`] the handle behaves identically to
    /// [`Nx::new`] modulo the (cheap) injection checks — the E18
    /// experiment holds that overhead under 5%.
    pub fn with_faults(config: AccelConfig, plan: FaultPlan, policy: RecoveryPolicy) -> Self {
        Self {
            inner: Arc::new(Mutex::new(Accelerator::new(config.clone()))),
            stats: Arc::new(NxStats::new()),
            config,
            opts: CompressOptions::default(),
            faults: Some(Arc::new(FaultInjector::new(plan, policy))),
            telemetry: TelemetrySink::disabled(),
            pool: Arc::new(scratch::BufferPool::default()),
            decode_stats: Arc::new(InflateParStats::default()),
            profiles: None,
        }
    }

    /// Sets the handle's default [`CompressOptions`]: the level the
    /// software paths (fallback encoder, [`Nx::compress_with`] at
    /// defaulted options, sessions opened without an explicit level)
    /// compress at. The modeled accelerator itself is fixed-function and
    /// unaffected, exactly like the hardware.
    pub fn with_options(mut self, opts: CompressOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Attaches a canned-profile registry — typically deserialized at
    /// service startup from [`ProfileRegistry::from_bytes`], or trained
    /// with [`profiles::train_registry`]. Requests whose
    /// [`CompressOptions::profile`] names a slot in this registry take
    /// the one-pass canned encode path; without an explicit registry the
    /// lazily trained [`profiles::default_registry`] serves lookups.
    pub fn with_profiles(mut self, registry: Arc<ProfileRegistry>) -> Self {
        self.profiles = Some(registry);
        self
    }

    /// The canned-profile registry in force (the process-wide default
    /// unless [`with_profiles`](Self::with_profiles) attached one).
    pub fn profile_registry(&self) -> &ProfileRegistry {
        self.profiles
            .as_deref()
            .unwrap_or_else(|| profiles::default_registry().as_ref())
    }

    /// Attaches a telemetry sink: every request stage emits a span, the
    /// core latency/size histograms record, and this handle's [`NxStats`]
    /// (plus fault stats, when faulted) register as pull sources on the
    /// sink's registry. Sessions opened afterwards inherit the sink.
    ///
    /// A [`TelemetrySink::disabled`] sink (the default) reduces every
    /// instrumentation point to a null check — E19 holds the enabled
    /// overhead under 5%.
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        if let Some(reg) = sink.registry() {
            reg.register_source("nx-stats", Arc::clone(&self.stats) as Arc<dyn MetricSource>);
            reg.register_source(
                "nx-buffer-pool",
                Arc::clone(&self.pool) as Arc<dyn MetricSource>,
            );
            reg.register_source(
                "nx-inflate-paths",
                Arc::new(scratch::InflatePathMetrics) as Arc<dyn MetricSource>,
            );
            reg.register_source(
                "nx-encode-paths",
                Arc::new(scratch::EncodePathMetrics) as Arc<dyn MetricSource>,
            );
            reg.register_source(
                "nx-decode-parallel",
                Arc::clone(&self.decode_stats) as Arc<dyn MetricSource>,
            );
            reg.register_source(
                "nx-profiles",
                Arc::new(scratch::ProfileMetrics) as Arc<dyn MetricSource>,
            );
            if let Some(inj) = &self.faults {
                reg.register_source("nx-fault-stats", Arc::clone(inj) as Arc<dyn MetricSource>);
            }
        }
        self.telemetry = sink;
        self
    }

    /// The telemetry sink in force (disabled unless
    /// [`with_telemetry`](Self::with_telemetry) attached one).
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }

    /// The fault injector, if this handle was built with one.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.as_ref()
    }

    /// Injection/recovery counters, if this handle was built with a
    /// fault injector.
    pub fn fault_stats(&self) -> Option<&fault::FaultStats> {
        self.faults.as_deref().map(FaultInjector::stats)
    }

    /// A POWER9 NX gzip accelerator.
    pub fn power9() -> Self {
        Self::new(AccelConfig::power9())
    }

    /// A z15 zEDC accelerator.
    pub fn z15() -> Self {
        Self::new(AccelConfig::z15())
    }

    /// The configuration in force.
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// The handle's default compression options.
    pub fn options(&self) -> CompressOptions {
        self.opts
    }

    /// Aggregate statistics across all requests on this handle.
    pub fn stats(&self) -> &NxStats {
        &self.stats
    }

    /// Shared stats arc, for in-crate subsystems (the service front end)
    /// that record on the handle's counters from their own threads.
    pub(crate) fn stats_arc(&self) -> &Arc<NxStats> {
        &self.stats
    }

    /// Compresses `data` into `format` framing on the accelerator.
    ///
    /// # Errors
    ///
    /// Never fails for compression today; the `Result` reserves room for
    /// job-submission failures (queue shutdown) shared with the async
    /// path.
    pub fn compress(&self, data: &[u8], format: Format) -> Result<Compressed> {
        let mut trace = Trace::begin(&self.telemetry);
        self.compress_traced(data, format, &mut trace)
    }

    /// Compresses inside the caller's trace: every span (submit, engine,
    /// retries, fallback, complete) is recorded under `ctx`'s trace id,
    /// hanging beneath its parent span. This is how the service's engine
    /// loop keeps one request's admission, scheduling and execution on a
    /// single followable timeline.
    ///
    /// # Errors
    ///
    /// As [`compress`](Self::compress).
    pub fn compress_in_trace(
        &self,
        data: &[u8],
        format: Format,
        opts: CompressOptions,
        ctx: &TraceContext,
    ) -> Result<Compressed> {
        let mut trace = Trace::begin_in(&self.telemetry, ctx);
        if opts.is_default() {
            self.compress_traced(data, format, &mut trace)
        } else {
            trace.span(Stage::Submit, SUBMIT_CYCLES, data.len() as u64, 0);
            let out = self.compress_software_at(data, format, opts);
            trace.finish(out.bytes.len() as u64);
            Ok(out)
        }
    }

    /// The shared traced compression body (accelerator + recovery).
    fn compress_traced(
        &self,
        data: &[u8],
        format: Format,
        trace: &mut Trace<'_>,
    ) -> Result<Compressed> {
        trace.span(Stage::Submit, SUBMIT_CYCLES, data.len() as u64, 0);
        let out = match self.faults.clone() {
            None => {
                let out = self.compress_accel(data, format)?;
                trace.span(Stage::Engine, out.report.cycles, data.len() as u64, 0);
                out
            }
            Some(inj) => self.compress_recovering(data, format, &inj, trace)?,
        };
        trace.finish(out.bytes.len() as u64);
        Ok(out)
    }

    /// Decompresses `format`-framed `data` on the accelerator.
    ///
    /// # Errors
    ///
    /// [`Error::Deflate`] if the container or stream is malformed; under
    /// fault injection additionally the recovery-exhaustion errors
    /// ([`Error::AcceleratorUnavailable`], [`Error::SubmissionTimeout`],
    /// [`Error::QueueOverflow`], [`Error::CorruptedOutput`]) when
    /// software fallback is disabled.
    pub fn decompress(&self, data: &[u8], format: Format) -> Result<Decompressed> {
        let mut trace = Trace::begin(&self.telemetry);
        self.decompress_traced(data, format, &mut trace)
    }

    /// Decompresses inside the caller's trace — the decode-side twin of
    /// [`compress_in_trace`](Self::compress_in_trace).
    ///
    /// # Errors
    ///
    /// As [`decompress`](Self::decompress).
    pub fn decompress_in_trace(
        &self,
        data: &[u8],
        format: Format,
        ctx: &TraceContext,
    ) -> Result<Decompressed> {
        let mut trace = Trace::begin_in(&self.telemetry, ctx);
        self.decompress_traced(data, format, &mut trace)
    }

    /// The shared traced decompression body (accelerator + recovery).
    fn decompress_traced(
        &self,
        data: &[u8],
        format: Format,
        trace: &mut Trace<'_>,
    ) -> Result<Decompressed> {
        trace.span(Stage::Submit, SUBMIT_CYCLES, data.len() as u64, 0);
        let out = match self.faults.clone() {
            None => {
                let out = self.decompress_accel(data, format)?;
                trace.span(Stage::Engine, out.report.cycles, data.len() as u64, 0);
                out
            }
            Some(inj) => self.decompress_recovering(data, format, &inj, trace)?,
        };
        trace.finish(out.bytes.len() as u64);
        Ok(out)
    }

    /// The direct accelerator compression path (no injection checks).
    fn compress_accel(&self, data: &[u8], format: Format) -> Result<Compressed> {
        let (raw, report) = self.inner.lock().compress(data);
        let bytes = framing::wrap(raw, data, format);
        self.stats.record_compress(
            Codec::Deflate,
            data.len() as u64,
            bytes.len() as u64,
            report.cycles,
        );
        Ok(Compressed { bytes, report })
    }

    /// The direct accelerator decompression path (no injection checks).
    fn decompress_accel(&self, data: &[u8], format: Format) -> Result<Decompressed> {
        let payload = framing::unwrap(data, format)?;
        let (bytes, report) = self.inner.lock().decompress(payload.deflate_stream)?;
        payload.verify(&bytes)?;
        self.stats.record_decompress(
            Codec::Deflate,
            data.len() as u64,
            bytes.len() as u64,
            report.cycles,
        );
        Ok(Decompressed { bytes, report })
    }

    /// Compresses `data` with explicit per-request options. Default
    /// options go to the accelerator (which has no level knob, like the
    /// hardware); any other rung runs the software level ladder, reported
    /// with zero engine cycles as the fallback path is.
    ///
    /// # Errors
    ///
    /// As [`compress`](Self::compress).
    pub fn compress_with(
        &self,
        data: &[u8],
        format: Format,
        opts: CompressOptions,
    ) -> Result<Compressed> {
        if opts.is_default() {
            return self.compress(data, format);
        }
        let mut trace = Trace::begin(&self.telemetry);
        trace.span(Stage::Submit, SUBMIT_CYCLES, data.len() as u64, 0);
        let out = self.compress_software_at(data, format, opts);
        trace.finish(out.bytes.len() as u64);
        Ok(out)
    }

    /// Software-fallback compression: a valid stream from the CPU path
    /// (bytes differ from the accelerator's but decode identically).
    fn compress_software(&self, data: &[u8], format: Format) -> Compressed {
        self.compress_software_at(data, format, self.opts)
    }

    fn compress_software_at(
        &self,
        data: &[u8],
        format: Format,
        opts: CompressOptions,
    ) -> Compressed {
        // A selected profile routes through the one-pass canned encoder;
        // an id the registry does not hold is a profile miss (counted in
        // the nx-profiles source) and degrades to the level ladder.
        let mut config_name = "software-fallback";
        let canned = opts.profile().map(|id| self.profile_registry().get(id));
        let bytes = match canned {
            Some(Some(p)) => {
                config_name = "software-canned";
                software::compress_with_profile(data, opts.engine(), p, format)
            }
            Some(None) => {
                nx_deflate::profile::record_profile_miss();
                software::compress_with_engine(data, opts.level(), opts.engine(), format)
            }
            None => software::compress_with_engine(data, opts.level(), opts.engine(), format),
        };
        self.stats.record_software_fallback();
        self.stats
            .record_compress(Codec::Deflate, data.len() as u64, bytes.len() as u64, 0);
        Compressed {
            report: CompressReport {
                config_name,
                freq_ghz: self.config.freq_ghz,
                input_bytes: data.len() as u64,
                output_bytes: bytes.len() as u64,
                cycles: 0,
                ingest_cycles: 0,
                bank_stall_cycles: 0,
                huffman_tail_cycles: 0,
                overhead_cycles: 0,
                blocks: 0,
                stored_blocks: 0,
                tokens: 0,
                discarded_matches: 0,
            },
            bytes,
        }
    }

    /// Software-fallback decompression: byte-identical output to the
    /// accelerator path (both implement RFC 1951 exactly).
    fn decompress_software(&self, data: &[u8], format: Format) -> Result<Decompressed> {
        let bytes = software::decompress(data, format)?;
        self.stats.record_software_fallback();
        self.stats
            .record_decompress(Codec::Deflate, data.len() as u64, bytes.len() as u64, 0);
        Ok(Decompressed {
            report: DecompressReport {
                config_name: "software-fallback",
                freq_ghz: self.config.freq_ghz,
                input_bytes: data.len() as u64,
                output_bytes: bytes.len() as u64,
                cycles: 0,
                header_cycles: 0,
                body_cycles: 0,
                overhead_cycles: 0,
                blocks: 0,
                symbols: 0,
            },
            bytes,
        })
    }

    fn compress_recovering(
        &self,
        data: &[u8],
        format: Format,
        inj: &Arc<FaultInjector>,
        trace: &mut Trace<'_>,
    ) -> Result<Compressed> {
        match self.recover(data, fault::Site::Compress, inj, trace, |nx| {
            nx.compress_accel(data, format)
        })? {
            Some(out) => Ok(out),
            None => {
                trace.span(Stage::Fallback, 0, data.len() as u64, 0);
                Ok(self.compress_software(data, format))
            }
        }
    }

    fn decompress_recovering(
        &self,
        data: &[u8],
        format: Format,
        inj: &Arc<FaultInjector>,
        trace: &mut Trace<'_>,
    ) -> Result<Decompressed> {
        match self.recover(data, fault::Site::Decompress, inj, trace, |nx| {
            nx.decompress_accel(data, format)
        })? {
            Some(out) => Ok(out),
            None => {
                trace.span(Stage::Fallback, 0, data.len() as u64, 0);
                self.decompress_software(data, format)
            }
        }
    }

    /// The shared recovery loop around one accelerator request.
    ///
    /// Returns `Ok(Some(out))` when an attempt completed cleanly,
    /// `Ok(None)` when the request must degrade to the software path
    /// (accelerator unavailable, or the attempt budget ran out with
    /// fallback enabled), and `Err` for genuine input errors (never
    /// retried) or recovery exhaustion with fallback disabled.
    fn recover<T: Payload>(
        &self,
        data: &[u8],
        site: fault::Site,
        inj: &Arc<FaultInjector>,
        trace: &mut Trace<'_>,
        run: impl Fn(&Self) -> Result<T>,
    ) -> Result<Option<T>> {
        use fault::FaultKind;
        let policy = *inj.policy();
        let req = inj.begin_request();
        let stats = inj.stats();
        let freq = self.config.freq_ghz;
        let mut resident_pages = 0u64;
        let mut attempt = 0u32;
        let mut last_fault = None;
        while attempt < policy.max_attempts {
            match inj.submit_fault(site, req, attempt, data.len() as u64, resident_pages) {
                Some(FaultKind::AccelUnavailable) => {
                    return if policy.software_fallback {
                        stats.bump(&stats.software_fallbacks);
                        Ok(None)
                    } else {
                        Err(Error::AcceleratorUnavailable)
                    };
                }
                Some(
                    f @ (FaultKind::QueueOverflow
                    | FaultKind::SubmissionTimeout
                    | FaultKind::CsbError { .. }),
                ) => {
                    // Transient: back off (capped exponential) and retry
                    // the whole submission.
                    stats.bump(&stats.retries);
                    self.stats.record_retry();
                    if matches!(f, FaultKind::QueueOverflow) {
                        // A bounced paste (engine queue full at submit)
                        // is a fault-reject: attributable separately from
                        // credit- and depth-rejects.
                        self.stats.record_fault_reject();
                    }
                    inj.take_backoff(attempt);
                    // Detail packs (fault code << 8) | attempt so the
                    // flight dump names what caused this retry.
                    trace.span(
                        Stage::Retry,
                        duration_to_cycles(policy.backoff(attempt), freq),
                        0,
                        (f.detail_code() << 8) | u64::from(attempt & 0xFF),
                    );
                    last_fault = Some(f);
                    attempt += 1;
                    continue;
                }
                Some(f @ FaultKind::PageFault { offset: _ }) => {
                    // Touch the faulting page (plus the touch-ahead
                    // window) and resubmit; everything up to the touched
                    // frontier is now resident and cannot fault again.
                    if let FaultKind::PageFault { offset } = f {
                        let newly_resident =
                            (offset / fault::PAGE_BYTES) + 1 + u64::from(policy.touch_ahead_pages);
                        let touched = newly_resident.saturating_sub(resident_pages);
                        trace.span(
                            Stage::EratTouch,
                            touched * TOUCH_CYCLES_PER_PAGE,
                            touched * fault::PAGE_BYTES,
                            offset / fault::PAGE_BYTES,
                        );
                        resident_pages = newly_resident;
                    }
                    stats.bump(&stats.resubmissions);
                    last_fault = Some(f);
                    attempt += 1;
                    continue;
                }
                Some(f @ FaultKind::Partial { .. }) => {
                    // The engine stopped early without an error; the
                    // library resubmits the remainder (modeled as a full
                    // resubmission).
                    stats.bump(&stats.resubmissions);
                    trace.span(
                        Stage::Retry,
                        SUBMIT_CYCLES,
                        0,
                        (f.detail_code() << 8) | u64::from(attempt & 0xFF),
                    );
                    last_fault = Some(f);
                    attempt += 1;
                    continue;
                }
                Some(FaultKind::BitFlip { .. })
                | Some(FaultKind::Truncate { .. })
                | Some(FaultKind::WorkerPanic)
                | None => {}
            }
            // Clean submission: run the engine. Genuine input errors are
            // not transient — surface them immediately, no retry.
            let out = run(self)?;
            trace.span(
                Stage::Engine,
                out.engine_cycles(),
                data.len() as u64,
                u64::from(attempt),
            );
            // Modeled output-integrity check: the engine CRCs its output
            // stream; an injected in-flight corruption must be caught
            // here and never escape to the caller.
            if let Some(k) = inj.output_fault(req, attempt, out.payload_len() as u64) {
                let mut corrupted = out.payload_clone();
                fault::corrupt(k, &mut corrupted);
                if corrupted != out.payload_ref() {
                    stats.bump(&stats.corruptions_detected);
                }
                stats.bump(&stats.retries);
                self.stats.record_retry();
                inj.take_backoff(attempt);
                trace.span(
                    Stage::Retry,
                    duration_to_cycles(policy.backoff(attempt), freq),
                    0,
                    u64::from(attempt),
                );
                last_fault = Some(k);
                attempt += 1;
                continue;
            }
            return Ok(Some(out));
        }
        // Attempt budget exhausted.
        if policy.software_fallback {
            stats.bump(&stats.software_fallbacks);
            return Ok(None);
        }
        Err(match last_fault {
            Some(FaultKind::QueueOverflow) => Error::QueueOverflow,
            Some(FaultKind::BitFlip { .. }) | Some(FaultKind::Truncate { .. }) => {
                Error::CorruptedOutput { attempts: attempt }
            }
            _ => Error::SubmissionTimeout { attempts: attempt },
        })
    }

    /// Compresses with the 842 memory-compression engine. Cycles are
    /// priced by the 842 engine model (`nx_842::model`) from the
    /// encoder's op mix, so mixed 842/DEFLATE workloads report real
    /// throughput for both engines.
    pub fn compress_842(&self, data: &[u8]) -> Vec<u8> {
        let mut trace = Trace::begin(&self.telemetry);
        trace.span(Stage::Submit, SUBMIT_CYCLES, data.len() as u64, 0);
        let (out, enc_stats) = nx_842::compress_with_stats(data);
        let report = nx_842::model::compress_cycles(
            &nx_842::model::EngineConfig::power9(),
            &enc_stats,
            data.len() as u64,
        );
        self.stats.record_compress(
            Codec::P842,
            data.len() as u64,
            out.len() as u64,
            report.cycles,
        );
        trace.span(Stage::Engine, report.cycles, data.len() as u64, 0);
        trace.finish(out.len() as u64);
        out
    }

    /// Decompresses an 842 stream. Cycles come from the 842 engine
    /// model's decode path (one template per cycle through the copy
    /// network, runs bursting on the fast path).
    ///
    /// # Errors
    ///
    /// [`Error::P842`] if the stream is malformed.
    pub fn decompress_842(&self, data: &[u8]) -> Result<Vec<u8>> {
        let mut trace = Trace::begin(&self.telemetry);
        trace.span(Stage::Submit, SUBMIT_CYCLES, data.len() as u64, 0);
        let out = nx_842::decompress(data)?;
        // The decoder doesn't report its op mix; price the request as
        // all-template chunks (the conservative path — runs only go
        // faster), which is exact for template-only streams.
        let dec_stats = nx_842::CompressStats {
            chunks: (out.len() as u64).div_ceil(8),
            output_bytes: data.len() as u64,
            ..nx_842::CompressStats::default()
        };
        let report = nx_842::model::decompress_cycles(
            &nx_842::model::EngineConfig::power9(),
            &dec_stats,
            out.len() as u64,
        );
        self.stats.record_decompress(
            Codec::P842,
            data.len() as u64,
            out.len() as u64,
            report.cycles,
        );
        trace.span(Stage::Engine, report.cycles, data.len() as u64, 0);
        trace.finish(out.len() as u64);
        Ok(out)
    }

    /// Opens an asynchronous session: jobs are queued to a dedicated
    /// engine thread, as with POWER9's asynchronous CRB submission.
    pub fn async_session(&self) -> AsyncSession {
        AsyncSession::spawn(
            self.config.clone(),
            Arc::clone(&self.stats),
            self.telemetry.clone(),
            Arc::clone(&self.pool),
            self.profiles.clone(),
        )
    }

    /// Opens an asynchronous session whose queue holds at most `depth`
    /// outstanding jobs — the VAS window credit limit in API form.
    /// [`AsyncSession::try_submit`] surfaces a full queue as
    /// [`Error::QueueOverflow`].
    pub fn async_session_bounded(&self, depth: usize) -> AsyncSession {
        AsyncSession::spawn_bounded(
            self.config.clone(),
            Arc::clone(&self.stats),
            self.telemetry.clone(),
            Arc::clone(&self.pool),
            self.profiles.clone(),
            depth,
        )
    }

    /// Opens a sharded parallel compression session at `level`: one
    /// request fans out across a pool of workers (modeling multiple
    /// accelerator units sharing a stream) and the traffic is recorded
    /// in this handle's [`NxStats`]. See [`parallel`] for the stream
    /// construction.
    pub fn parallel_session(&self, opts: parallel::ParallelOptions, level: u32) -> ParallelSession {
        ParallelSession::new(
            opts,
            level,
            nx_deflate::Engine::Auto,
            None,
            Arc::clone(&self.stats),
            self.faults.clone(),
            self.telemetry.clone(),
            Arc::clone(&self.pool),
            Arc::clone(&self.decode_stats),
        )
    }

    /// As [`parallel_session`](Self::parallel_session) but taking the
    /// level, engine and optional canned profile from
    /// [`CompressOptions`], so ladder rungs ([`nx_deflate::Level`])
    /// thread into the shard engine unchanged. A selected profile applies
    /// to single-shard (small) payloads — the traffic canned profiles
    /// target — through the one-pass canned path; inputs spanning
    /// multiple shards run the regular sharded ladder.
    pub fn parallel_session_with(
        &self,
        opts: parallel::ParallelOptions,
        copts: CompressOptions,
    ) -> ParallelSession {
        let profile = copts
            .profile()
            .and_then(|id| self.profile_registry().get(id).cloned());
        if copts.profile().is_some() && profile.is_none() {
            nx_deflate::profile::record_profile_miss();
        }
        ParallelSession::new(
            opts,
            copts.level().get(),
            copts.engine(),
            profile,
            Arc::clone(&self.stats),
            self.faults.clone(),
            self.telemetry.clone(),
            Arc::clone(&self.pool),
            Arc::clone(&self.decode_stats),
        )
    }

    /// The buffer pool shared by this handle's sessions (scratch, async,
    /// parallel). Exposed so callers can acquire/release recycled buffers
    /// directly and read the pool counters.
    pub fn buffer_pool(&self) -> &Arc<scratch::BufferPool> {
        &self.pool
    }

    /// The parallel-decode counters shared by this handle and every
    /// [`ParallelSession`] it opens (telemetry source
    /// `nx-decode-parallel`).
    pub fn decode_parallel_stats(&self) -> &Arc<InflateParStats> {
        &self.decode_stats
    }

    /// A parallel inflater bound to this handle's counters, fault
    /// injector and buffer pool. Construction is cheap — workers are
    /// scoped threads spawned per request.
    fn decode_inflater(&self) -> ParallelInflater {
        self.decode_inflater_with(ParallelInflateOptions::default())
    }

    /// Like [`Nx::decompress_parallel`] but with explicit decode options
    /// (worker count, chunk size, checkpoint spacing) instead of the
    /// host-derived defaults.
    ///
    /// # Errors
    ///
    /// [`Error::Deflate`] for malformed streams — exactly as the serial
    /// decoder reports them.
    pub fn decompress_parallel_with(
        &self,
        data: &[u8],
        format: Format,
        opts: ParallelInflateOptions,
    ) -> Result<Vec<u8>> {
        let out = self.decode_inflater_with(opts).decompress(data, format)?;
        self.stats
            .record_decompress(Codec::Deflate, data.len() as u64, out.len() as u64, 0);
        Ok(out)
    }

    fn decode_inflater_with(&self, opts: ParallelInflateOptions) -> ParallelInflater {
        ParallelInflater::with_parts(
            opts,
            Arc::clone(&self.decode_stats),
            self.faults.clone(),
            Arc::clone(&self.pool),
            self.telemetry.clone(),
        )
    }

    /// Decompresses `data` through the parallel inflate path (speculative
    /// two-stage decode for large single streams, member-per-worker for
    /// multi-member gzip), recording the traffic in this handle's
    /// [`NxStats`]. Output is byte-identical to a serial inflate.
    ///
    /// # Errors
    ///
    /// [`Error::Deflate`] for malformed streams — exactly as the serial
    /// decoder reports them.
    pub fn decompress_parallel(&self, data: &[u8], format: Format) -> Result<Vec<u8>> {
        let out = self.decode_inflater().decompress(data, format)?;
        self.stats
            .record_decompress(Codec::Deflate, data.len() as u64, out.len() as u64, 0);
        Ok(out)
    }

    /// Builds a random-access [`SeekIndex`] over `data` (one serial,
    /// checkpoint-recording decode). See
    /// [`ParallelInflater::decompress_indexed`] to keep the decoded bytes
    /// as well.
    ///
    /// # Errors
    ///
    /// [`Error::Deflate`] for malformed streams.
    pub fn build_index(&self, data: &[u8], format: Format) -> Result<SeekIndex> {
        self.decode_inflater().build_index(data, format)
    }

    /// Random-accesses `[offset, offset + len)` of the stream indexed by
    /// `index` without decoding the prefix: decode restarts at the
    /// nearest preceding checkpoint with its 32 KB window snapshot.
    /// `len` is clamped at end of stream.
    ///
    /// # Errors
    ///
    /// [`Error::SeekOutOfRange`] past the end, [`Error::InvalidSeekIndex`]
    /// for an index inconsistent with `data`, [`Error::Deflate`] for
    /// malformed blocks in the decoded span.
    pub fn decompress_at(
        &self,
        data: &[u8],
        index: &SeekIndex,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>> {
        self.decode_inflater()
            .decompress_at(data, index, offset, len)
    }

    /// Opens a zero-allocation scratch session at `level`: a persistent
    /// encoder + decoder scratch bound to this handle's stats, telemetry
    /// and buffer pool. See [`scratch::ScratchSession`].
    ///
    /// # Errors
    ///
    /// [`Error::Deflate`] for an invalid `level`.
    pub fn scratch_session(&self, level: u32) -> Result<ScratchSession> {
        let level = nx_deflate::CompressionLevel::new(level)?;
        Ok(ScratchSession::new(
            Arc::clone(&self.stats),
            self.telemetry.clone(),
            level,
            nx_deflate::Engine::Auto,
            Arc::clone(&self.pool),
        ))
    }

    /// As [`scratch_session`](Self::scratch_session) but taking the
    /// level, engine and optional canned profile from
    /// [`CompressOptions`]. With a profile the session compresses through
    /// the one-pass canned path (dictionary-framed for zlib, canned
    /// tables only for gzip) and its `decompress_into` transparently
    /// supplies the profile dictionary to zlib FDICT streams.
    pub fn scratch_session_with(&self, opts: CompressOptions) -> ScratchSession {
        let profile = opts
            .profile()
            .and_then(|id| self.profile_registry().get(id).cloned());
        if opts.profile().is_some() && profile.is_none() {
            nx_deflate::profile::record_profile_miss();
        }
        ScratchSession::with_profile(
            Arc::clone(&self.stats),
            self.telemetry.clone(),
            opts.level(),
            opts.engine(),
            Arc::clone(&self.pool),
            profile,
        )
    }

    /// Compresses with an explicit target-buffer capacity, reproducing the
    /// CSB **target space exhausted** protocol: if the output would
    /// overflow the target DDE, the engine aborts partway, the library
    /// doubles the buffer and resubmits. Each aborted attempt costs engine
    /// cycles proportional to the fraction of output it produced before
    /// running out of space; the returned report's `cycles` include all
    /// attempts.
    ///
    /// # Errors
    ///
    /// As [`compress`](Self::compress).
    ///
    /// # Panics
    ///
    /// Panics if `target_capacity == 0`.
    pub fn compress_bounded(
        &self,
        data: &[u8],
        format: Format,
        target_capacity: usize,
    ) -> Result<BoundedOutcome> {
        assert!(target_capacity > 0, "target buffer must be non-empty");
        let mut compressed = self.compress(data, format)?;
        let needed = compressed.bytes.len();
        let mut capacity = target_capacity;
        let mut attempts = 1u32;
        let full_cycles = compressed.report.cycles;
        while capacity < needed {
            // The aborted attempt ran until the target filled.
            let fraction = capacity as f64 / needed as f64;
            compressed.report.cycles += (full_cycles as f64 * fraction) as u64;
            attempts += 1;
            capacity = capacity.saturating_mul(2);
        }
        Ok(BoundedOutcome {
            compressed,
            attempts,
            final_capacity: capacity,
        })
    }
}

/// Result of [`Nx::compress_bounded`].
#[derive(Debug, Clone)]
pub struct BoundedOutcome {
    /// The final (successful) compression, with cycles accumulated across
    /// every attempt.
    pub compressed: Compressed,
    /// Submission attempts (1 = no target-exhausted retries).
    pub attempts: u32,
    /// Target-buffer capacity of the successful attempt.
    pub final_capacity: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compress_with_honors_the_level_ladder() {
        let nx = Nx::power9();
        let data = nx_corpus::CorpusKind::Text.generate(7, 128 * 1024);
        for rung in nx_deflate::Level::all() {
            let opts = CompressOptions::from_level(rung);
            let c = nx.compress_with(&data, Format::Zlib, opts).unwrap();
            let d = nx.decompress(&c.bytes, Format::Zlib).unwrap();
            assert_eq!(d.bytes, data, "level {rung}");
            if !opts.is_default() {
                assert_eq!(c.report.cycles, 0, "level {rung} should run in software");
            }
        }
        // Default options route to the accelerator (engine cycles > 0).
        let c = nx
            .compress_with(&data, Format::Zlib, CompressOptions::default())
            .unwrap();
        assert!(c.report.cycles > 0);
    }

    #[test]
    fn with_options_sets_the_software_level() {
        let opts = CompressOptions::from_level(nx_deflate::Level::Fastest);
        let nx = Nx::power9().with_options(opts);
        assert_eq!(nx.options(), opts);
        assert_eq!(nx.options().ladder(), nx_deflate::Level::Fastest);
        assert!(!opts.is_default());
        assert!(CompressOptions::from_numeric(10).is_err());
        assert_eq!(
            CompressOptions::from_numeric(6).unwrap(),
            CompressOptions::default()
        );
    }

    #[test]
    fn parallel_session_with_runs_the_ladder() {
        let nx = Nx::power9();
        let data = nx_corpus::CorpusKind::Logs.generate(3, 256 * 1024);
        let opts = CompressOptions::from_level(nx_deflate::Level::Fastest);
        let sess = nx.parallel_session_with(parallel::ParallelOptions::default(), opts);
        let out = sess.compress(&data, Format::Gzip).unwrap();
        assert_eq!(nx.decompress(&out, Format::Gzip).unwrap().bytes, data);
    }

    #[test]
    fn sync_roundtrip_all_formats() {
        let nx = Nx::power9();
        let data = nx_corpus::CorpusKind::Json.generate(1, 64 * 1024);
        for format in [Format::RawDeflate, Format::Gzip, Format::Zlib] {
            let c = nx.compress(&data, format).unwrap();
            let d = nx.decompress(&c.bytes, format).unwrap();
            assert_eq!(d.bytes, data, "{format:?}");
        }
    }

    #[test]
    fn stats_accumulate() {
        let nx = Nx::power9();
        let data = vec![b'a'; 10_000];
        nx.compress(&data, Format::Gzip).unwrap();
        nx.compress(&data, Format::Zlib).unwrap();
        let s = nx.stats();
        assert_eq!(s.compress_requests(), 2);
        assert_eq!(s.bytes_in(), 20_000);
        assert!(s.bytes_out() > 0);
    }

    #[test]
    fn shared_handle_shares_stats() {
        let nx = Nx::z15();
        let nx2 = nx.clone();
        nx.compress(b"abc", Format::RawDeflate).unwrap();
        nx2.compress(b"def", Format::RawDeflate).unwrap();
        assert_eq!(nx.stats().compress_requests(), 2);
    }

    #[test]
    fn p842_roundtrip() {
        let nx = Nx::power9();
        let data = nx_corpus::CorpusKind::Redundant.generate(2, 32 * 1024);
        let c = nx.compress_842(&data);
        assert!(c.len() < data.len() / 4);
        assert_eq!(nx.decompress_842(&c).unwrap(), data);
    }

    #[test]
    fn corrupted_container_is_an_error() {
        let nx = Nx::power9();
        let mut gz = nx.compress(b"payload", Format::Gzip).unwrap().bytes;
        let n = gz.len();
        gz[n - 5] ^= 0xFF;
        assert!(matches!(
            nx.decompress(&gz, Format::Gzip),
            Err(Error::Deflate(_))
        ));
    }

    #[test]
    fn bounded_compress_retries_until_capacity_fits() {
        let nx = Nx::power9();
        let data = nx_corpus::CorpusKind::Random.generate(8, 64 * 1024); // ~incompressible
                                                                         // A tiny initial target forces several doublings.
        let out = nx
            .compress_bounded(&data, Format::RawDeflate, 4 * 1024)
            .unwrap();
        assert!(out.attempts > 2, "only {} attempts", out.attempts);
        assert!(out.final_capacity >= out.compressed.bytes.len());
        // Retries cost cycles: more than a clean single pass.
        let clean = nx.compress(&data, Format::RawDeflate).unwrap();
        assert!(out.compressed.report.cycles > clean.report.cycles);
        assert_eq!(
            nx.decompress(&out.compressed.bytes, Format::RawDeflate)
                .unwrap()
                .bytes,
            data
        );
    }

    #[test]
    fn bounded_compress_single_attempt_when_target_fits() {
        let nx = Nx::power9();
        let data = vec![b'a'; 100_000];
        let out = nx.compress_bounded(&data, Format::Gzip, 64 * 1024).unwrap();
        assert_eq!(out.attempts, 1);
        assert_eq!(out.final_capacity, 64 * 1024);
    }

    #[test]
    fn error_conversions() {
        let e: Error = nx_deflate::Error::UnexpectedEof.into();
        assert!(matches!(e, Error::Deflate(_)));
        assert!(!e.to_string().is_empty());
        let e: Error = nx_842::Error::UnexpectedEof.into();
        assert!(matches!(e, Error::P842(_)));
    }
}
