//! Streaming gzip production over either engine.
//!
//! [`GzipStream`] emits a standard single-member gzip stream
//! incrementally: the header up front, DEFLATE blocks per chunk (with the
//! 32 KB window carried across chunks), and the CRC-32/ISIZE trailer at
//! [`finish`](GzipStream::finish). The compression engine is either the
//! software [`nx_deflate::stream::StreamEncoder`] or the modeled
//! accelerator's chunked CRB session ([`nx_accel::pipeline::AccelStream`]).
//!
//! ```
//! use nx_core::stream::GzipStream;
//!
//! # fn main() -> Result<(), nx_core::Error> {
//! let mut s = GzipStream::accelerated(nx_accel::AccelConfig::power9());
//! let mut out = s.write(b"stream me ");
//! out.extend(s.write(b"stream me again"));
//! out.extend(s.finish());
//! assert_eq!(
//!     nx_deflate::gzip::decompress(&out)?,
//!     b"stream me stream me again"
//! );
//! # Ok(())
//! # }
//! ```

use nx_accel::pipeline::AccelStream;
use nx_accel::AccelConfig;
use nx_deflate::crc32::Crc32;
use nx_deflate::stream::{Flush, StreamEncoder};
use nx_deflate::CompressionLevel;

#[derive(Debug)]
enum Engine {
    Software(Box<StreamEncoder>),
    Accel(Box<AccelStream>),
}

/// An incremental gzip compressor.
#[derive(Debug)]
pub struct GzipStream {
    engine: Engine,
    crc: Crc32,
    total_in: u64,
    header_sent: bool,
    finished: bool,
    /// Modeled engine cycles accumulated (accelerated path only).
    cycles: u64,
}

impl GzipStream {
    /// A software-engine stream at `level`.
    pub fn software(level: CompressionLevel) -> Self {
        Self::with_engine(Engine::Software(Box::new(StreamEncoder::new(level))))
    }

    /// An accelerator-engine stream (chunked CRBs with history carry).
    pub fn accelerated(cfg: AccelConfig) -> Self {
        Self::with_engine(Engine::Accel(Box::new(AccelStream::new(cfg))))
    }

    fn with_engine(engine: Engine) -> Self {
        Self {
            engine,
            crc: Crc32::new(),
            total_in: 0,
            header_sent: false,
            finished: false,
            cycles: 0,
        }
    }

    /// Total input bytes consumed.
    pub fn total_in(&self) -> u64 {
        self.total_in
    }

    /// Modeled engine cycles so far (zero on the software path).
    pub fn engine_cycles(&self) -> u64 {
        self.cycles
    }

    fn header(&mut self, out: &mut Vec<u8>) {
        if !self.header_sent {
            out.extend_from_slice(&[0x1F, 0x8B, 8, 0, 0, 0, 0, 0, 0, 255]);
            self.header_sent = true;
        }
    }

    /// Compresses one chunk, returning the gzip bytes produced so far by
    /// this call (header included on the first call).
    ///
    /// # Panics
    ///
    /// Panics after [`finish`](Self::finish).
    pub fn write(&mut self, chunk: &[u8]) -> Vec<u8> {
        assert!(!self.finished, "write after finish");
        let mut out = Vec::with_capacity(chunk.len() / 2 + 16);
        self.header(&mut out);
        self.crc.update(chunk);
        self.total_in += chunk.len() as u64;
        match &mut self.engine {
            Engine::Software(enc) => out.extend(enc.write(chunk, Flush::None)),
            Engine::Accel(s) => {
                let (bytes, report) = s.write(chunk, false);
                self.cycles += report.cycles;
                out.extend(bytes);
            }
        }
        out
    }

    /// Terminates the DEFLATE stream and appends the gzip trailer.
    pub fn finish(&mut self) -> Vec<u8> {
        assert!(!self.finished, "finish called twice");
        self.finished = true;
        let mut out = Vec::new();
        self.header(&mut out);
        match &mut self.engine {
            Engine::Software(enc) => out.extend(enc.finish()),
            Engine::Accel(s) => {
                let (bytes, report) = s.write(&[], true);
                self.cycles += report.cycles;
                out.extend(bytes);
            }
        }
        out.extend_from_slice(&self.crc.finish().to_le_bytes());
        out.extend_from_slice(&((self.total_in & 0xFFFF_FFFF) as u32).to_le_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nx_deflate::gzip;

    fn collect(mut s: GzipStream, chunks: &[&[u8]]) -> (Vec<u8>, Vec<u8>) {
        let mut out = Vec::new();
        let mut plain = Vec::new();
        for c in chunks {
            out.extend(s.write(c));
            plain.extend_from_slice(c);
        }
        out.extend(s.finish());
        (out, plain)
    }

    #[test]
    fn software_stream_is_valid_gzip() {
        let (out, plain) = collect(
            GzipStream::software(CompressionLevel::default()),
            &[b"alpha alpha ", b"beta beta ", b"alpha beta"],
        );
        assert_eq!(gzip::decompress(&out).unwrap(), plain);
    }

    #[test]
    fn accelerated_stream_is_valid_gzip() {
        let data = nx_corpus::CorpusKind::Logs.generate(4, 200_000);
        let chunks: Vec<&[u8]> = data.chunks(30_000).collect();
        let (out, plain) = collect(GzipStream::accelerated(AccelConfig::power9()), &chunks);
        assert_eq!(gzip::decompress(&out).unwrap(), plain);
    }

    #[test]
    fn cycles_accumulate_on_accel_path_only() {
        let mut a = GzipStream::accelerated(AccelConfig::z15());
        a.write(b"some bytes");
        let afin = a.finish();
        assert!(!afin.is_empty());
        assert!(a.engine_cycles() > 0);

        let mut s = GzipStream::software(CompressionLevel::default());
        s.write(b"some bytes");
        s.finish();
        assert_eq!(s.engine_cycles(), 0);
    }

    #[test]
    fn empty_stream_decodes_to_empty() {
        let mut s = GzipStream::accelerated(AccelConfig::power9());
        let out = s.finish();
        assert_eq!(gzip::decompress(&out).unwrap(), b"");
        assert_eq!(s.total_in(), 0);
    }

    #[test]
    #[should_panic(expected = "after finish")]
    fn write_after_finish_panics() {
        let mut s = GzipStream::software(CompressionLevel::default());
        let _ = s.finish();
        let _ = s.write(b"late");
    }
}
