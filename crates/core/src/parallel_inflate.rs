//! Parallel and seekable decompression — the decode-side companion to
//! [`crate::parallel`].
//!
//! The NX engine made compression a shared many-client service, but a
//! DEFLATE stream is serial by construction: every Huffman block may
//! reference the previous 32 KB of *output*, and block boundaries are not
//! byte-aligned, so a reader cannot simply split the input. This module
//! applies the two-stage speculative scheme of *rapidgzip*
//! (arXiv 2308.08955) and *Massively-Parallel Lossless Data Decompression*
//! (arXiv 1606.00519) to break that serial chain:
//!
//! 1. **Boundary scan** — [`nx_deflate::BlockProbe`] probes bit offsets
//!    near each chunk target until a position validates as a plausible
//!    block start (stored-block length complement, or a fully consistent
//!    dynamic Huffman header plus a short trial decode).
//! 2. **Two-stage decode** — chunk 0 decodes normally; every later chunk
//!    decodes through [`nx_deflate::MarkerInflater`] into a `u16` cell
//!    buffer where back-references past the chunk's known history become
//!    *markers*. Once the predecessor's trailing 32 KB window is resolved,
//!    a cheap sequential patch pass ([`nx_deflate::resolve_markers_into`])
//!    rewrites markers into bytes.
//! 3. **Validation** — speculation is confirmed by *exact landing*: each
//!    chunk's block walk must stop precisely on the next discovered
//!    boundary, and the last chunk must terminate the stream; the container
//!    checksum is verified at the end. Any anomaly — probe miss, decode
//!    error, landing mismatch, checksum mismatch, injected fault — falls
//!    back to the serial decoder, so output (and errors) are always
//!    byte-identical to a serial inflate.
//!
//! Multi-member gzip streams take the easy road instead: member headers are
//! found by magic-byte scan and whole members decode member-per-worker,
//! chain-validated by their recorded lengths.
//!
//! The module also builds a serializable [`SeekIndex`] — a list of
//! (bit offset, output offset, ≤32 KB window snapshot) checkpoints — so
//! [`ParallelInflater::decompress_at`] can random-access any slice of the
//! decompressed stream without decoding the prefix.

use crate::fault::FaultInjector;
use crate::framing::{self, Format};
use crate::scratch::BufferPool;
use crate::{software, Error, Result};
use nx_deflate::crc32::crc32;
use nx_deflate::{
    gzip, resolve_markers_into, BlockProbe, Error as DeflateError, Inflater, MarkerInflater,
    WINDOW_SIZE,
};
use nx_telemetry::{MetricSource, MetricValue, Stage, TelemetrySink, TraceContext};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Modeled decode streaming rate for shard spans: 8 compressed bytes per
/// cycle, matching the encode-side shard model. Decode span timelines are
/// deterministic functions of chunk index and size, never wall clock.
const DECODE_BYTES_PER_CYCLE: u64 = 8;

/// Compressed bytes per speculative chunk when the caller does not say
/// otherwise. Boundary probing costs ~a few µs per candidate bit, so
/// chunks must be large enough to amortise the scan.
const DEFAULT_CHUNK: usize = 256 * 1024;

/// Output bytes between seek-index checkpoints (before rounding to block
/// boundaries).
const DEFAULT_CHECKPOINT_EVERY: usize = 1024 * 1024;

/// Consecutive boundary-free chunk spans before the scanner gives up on
/// the whole stream (blocks larger than two chunks make chunk-grained
/// speculation pointless).
const SCAN_GIVE_UP: usize = 2;

/// Probe-budget multiplier: the scanner tries at most this many candidate
/// bit offsets per payload *byte*. Tiling every span gaplessly costs 8
/// probes per byte, so 16 leaves headroom; the budget is a backstop —
/// pathological streams (e.g. one long fixed-Huffman block, which the
/// probe deliberately never accepts) are cut off much earlier by the
/// consecutive-empty-span give-up.
const SCAN_BUDGET_PER_BYTE: u64 = 16;

/// Upper bound on gzip member candidates considered for member-parallel
/// decode; beyond this the O(candidates) parallel bookkeeping stops paying
/// and the serial member walk wins anyway.
const MAX_MEMBER_CANDIDATES: usize = 4096;

/// Magic bytes that open a serialized [`SeekIndex`].
pub const SEEK_INDEX_MAGIC: [u8; 4] = *b"NXSI";

/// Serialization format version.
const SEEK_INDEX_VERSION: u8 = 1;

/// Tuning knobs for [`ParallelInflater`].
#[derive(Debug, Clone, Copy)]
pub struct ParallelInflateOptions {
    /// Worker threads for chunk / member decode. `1` disables speculation
    /// and decodes serially.
    pub workers: usize,
    /// Compressed bytes per speculative chunk. Inputs shorter than two
    /// chunks decode serially.
    pub chunk_size: usize,
    /// Decompressed bytes between seek-index checkpoints (rounded up to
    /// the enclosing block boundary; at least one window).
    pub checkpoint_every: usize,
}

impl Default for ParallelInflateOptions {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            chunk_size: DEFAULT_CHUNK,
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
        }
    }
}

/// Counters for the parallel-decode path, exported through the telemetry
/// registry as source `nx-decode-parallel`.
#[derive(Debug, Default)]
pub struct InflateParStats {
    requests: AtomicU64,
    chunks_decoded: AtomicU64,
    speculation_misses: AtomicU64,
    marker_patch_bytes: AtomicU64,
    members_parallel: AtomicU64,
    serial_fallbacks: AtomicU64,
    seek_index_hits: AtomicU64,
    bytes_out: AtomicU64,
}

macro_rules! counter_getters {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        $( $(#[$doc])* pub fn $name(&self) -> u64 { self.$name.load(Ordering::Relaxed) } )+
    };
}

impl InflateParStats {
    counter_getters! {
        /// Decompression requests routed through the parallel path.
        requests,
        /// Speculative chunks decoded (leader + marker chunks).
        chunks_decoded,
        /// Speculative attempts abandoned (probe miss, landing mismatch,
        /// decode error, checksum mismatch or injected fault).
        speculation_misses,
        /// Marker cells rewritten to bytes by the patch pass.
        marker_patch_bytes,
        /// gzip members decoded member-per-worker.
        members_parallel,
        /// Requests that degraded to the serial decoder after a parallel
        /// attempt.
        serial_fallbacks,
        /// `decompress_at` calls served from a seek index.
        seek_index_hits,
        /// Total decompressed bytes produced.
        bytes_out,
    }
}

impl MetricSource for InflateParStats {
    fn collect(&self, out: &mut Vec<(String, MetricValue)>) {
        let counters: [(&str, u64); 8] = [
            ("nx_decode_parallel_requests_total", self.requests()),
            ("nx_decode_parallel_chunks_total", self.chunks_decoded()),
            (
                "nx_decode_parallel_speculation_misses_total",
                self.speculation_misses(),
            ),
            (
                "nx_decode_parallel_marker_patch_bytes_total",
                self.marker_patch_bytes(),
            ),
            ("nx_decode_parallel_members_total", self.members_parallel()),
            (
                "nx_decode_parallel_serial_fallbacks_total",
                self.serial_fallbacks(),
            ),
            (
                "nx_decode_parallel_seek_index_hits_total",
                self.seek_index_hits(),
            ),
            ("nx_decode_parallel_bytes_out_total", self.bytes_out()),
        ];
        for (name, v) in counters {
            out.push((name.into(), MetricValue::Counter(v)));
        }
    }
}

/// One random-access entry point into a compressed stream: resume decoding
/// at `bit_offset` with `window` as dictionary, knowing `out_offset` bytes
/// precede it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeekCheckpoint {
    /// Absolute bit offset (from the start of the *container*) of a block
    /// boundary — or of a member's first block, in which case `window` is
    /// empty.
    pub bit_offset: u64,
    /// Decompressed bytes preceding this checkpoint.
    pub out_offset: u64,
    /// The trailing ≤32 KB of output at this point; empty at member
    /// starts, where DEFLATE history resets.
    pub window: Vec<u8>,
}

/// A serializable random-access index over a compressed stream.
///
/// Built by [`ParallelInflater::build_index`] (or
/// [`ParallelInflater::decompress_indexed`]); consumed by
/// [`ParallelInflater::decompress_at`]. The wire format is
/// `"NXSI" u8:version u8:format u64:total_out u32:count` followed by
/// `count` records of `u64:bit_offset u64:out_offset u32:wlen` + window
/// bytes, all little-endian.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeekIndex {
    format: Format,
    total_out: u64,
    checkpoints: Vec<SeekCheckpoint>,
}

impl SeekIndex {
    /// Container format the index was built for.
    pub fn format(&self) -> Format {
        self.format
    }

    /// Total decompressed size of the indexed stream.
    pub fn total_out(&self) -> u64 {
        self.total_out
    }

    /// The checkpoints, ordered by `out_offset`.
    pub fn checkpoints(&self) -> &[SeekCheckpoint] {
        &self.checkpoints
    }

    /// Serializes the index (see the type docs for the layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        let body: usize = self
            .checkpoints
            .iter()
            .map(|c| 8 + 8 + 4 + c.window.len())
            .sum();
        let mut out = Vec::with_capacity(4 + 1 + 1 + 8 + 4 + body);
        out.extend_from_slice(&SEEK_INDEX_MAGIC);
        out.push(SEEK_INDEX_VERSION);
        out.push(match self.format {
            Format::RawDeflate => 0,
            Format::Gzip => 1,
            Format::Zlib => 2,
        });
        out.extend_from_slice(&self.total_out.to_le_bytes());
        out.extend_from_slice(&(self.checkpoints.len() as u32).to_le_bytes());
        for c in &self.checkpoints {
            out.extend_from_slice(&c.bit_offset.to_le_bytes());
            out.extend_from_slice(&c.out_offset.to_le_bytes());
            out.extend_from_slice(&(c.window.len() as u32).to_le_bytes());
            out.extend_from_slice(&c.window);
        }
        out
    }

    /// Deserializes an index produced by [`SeekIndex::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`Error::InvalidSeekIndex`] on bad magic, version, truncation,
    /// oversized windows or non-monotonic offsets.
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        fn take<'a>(data: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8]> {
            let s = data.get(*pos..*pos + n).ok_or(Error::InvalidSeekIndex)?;
            *pos += n;
            Ok(s)
        }
        fn le_u32(s: &[u8]) -> u32 {
            let mut b = [0u8; 4];
            b.copy_from_slice(s);
            u32::from_le_bytes(b)
        }
        fn le_u64(s: &[u8]) -> u64 {
            let mut b = [0u8; 8];
            b.copy_from_slice(s);
            u64::from_le_bytes(b)
        }
        let mut pos = 0usize;
        if take(data, &mut pos, 4)? != SEEK_INDEX_MAGIC {
            return Err(Error::InvalidSeekIndex);
        }
        if take(data, &mut pos, 1)?[0] != SEEK_INDEX_VERSION {
            return Err(Error::InvalidSeekIndex);
        }
        let format = match take(data, &mut pos, 1)?[0] {
            0 => Format::RawDeflate,
            1 => Format::Gzip,
            2 => Format::Zlib,
            _ => return Err(Error::InvalidSeekIndex),
        };
        let total_out = le_u64(take(data, &mut pos, 8)?);
        let count = le_u32(take(data, &mut pos, 4)?) as usize;
        let mut checkpoints = Vec::new();
        let mut prev_out = 0u64;
        for i in 0..count {
            let bit_offset = le_u64(take(data, &mut pos, 8)?);
            let out_offset = le_u64(take(data, &mut pos, 8)?);
            let wlen = le_u32(take(data, &mut pos, 4)?) as usize;
            if wlen > WINDOW_SIZE || out_offset > total_out {
                return Err(Error::InvalidSeekIndex);
            }
            if i > 0 && out_offset < prev_out {
                return Err(Error::InvalidSeekIndex);
            }
            prev_out = out_offset;
            let window = take(data, &mut pos, wlen)?.to_vec();
            checkpoints.push(SeekCheckpoint {
                bit_offset,
                out_offset,
                window,
            });
        }
        if pos != data.len() {
            return Err(Error::InvalidSeekIndex);
        }
        Ok(Self {
            format,
            total_out,
            checkpoints,
        })
    }
}

/// Splits `len` compressed bytes into `chunk`-sized units for the shard
/// span model; an empty input is one (empty) shard.
fn chunk_sizes(len: usize, chunk: usize) -> Vec<usize> {
    let chunk = chunk.max(1);
    if len == 0 {
        return vec![0];
    }
    let mut out = Vec::with_capacity(len.div_ceil(chunk));
    let mut rest = len;
    while rest > 0 {
        let take = rest.min(chunk);
        out.push(take);
        rest -= take;
    }
    out
}

/// Outcome of a speculative single-stream attempt.
enum Spec {
    /// Speculation confirmed; the assembled output.
    Done(Vec<u8>),
    /// Attempted and failed — count a miss and fall back.
    Miss,
    /// Not worth attempting (too small, one worker, no boundaries probed).
    NotAttempted,
}

/// Per-chunk worker result for the speculative path.
enum ChunkResult {
    /// Chunk 0: plain bytes from a known-history decode.
    Leader {
        bytes: Vec<u8>,
        end_bit: u64,
        finished: bool,
    },
    /// Chunk ≥ 1: marker cells awaiting the patch pass.
    Spec {
        cells: Vec<u16>,
        end_bit: u64,
        finished: bool,
    },
    /// Decode error or injected fault.
    Failed,
}

/// The parallel + seekable decoder. Cheap to construct: workers are scoped
/// threads spawned per request, borrowing the input slice.
#[derive(Debug)]
pub struct ParallelInflater {
    opts: ParallelInflateOptions,
    stats: Arc<InflateParStats>,
    faults: Option<Arc<FaultInjector>>,
    pool: Arc<BufferPool>,
    /// Span sink for traced decodes (disabled by default — the untraced
    /// paths never touch it).
    telemetry: TelemetrySink,
}

impl Default for ParallelInflater {
    fn default() -> Self {
        Self::new(ParallelInflateOptions::default())
    }
}

impl ParallelInflater {
    /// Creates a decoder with fresh stats and a private buffer pool.
    pub fn new(opts: ParallelInflateOptions) -> Self {
        Self::with_parts(
            opts,
            Arc::new(InflateParStats::default()),
            None,
            Arc::new(BufferPool::default()),
            TelemetrySink::disabled(),
        )
    }

    /// Creates a decoder sharing stats / faults / pool / sink with a
    /// facade.
    pub(crate) fn with_parts(
        mut opts: ParallelInflateOptions,
        stats: Arc<InflateParStats>,
        faults: Option<Arc<FaultInjector>>,
        pool: Arc<BufferPool>,
        telemetry: TelemetrySink,
    ) -> Self {
        opts.workers = opts.workers.max(1);
        opts.chunk_size = opts.chunk_size.max(1024);
        Self {
            opts,
            stats,
            faults,
            pool,
            telemetry,
        }
    }

    /// The decode counters (shared with the owning facade, if any).
    pub fn stats(&self) -> &Arc<InflateParStats> {
        &self.stats
    }

    /// Decompresses `data`, using member-parallel decode for multi-member
    /// gzip and speculative two-stage decode for large single streams.
    ///
    /// Output is byte-identical to [`ParallelInflater::decompress_serial`]
    /// on every input — any speculation anomaly falls back to the serial
    /// path, including for malformed streams, so errors match too.
    ///
    /// # Errors
    ///
    /// Exactly those of the serial reference decode.
    pub fn decompress(&self, data: &[u8], format: Format) -> Result<Vec<u8>> {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let out = self.decompress_inner(data, format, None)?;
        self.stats
            .bytes_out
            .fetch_add(out.len() as u64, Ordering::Relaxed);
        Ok(out)
    }

    /// As [`decompress`](Self::decompress), inside the caller's trace:
    /// each decode worker's chunk (or gzip member) lands as a `shard`
    /// span on the request's modeled timeline under `ctx.parent_span`,
    /// and any degradation to the serial reference is recorded as a
    /// `fallback` span. Identical bytes either way.
    ///
    /// # Errors
    ///
    /// As [`decompress`](Self::decompress).
    pub fn decompress_in_trace(
        &self,
        data: &[u8],
        format: Format,
        ctx: &TraceContext,
    ) -> Result<Vec<u8>> {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let out = self.decompress_inner(data, format, Some(ctx))?;
        self.stats
            .bytes_out
            .fetch_add(out.len() as u64, Ordering::Relaxed);
        Ok(out)
    }

    /// Emits one `shard` span per decode unit on the modeled round-robin
    /// wave timeline (see the encode-side twin in [`crate::parallel`]).
    /// `sizes` are the compressed bytes each unit consumed.
    fn emit_decode_shards(&self, ctx: Option<&TraceContext>, sizes: &[usize]) {
        let Some(ctx) = ctx else { return };
        if !ctx.sampled || !self.telemetry.is_enabled() {
            return;
        }
        let workers = self.opts.workers.max(1) as u64;
        let wave = (self.opts.chunk_size as u64 / DECODE_BYTES_PER_CYCLE).max(1);
        for (i, &sz) in sizes.iter().enumerate() {
            let start = ctx.at_cycles + (i as u64 / workers) * wave;
            let dur = (sz as u64 / DECODE_BYTES_PER_CYCLE).max(1);
            self.telemetry.emit(
                ctx.trace_id,
                ctx.child_seq + i as u32,
                ctx.parent_span,
                Stage::Shard,
                (i as u64 % workers) as u32,
                start,
                dur,
                sz as u64,
                0,
            );
        }
    }

    /// Emits a `fallback` span covering the serial re-decode. `detail`
    /// says why: 1 = member chain broke, 2 = speculation miss.
    fn emit_decode_fallback(&self, ctx: Option<&TraceContext>, bytes: u64, detail: u64) {
        let Some(ctx) = ctx else { return };
        if !ctx.sampled || !self.telemetry.is_enabled() {
            return;
        }
        let dur = (bytes / DECODE_BYTES_PER_CYCLE).max(1);
        self.telemetry.emit(
            ctx.trace_id,
            ctx.child_seq,
            ctx.parent_span,
            Stage::Fallback,
            0,
            ctx.at_cycles,
            dur,
            bytes,
            detail,
        );
    }

    fn decompress_inner(
        &self,
        data: &[u8],
        format: Format,
        ctx: Option<&TraceContext>,
    ) -> Result<Vec<u8>> {
        let request = self.faults.as_ref().map_or(0, |f| f.begin_request());
        if format == Format::Gzip {
            let cands = member_candidates(data);
            if cands.len() > 1 && self.opts.workers > 1 && cands.len() <= MAX_MEMBER_CANDIDATES {
                if let Some(out) = self.members_parallel(data, &cands, request) {
                    // Member slice sizes from consecutive candidate
                    // offsets (the last member runs to end of input).
                    let sizes: Vec<usize> = cands
                        .iter()
                        .zip(cands.iter().skip(1).chain(std::iter::once(&data.len())))
                        .map(|(a, b)| b - a)
                        .collect();
                    self.emit_decode_shards(ctx, &sizes);
                    return Ok(out);
                }
                self.emit_decode_fallback(ctx, data.len() as u64, 1);
                return self.serial_fallback(data, format);
            }
        }
        // Single DEFLATE stream (or single-member container): speculate.
        let Ok(un) = framing::unwrap(data, format) else {
            // Malformed container: let the serial reference produce the
            // canonical error (or succeed where it is more permissive).
            self.emit_decode_shards(ctx, &[data.len()]);
            return self.decompress_serial(data, format);
        };
        match self.speculative(un.deflate_stream, request) {
            Spec::Done(out) => {
                if un.verify(&out).is_ok() {
                    let sizes: Vec<usize> =
                        chunk_sizes(un.deflate_stream.len(), self.opts.chunk_size);
                    self.emit_decode_shards(ctx, &sizes);
                    Ok(out)
                } else {
                    self.stats
                        .speculation_misses
                        .fetch_add(1, Ordering::Relaxed);
                    self.emit_decode_fallback(ctx, data.len() as u64, 2);
                    self.serial_fallback(data, format)
                }
            }
            Spec::Miss => {
                self.stats
                    .speculation_misses
                    .fetch_add(1, Ordering::Relaxed);
                self.emit_decode_fallback(ctx, data.len() as u64, 2);
                self.serial_fallback(data, format)
            }
            Spec::NotAttempted => {
                // Deliberate serial decode (small input / one worker):
                // the whole stream is one shard.
                self.emit_decode_shards(ctx, &[data.len()]);
                self.decompress_serial(data, format)
            }
        }
    }

    /// The serial reference decode: a member walk for gzip (multi-member
    /// streams are legal — `gzip(1)` concatenates freely), the plain
    /// unwrap-inflate-verify path otherwise.
    ///
    /// # Errors
    ///
    /// Any container or DEFLATE error in the stream.
    pub fn decompress_serial(&self, data: &[u8], format: Format) -> Result<Vec<u8>> {
        match format {
            Format::Gzip => {
                let mut out = Vec::new();
                let mut any = false;
                for member in gzip::members(data) {
                    let (payload, _header) = member?;
                    if out.is_empty() {
                        out = payload;
                    } else {
                        out.extend_from_slice(&payload);
                    }
                    any = true;
                }
                if !any {
                    return Err(DeflateError::UnexpectedEof.into());
                }
                Ok(out)
            }
            Format::Zlib | Format::RawDeflate => software::decompress(data, format),
        }
    }

    /// Counts a degradation to serial and runs the reference decode.
    fn serial_fallback(&self, data: &[u8], format: Format) -> Result<Vec<u8>> {
        self.stats.serial_fallbacks.fetch_add(1, Ordering::Relaxed);
        if let Some(inj) = &self.faults {
            let s = inj.stats();
            s.bump(&s.serial_fallbacks);
        }
        self.decompress_serial(data, format)
    }

    // ---- multi-member fast path -------------------------------------

    /// Decodes gzip members member-per-worker, chain-validating candidate
    /// offsets against each decoded member's recorded length. Returns
    /// `None` on any break in the chain (the caller falls back).
    fn members_parallel(&self, data: &[u8], cands: &[usize], request: u64) -> Option<Vec<u8>> {
        let n = cands.len();
        let nthreads = self.opts.workers.min(n).max(1);
        // (member index, decoded payload + consumed length) per worker.
        type MemberSlot = (usize, Option<(Vec<u8>, usize)>);
        let collected: Vec<Vec<MemberSlot>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..nthreads)
                .map(|w| {
                    let inj = self.faults.clone();
                    s.spawn(move || {
                        let mut outs = Vec::new();
                        let mut i = w;
                        while i < n {
                            let r = if inj
                                .as_ref()
                                .is_some_and(|j| j.worker_fault(request, i as u64))
                            {
                                None
                            } else {
                                gzip::decompress_with_header(&data[cands[i]..])
                                    .ok()
                                    .map(|(payload, _h, used)| (payload, used))
                            };
                            outs.push((i, r));
                            i += nthreads;
                        }
                        outs
                    })
                })
                .collect();
            handles.into_iter().filter_map(|h| h.join().ok()).collect()
        });
        let mut slots: Vec<Option<(Vec<u8>, usize)>> = Vec::new();
        slots.resize_with(n, || None);
        for group in collected {
            for (i, r) in group {
                slots[i] = r;
            }
        }
        // Chain-validate from offset 0: each member must start at a decoded
        // candidate and hand off exactly at its recorded end. False
        // candidates (magic bytes inside compressed data) are simply never
        // reached by the chain.
        let mut out: Vec<u8> = Vec::new();
        let mut pos = 0usize;
        let mut chained = 0u64;
        while pos < data.len() {
            let idx = cands.binary_search(&pos).ok()?;
            let (payload, used) = slots[idx].take()?;
            if used == 0 {
                return None;
            }
            if out.is_empty() {
                out = payload;
            } else {
                out.extend_from_slice(&payload);
            }
            pos += used;
            chained += 1;
        }
        self.stats
            .members_parallel
            .fetch_add(chained, Ordering::Relaxed);
        Some(out)
    }

    // ---- speculative single-stream path -----------------------------

    /// Attempts the two-stage speculative decode of one raw DEFLATE
    /// stream.
    fn speculative(&self, payload: &[u8], request: u64) -> Spec {
        let chunk = self.opts.chunk_size;
        if self.opts.workers < 2 || payload.len() < 2 * chunk {
            return Spec::NotAttempted;
        }
        let Some(bounds) = scan_boundaries(payload, chunk) else {
            return Spec::Miss;
        };
        let n_chunks = bounds.len() + 1;
        let nthreads = self.opts.workers.min(n_chunks);
        let collected: Vec<Vec<(usize, ChunkResult)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..nthreads)
                .map(|w| {
                    let bounds = &bounds;
                    let inj = self.faults.clone();
                    s.spawn(move || {
                        let mut outs = Vec::new();
                        let mut k = w;
                        while k < n_chunks {
                            let r = if inj
                                .as_ref()
                                .is_some_and(|j| j.worker_fault(request, k as u64))
                            {
                                ChunkResult::Failed
                            } else {
                                decode_chunk(payload, bounds, k)
                            };
                            outs.push((k, r));
                            k += nthreads;
                        }
                        outs
                    })
                })
                .collect();
            handles.into_iter().filter_map(|h| h.join().ok()).collect()
        });
        let mut slots: Vec<Option<ChunkResult>> = Vec::new();
        slots.resize_with(n_chunks, || None);
        for group in collected {
            for (k, r) in group {
                slots[k] = Some(r);
            }
        }
        // Sequential patch-and-repair pass. Invariant: `out` holds the
        // exact serial output up to bit `cur_end` (always a true block
        // boundary, since a decode walk from a true boundary only stops
        // on true boundaries). A chunk splices only when it started
        // exactly at the frontier; anything else — a chunk that began on
        // a false-positive boundary, failed, or got overlapped by its
        // predecessor's landing — is repaired by serially decoding just
        // that span with the now-known window. Speculation misses
        // therefore cost one chunk of serial work, not the whole stream.
        let mut out: Vec<u8> = Vec::new();
        let mut cur_end: u64 = 0;
        let mut finished = false;
        let mut spliced = 0u64;
        let mut missed = 0u64;
        let mut k = 0usize;
        while k < n_chunks && !finished {
            let start_k = if k == 0 { 0 } else { bounds[k - 1] };
            if start_k < cur_end {
                // Overlapped by the previous splice/repair: drop it.
                missed += 1;
                k += 1;
                continue;
            }
            if start_k > cur_end {
                // Gap before this chunk (its predecessor was dropped or
                // landed short): close it serially.
                match repair_to(payload, &mut out, cur_end, Some(start_k)) {
                    Ok((end, fin)) => {
                        cur_end = end;
                        finished = fin;
                        missed += 1;
                        continue;
                    }
                    // A decode error on the true stream: bail to the
                    // serial reference so the reported error is canonical.
                    Err(_) => return Spec::Miss,
                }
            }
            match slots[k].take() {
                Some(ChunkResult::Leader {
                    bytes,
                    end_bit,
                    finished: fin,
                }) => {
                    if out.is_empty() {
                        out = bytes;
                    } else {
                        out.extend_from_slice(&bytes);
                    }
                    cur_end = end_bit;
                    finished = fin;
                    spliced += 1;
                    k += 1;
                }
                Some(ChunkResult::Spec {
                    cells,
                    end_bit,
                    finished: fin,
                }) => {
                    let wlo = out.len().saturating_sub(WINDOW_SIZE);
                    let mut window = self.pool.acquire();
                    window.extend_from_slice(&out[wlo..]);
                    let resolved = resolve_markers_into(&cells, &window, &mut out);
                    self.pool.release(window);
                    match resolved {
                        Ok(patched) => {
                            self.stats
                                .marker_patch_bytes
                                .fetch_add(patched, Ordering::Relaxed);
                            cur_end = end_bit;
                            finished = fin;
                            spliced += 1;
                            k += 1;
                        }
                        // Marker cells inconsistent with the window —
                        // cannot happen off a true boundary; bail safely.
                        Err(_) => return Spec::Miss,
                    }
                }
                // Worker failed (decode error or injected fault): skip;
                // the gap check above repairs the span serially.
                _ => {
                    missed += 1;
                    k += 1;
                }
            }
        }
        if !finished && repair_to(payload, &mut out, cur_end, None).is_err() {
            return Spec::Miss;
        }
        self.stats
            .chunks_decoded
            .fetch_add(spliced, Ordering::Relaxed);
        self.stats
            .speculation_misses
            .fetch_add(missed, Ordering::Relaxed);
        Spec::Done(out)
    }

    // ---- seek index -------------------------------------------------

    /// Decompresses `data` serially while recording a [`SeekIndex`]
    /// checkpoint at the first block boundary past every
    /// `checkpoint_every` output bytes (and at every member start).
    ///
    /// # Errors
    ///
    /// Any container or DEFLATE error in the stream.
    pub fn decompress_indexed(&self, data: &[u8], format: Format) -> Result<(Vec<u8>, SeekIndex)> {
        let every = self.opts.checkpoint_every.max(WINDOW_SIZE);
        let mut checkpoints: Vec<SeekCheckpoint> = Vec::new();
        let mut out: Vec<u8> = Vec::new();
        match format {
            Format::Gzip => {
                let mut pos = 0usize;
                loop {
                    let member = data.get(pos..).ok_or(DeflateError::UnexpectedEof)?;
                    let (_header, pstart) = gzip::parse_header(member)?;
                    let base_bits = ((pos + pstart) as u64) * 8;
                    let member_base = out.len();
                    let used = walk_stream(
                        &member[pstart..],
                        base_bits,
                        every,
                        &mut checkpoints,
                        &mut out,
                    )?;
                    let trailer_at = pos + pstart + used;
                    pos = verify_member_trailer(data, trailer_at, &out[member_base..])?;
                    if pos >= data.len() {
                        break;
                    }
                }
            }
            Format::Zlib => {
                let un = framing::unwrap(data, format)?;
                walk_stream(un.deflate_stream, 16, every, &mut checkpoints, &mut out)?;
                un.verify(&out)?;
            }
            Format::RawDeflate => {
                walk_stream(data, 0, every, &mut checkpoints, &mut out)?;
            }
        }
        let index = SeekIndex {
            format,
            total_out: out.len() as u64,
            checkpoints,
        };
        Ok((out, index))
    }

    /// Builds a [`SeekIndex`] for `data`, discarding the decoded output.
    ///
    /// # Errors
    ///
    /// See [`ParallelInflater::decompress_indexed`].
    pub fn build_index(&self, data: &[u8], format: Format) -> Result<SeekIndex> {
        self.decompress_indexed(data, format).map(|(_, idx)| idx)
    }

    /// Random-accesses `[offset, offset + len)` of the decompressed stream
    /// using `index`, decoding only from the nearest preceding checkpoint —
    /// never the prefix. `len` is clamped at end of stream.
    ///
    /// # Errors
    ///
    /// [`Error::SeekOutOfRange`] if `offset` lies past the end,
    /// [`Error::InvalidSeekIndex`] if the index is inconsistent with
    /// `data`, plus any DEFLATE error while decoding the spanned blocks.
    pub fn decompress_at(
        &self,
        data: &[u8],
        index: &SeekIndex,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>> {
        let first_ok = index.checkpoints.first().is_some_and(|c| c.out_offset == 0);
        if !first_ok {
            return Err(Error::InvalidSeekIndex);
        }
        if offset > index.total_out {
            return Err(Error::SeekOutOfRange);
        }
        let want = (len as u64).min(index.total_out - offset) as usize;
        let mut result = Vec::with_capacity(want);
        if want == 0 {
            return Ok(result);
        }
        self.stats.seek_index_hits.fetch_add(1, Ordering::Relaxed);
        let end = offset + want as u64;
        let mut cursor = offset;
        // Greatest checkpoint at or before the cursor.
        let mut ci = match index
            .checkpoints
            .binary_search_by(|c| c.out_offset.cmp(&cursor))
        {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        while cursor < end {
            let cp = &index.checkpoints[ci];
            if cp.out_offset > cursor {
                return Err(Error::InvalidSeekIndex);
            }
            let mut inf = Inflater::new_at(data, cp.bit_offset)?;
            if !cp.window.is_empty() {
                inf.prime_window(&cp.window);
            }
            inf.reserve_output((end - cp.out_offset) as usize);
            while !inf.is_finished() && cp.out_offset + (inf.output().len() as u64) < end {
                inf.decode_block(usize::MAX)?;
            }
            let produced = inf.output();
            let avail_end = cp.out_offset + produced.len() as u64;
            if avail_end > cursor {
                let lo = (cursor - cp.out_offset) as usize;
                let hi = produced.len().min((end - cp.out_offset) as usize);
                result.extend_from_slice(&produced[lo..hi]);
                cursor = cp.out_offset + hi as u64;
            }
            if cursor >= end {
                break;
            }
            // The stream finished before covering the range: the next
            // member resumes at `cursor` and must have its own checkpoint.
            match index.checkpoints[ci + 1..]
                .iter()
                .position(|c| c.out_offset == cursor)
            {
                Some(step) => ci += 1 + step,
                None => return Err(Error::InvalidSeekIndex),
            }
        }
        Ok(result)
    }
}

/// Walks one DEFLATE stream block-by-block, appending its output to `out`
/// and pushing checkpoints (member start + every `every` output bytes).
/// Returns the compressed bytes consumed.
fn walk_stream(
    payload: &[u8],
    base_bits: u64,
    every: usize,
    checkpoints: &mut Vec<SeekCheckpoint>,
    out: &mut Vec<u8>,
) -> Result<usize> {
    checkpoints.push(SeekCheckpoint {
        bit_offset: base_bits,
        out_offset: out.len() as u64,
        window: Vec::new(),
    });
    let member_base = out.len() as u64;
    let mut inf = Inflater::new(payload);
    let mut next_cp = every as u64;
    while !inf.is_finished() {
        inf.decode_block(usize::MAX)?;
        if !inf.is_finished() && inf.output().len() as u64 >= next_cp {
            let produced = inf.output();
            let wlo = produced.len().saturating_sub(WINDOW_SIZE);
            checkpoints.push(SeekCheckpoint {
                bit_offset: base_bits + inf.bit_position(),
                out_offset: member_base + produced.len() as u64,
                window: produced[wlo..].to_vec(),
            });
            next_cp = produced.len() as u64 + every as u64;
        }
    }
    let used = inf.byte_position();
    let member_out = inf.into_output();
    if out.is_empty() {
        *out = member_out;
    } else {
        out.extend_from_slice(&member_out);
    }
    Ok(used)
}

/// Validates the 8-byte gzip trailer at `trailer_at` against the decoded
/// bytes of the member it closes, returning the offset just past it.
fn verify_member_trailer(data: &[u8], trailer_at: usize, member_out: &[u8]) -> Result<usize> {
    let tb = data
        .get(trailer_at..trailer_at + 8)
        .ok_or(DeflateError::UnexpectedEof)?;
    let stored_crc = u32::from_le_bytes([tb[0], tb[1], tb[2], tb[3]]);
    let stored_len = u32::from_le_bytes([tb[4], tb[5], tb[6], tb[7]]);
    if stored_crc != crc32(member_out) || stored_len != (member_out.len() & 0xFFFF_FFFF) as u32 {
        return Err(DeflateError::GzipChecksumMismatch.into());
    }
    Ok(trailer_at + 8)
}

/// Scans `data` for plausible gzip member starts: magic + DEFLATE method +
/// clear reserved FLG bits. Always cheap (one linear pass); false
/// positives are weeded out by chain validation.
fn member_candidates(data: &[u8]) -> Vec<usize> {
    let mut cands = Vec::new();
    let mut i = 0usize;
    while i + 3 < data.len() {
        if data[i] == 0x1F && data[i + 1] == 0x8B && data[i + 2] == 8 && data[i + 3] & 0xE0 == 0 {
            cands.push(i);
        }
        i += 1;
    }
    cands
}

/// Probes for one block boundary per `chunk`-byte span, scanning the
/// spans gaplessly so any boundary that exists is found. Returns `None`
/// when the stream resists probing (fall back to serial).
fn scan_boundaries(payload: &[u8], chunk: usize) -> Option<Vec<u64>> {
    let mut probe = BlockProbe::new();
    let mut bounds: Vec<u64> = Vec::new();
    let mut misses = 0usize;
    let mut budget = (payload.len() as u64).saturating_mul(SCAN_BUDGET_PER_BYTE);
    let mut target = chunk;
    // Leave at least half a chunk for the final worker.
    while target + chunk / 2 < payload.len() {
        let lo = (target as u64) * 8;
        let hi = ((target + chunk).min(payload.len().saturating_sub(2)) as u64) * 8;
        let mut bit = lo;
        if let Some(&last) = bounds.last() {
            if bit <= last {
                bit = last + 1;
            }
        }
        let mut found = None;
        while bit < hi {
            if budget == 0 {
                return None;
            }
            budget -= 1;
            if probe.probe(payload, bit) {
                found = Some(bit);
                break;
            }
            bit += 1;
        }
        match found {
            Some(b) => {
                bounds.push(b);
                misses = 0;
            }
            None => {
                misses += 1;
                if misses >= SCAN_GIVE_UP {
                    return None;
                }
            }
        }
        target += chunk;
    }
    if bounds.is_empty() {
        None
    } else {
        Some(bounds)
    }
}

/// Serially decodes from bit `from_bit` (a true block boundary) with the
/// tail of `out` as window, stopping at the first block boundary at or
/// past `until` (or at stream end when `None`), and appends the decoded
/// bytes to `out`. Returns the landing bit and whether the stream
/// finished.
fn repair_to(
    payload: &[u8],
    out: &mut Vec<u8>,
    from_bit: u64,
    until: Option<u64>,
) -> std::result::Result<(u64, bool), DeflateError> {
    let base = (from_bit / 8) * 8;
    let mut inf = Inflater::new_at(payload, from_bit)?;
    if !out.is_empty() {
        let wlo = out.len().saturating_sub(WINDOW_SIZE);
        inf.prime_window(&out[wlo..]);
    }
    loop {
        if inf.is_finished() {
            break;
        }
        if let Some(t) = until {
            if base + inf.bit_position() >= t {
                break;
            }
        }
        inf.decode_block(usize::MAX)?;
    }
    let end = base + inf.bit_position();
    let fin = inf.is_finished();
    out.extend_from_slice(inf.output());
    Ok((end, fin))
}

/// Decodes chunk `k` of the speculative split: `[bounds[k-1], bounds[k])`
/// in bit space (chunk 0 starts at bit 0; the last chunk runs to stream
/// end). Chunk 0 decodes plainly; later chunks decode into marker cells.
fn decode_chunk(payload: &[u8], bounds: &[u64], k: usize) -> ChunkResult {
    let stop = bounds.get(k).copied();
    if k == 0 {
        let mut inf = Inflater::new(payload);
        loop {
            if inf.is_finished() {
                break;
            }
            if let Some(sb) = stop {
                if inf.bit_position() >= sb {
                    break;
                }
            }
            if inf.decode_block(usize::MAX).is_err() {
                return ChunkResult::Failed;
            }
        }
        let end_bit = inf.bit_position();
        let finished = inf.is_finished();
        ChunkResult::Leader {
            bytes: inf.into_output(),
            end_bit,
            finished,
        }
    } else {
        let mut inf = match MarkerInflater::new_at(payload, bounds[k - 1]) {
            Ok(i) => i,
            Err(_) => return ChunkResult::Failed,
        };
        loop {
            if inf.is_finished() {
                break;
            }
            if let Some(sb) = stop {
                if inf.bit_position() >= sb {
                    break;
                }
            }
            if inf.decode_block(usize::MAX).is_err() {
                return ChunkResult::Failed;
            }
        }
        let end_bit = inf.bit_position();
        let finished = inf.is_finished();
        let (cells, _scratch) = inf.into_parts();
        ChunkResult::Spec {
            cells,
            end_bit,
            finished,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nx_deflate::CompressionLevel;

    fn opts(workers: usize, chunk: usize) -> ParallelInflateOptions {
        ParallelInflateOptions {
            workers,
            chunk_size: chunk,
            checkpoint_every: 64 * 1024,
        }
    }

    fn corpus(n: usize) -> Vec<u8> {
        // Mixed text/binary: compresses a few-to-one, so streams span
        // many DEFLATE blocks and speculation has boundaries to find.
        nx_corpus::mixed(41, n)
    }

    #[test]
    fn speculative_single_member_matches_serial() {
        let data = corpus(1 << 20);
        let gz = gzip::compress(&data, CompressionLevel::default());
        let par = ParallelInflater::new(opts(4, 32 * 1024));
        let out = par.decompress(&gz, Format::Gzip).unwrap();
        assert_eq!(out, data);
        assert!(par.stats().chunks_decoded() > 1, "speculation must engage");
        assert!(par.stats().marker_patch_bytes() > 0);
    }

    #[test]
    fn member_candidates_finds_all_members() {
        let mut stream = Vec::new();
        let mut starts = Vec::new();
        for i in 0..4 {
            starts.push(stream.len());
            stream.extend(gzip::compress(
                format!("member number {i}").as_bytes(),
                CompressionLevel::default(),
            ));
        }
        let cands = member_candidates(&stream);
        for s in starts {
            assert!(cands.contains(&s));
        }
    }

    #[test]
    fn multi_member_parallel_matches_members_walk() {
        let mut stream = Vec::new();
        let mut expect = Vec::new();
        for i in 0..8 {
            let payload = corpus(10_000 + i * 777);
            expect.extend_from_slice(&payload);
            stream.extend(gzip::compress(&payload, CompressionLevel::default()));
        }
        let par = ParallelInflater::new(opts(4, 32 * 1024));
        let out = par.decompress(&stream, Format::Gzip).unwrap();
        assert_eq!(out, expect);
        assert_eq!(par.stats().members_parallel(), 8);
        assert_eq!(par.stats().serial_fallbacks(), 0);
    }

    #[test]
    fn corrupt_stream_errors_like_serial() {
        let data = corpus(256 * 1024);
        let mut gz = gzip::compress(&data, CompressionLevel::default());
        let mid = gz.len() / 2;
        gz[mid] ^= 0xFF;
        let par = ParallelInflater::new(opts(4, 16 * 1024));
        let serial = par.decompress_serial(&gz, Format::Gzip);
        let parallel = par.decompress(&gz, Format::Gzip);
        assert_eq!(serial.is_err(), parallel.is_err());
        if let (Ok(a), Ok(b)) = (&serial, &parallel) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn seek_index_roundtrips_serialization() {
        let data = corpus(300_000);
        let gz = gzip::compress(&data, CompressionLevel::default());
        let par = ParallelInflater::new(opts(2, 32 * 1024));
        let idx = par.build_index(&gz, Format::Gzip).unwrap();
        assert!(idx.checkpoints().len() > 1, "expected interior checkpoints");
        let bytes = idx.to_bytes();
        let back = SeekIndex::from_bytes(&bytes).unwrap();
        assert_eq!(idx, back);
        assert!(SeekIndex::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(SeekIndex::from_bytes(&bad).is_err());
    }

    #[test]
    fn decompress_at_returns_correct_slices() {
        let data = corpus(400_000);
        let gz = gzip::compress(&data, CompressionLevel::default());
        let par = ParallelInflater::new(opts(2, 32 * 1024));
        let idx = par.build_index(&gz, Format::Gzip).unwrap();
        for (off, len) in [
            (0u64, 100usize),
            (65_536, 4096),
            (399_990, 100),
            (123_457, 70_000),
        ] {
            let got = par.decompress_at(&gz, &idx, off, len).unwrap();
            let lo = off as usize;
            let hi = (lo + len).min(data.len());
            assert_eq!(got, &data[lo..hi], "offset {off} len {len}");
        }
        assert!(matches!(
            par.decompress_at(&gz, &idx, data.len() as u64 + 1, 1),
            Err(Error::SeekOutOfRange)
        ));
        assert!(par.stats().seek_index_hits() >= 4);
    }

    #[test]
    fn decompress_at_spans_member_boundaries() {
        let a = corpus(100_000);
        let b = corpus(120_000);
        let mut stream = gzip::compress(&a, CompressionLevel::default());
        stream.extend(gzip::compress(&b, CompressionLevel::default()));
        let mut expect = a.clone();
        expect.extend_from_slice(&b);
        let par = ParallelInflater::new(opts(2, 32 * 1024));
        let (out, idx) = par.decompress_indexed(&stream, Format::Gzip).unwrap();
        assert_eq!(out, expect);
        let got = par.decompress_at(&stream, &idx, 99_000, 3000).unwrap();
        assert_eq!(got, &expect[99_000..102_000]);
    }

    #[test]
    fn zlib_and_raw_paths_work() {
        let data = corpus(600_000);
        let par = ParallelInflater::new(opts(4, 32 * 1024));
        let zl = nx_deflate::zlib::compress(&data, CompressionLevel::default());
        assert_eq!(par.decompress(&zl, Format::Zlib).unwrap(), data);
        let raw = nx_deflate::deflate(&data, CompressionLevel::default());
        assert_eq!(par.decompress(&raw, Format::RawDeflate).unwrap(), data);
        let (out, idx) = par.decompress_indexed(&zl, Format::Zlib).unwrap();
        assert_eq!(out, data);
        let got = par.decompress_at(&zl, &idx, 70_000, 1000).unwrap();
        assert_eq!(got, &data[70_000..71_000]);
    }
}
