//! Sharded parallel compression — the software analogue of feeding one
//! stream through several accelerator units (or pigz through several
//! cores) and still emitting a single valid gzip/zlib/raw-DEFLATE
//! stream.
//!
//! # How a sharded stream stays valid
//!
//! The input is cut into fixed-size chunks. Each chunk is compressed
//! independently by a pool worker, *primed* with the last 32 KB of the
//! preceding chunk as a preset dictionary
//! ([`StreamEncoder::with_dict`]) so cross-chunk matches are not lost at
//! the seam. Every non-final shard ends with a sync flush (the empty
//! stored block, `00 00 FF FF`), which both byte-aligns the shard and
//! leaves the block sequence open; the final shard ends with a final
//! block. Concatenating the shards in order therefore yields one
//! continuous, RFC 1951-valid DEFLATE stream — exactly the trick pigz
//! uses, and the reason the paper's multi-unit accelerators can split
//! one request across engines.
//!
//! Container checksums never see the whole input on one thread either:
//! each worker checksums its own chunk, and the per-shard values fold
//! into the trailer value with [`crc32_combine`] / [`adler32_combine`].
//!
//! Decompression of a DEFLATE stream *looks* inherently serial — every
//! match references the preceding 32 KB of *output*, so shard `i` cannot
//! simply be decoded before shard `i-1` finished. The engine breaks that
//! chain speculatively: [`ParallelEngine::decompress`] routes through
//! [`crate::parallel_inflate`], which probes for block boundaries, decodes
//! chunks ahead of their unknown window into marker buffers, and patches
//! the markers once the predecessor's trailing window resolves
//! (multi-member gzip takes the easy member-per-worker path instead).
//! Any speculation anomaly degrades to a serial inflate, so output is
//! always byte-identical to the single-threaded decoder.
//!
//! ```
//! use nx_core::parallel::{ParallelEngine, ParallelOptions};
//! use nx_core::Format;
//!
//! # fn main() -> Result<(), nx_core::Error> {
//! let engine = ParallelEngine::new(ParallelOptions::default());
//! let data = b"shard me shard me shard me ".repeat(40_000);
//! let gz = engine.compress(&data, 6, Format::Gzip)?;
//! let back = engine.decompress(&gz, Format::Gzip)?;
//! assert_eq!(back, data);
//! # Ok(())
//! # }
//! ```

use crate::fault::FaultInjector;
use crate::framing::Format;
use crate::parallel_inflate::{InflateParStats, ParallelInflateOptions, ParallelInflater};
use crate::scratch::BufferPool;
use crate::stats::Codec;
use crate::{software, Error, NxStats, Result};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use nx_deflate::adler32::{adler32, adler32_combine};
use nx_deflate::crc32::{crc32, crc32_combine};
use nx_deflate::stream::{Flush, StreamEncoder};
use nx_deflate::{gzip, zlib, CompressionLevel, Engine, Profile};
use nx_telemetry::{MetricSource, MetricValue, Stage, TelemetrySink, TraceContext, NO_PARENT};
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the submitting thread waits for a shard before checking
/// whether the pool is still alive. Purely a liveness probe: a healthy
/// but slow pool just loops.
const POOL_PROBE: Duration = Duration::from_millis(200);

/// Dictionary carried between shards: one DEFLATE window.
const DICT_SIZE: usize = nx_deflate::WINDOW_SIZE;

/// Modeled engine streaming rate for shard spans: 8 input bytes per
/// cycle (the paper's 16 GB/s at the 2 GHz nest clock). Shard timelines
/// are *modeled* — deterministic functions of shard index and size —
/// never wall clock, so trace dumps replay byte-identically.
const SHARD_BYTES_PER_CYCLE: u64 = 8;

/// Configuration for a [`ParallelEngine`].
#[derive(Debug, Clone)]
pub struct ParallelOptions {
    /// Worker threads in the pool (≥ 1; `0` is rounded up).
    pub workers: usize,
    /// Input bytes per shard. pigz's default is 128 KB; smaller shards
    /// expose more parallelism but pay more per-shard overhead (the sync
    /// flush marker, the dictionary re-priming, the Huffman headers).
    pub chunk_size: usize,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        Self {
            workers: 4,
            chunk_size: 128 * 1024,
        }
    }
}

/// One unit of work: compress `input[chunk]` with `input[dict]` as the
/// preset dictionary.
struct Job {
    seq: usize,
    /// Request index for fault-plan coordinates.
    request: u64,
    /// Request index for span-trace coordinates (sink-allocated, or the
    /// caller's trace id when the request joined an existing trace).
    trace_request: u64,
    /// Span the worker's shard spans hang under ([`NO_PARENT`] for a
    /// standalone request).
    trace_parent: u32,
    /// Whether this request's trace is sampled — unsampled requests
    /// skip shard-span emission but still record shard histograms.
    trace_sampled: bool,
    input: Arc<Vec<u8>>,
    chunk: Range<usize>,
    dict: Range<usize>,
    level: u32,
    engine: Engine,
    format: Format,
    is_final: bool,
    done: Sender<ShardOut>,
}

/// A shard result travelling back to the submitting thread; `data` is
/// `None` when the worker's compression panicked (the failure marker
/// that triggers the serial fallback instead of a hang).
struct ShardOut {
    seq: usize,
    data: Option<ShardData>,
}

/// A successfully compressed shard.
struct ShardData {
    bytes: Vec<u8>,
    /// CRC-32 of the shard's *input* (gzip framing only).
    crc: u32,
    /// Adler-32 of the shard's *input* (zlib framing only).
    adler: u32,
    len: u64,
}

/// Aggregate counters for a [`ParallelEngine`] (monotonic, lock-free).
#[derive(Debug, Default)]
pub struct ParallelStats {
    requests: AtomicU64,
    shards: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    serial_fallbacks: AtomicU64,
    worker_panics: AtomicU64,
    /// Shards compressed by each worker (index = worker id). Exposes the
    /// pool's load balance; sums to `shards` minus failed/injected ones.
    worker_shards: Vec<AtomicU64>,
    /// Input bytes compressed by each worker.
    worker_bytes: Vec<AtomicU64>,
}

impl ParallelStats {
    fn with_workers(n: usize) -> Self {
        Self {
            worker_shards: (0..n).map(|_| AtomicU64::new(0)).collect(),
            worker_bytes: (0..n).map(|_| AtomicU64::new(0)).collect(),
            ..Self::default()
        }
    }

    /// Completed `compress` calls.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Shards compressed across all requests.
    pub fn shards(&self) -> u64 {
        self.shards.load(Ordering::Relaxed)
    }

    /// Total input bytes.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.load(Ordering::Relaxed)
    }

    /// Total framed output bytes.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.load(Ordering::Relaxed)
    }

    /// Requests that completed through the inline serial fallback after a
    /// pool failure (worker death, poisoned channel).
    pub fn serial_fallbacks(&self) -> u64 {
        self.serial_fallbacks.load(Ordering::Relaxed)
    }

    /// Worker panics contained by the pool (each produces a failed shard
    /// marker, not a hang).
    pub fn worker_panics(&self) -> u64 {
        self.worker_panics.load(Ordering::Relaxed)
    }

    /// Shards compressed by each worker (index = worker id).
    pub fn worker_shards(&self) -> Vec<u64> {
        self.worker_shards
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Input bytes compressed by each worker (index = worker id).
    pub fn worker_bytes(&self) -> Vec<u64> {
        self.worker_bytes
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

impl MetricSource for ParallelStats {
    fn collect(&self, out: &mut Vec<(String, MetricValue)>) {
        out.push((
            "nx_parallel_requests_total".into(),
            MetricValue::Counter(self.requests()),
        ));
        out.push((
            "nx_parallel_shards_total".into(),
            MetricValue::Counter(self.shards()),
        ));
        out.push((
            "nx_parallel_bytes_in_total".into(),
            MetricValue::Counter(self.bytes_in()),
        ));
        out.push((
            "nx_parallel_bytes_out_total".into(),
            MetricValue::Counter(self.bytes_out()),
        ));
        out.push((
            "nx_parallel_serial_fallbacks_total".into(),
            MetricValue::Counter(self.serial_fallbacks()),
        ));
        out.push((
            "nx_parallel_worker_panics_total".into(),
            MetricValue::Counter(self.worker_panics()),
        ));
        for (i, (shards, bytes)) in self
            .worker_shards()
            .into_iter()
            .zip(self.worker_bytes())
            .enumerate()
        {
            out.push((
                format!("nx_parallel_worker_shards_total{{worker=\"{i}\"}}"),
                MetricValue::Counter(shards),
            ));
            out.push((
                format!("nx_parallel_worker_bytes_total{{worker=\"{i}\"}}"),
                MetricValue::Counter(bytes),
            ));
        }
    }
}

/// A persistent pool of compression workers producing single valid
/// streams from sharded input. See the [module docs](self) for the
/// format argument.
#[derive(Debug)]
pub struct ParallelEngine {
    opts: ParallelOptions,
    /// `Some` until drop; taking it closes the channel and stops workers.
    job_tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<ParallelStats>,
    faults: Option<Arc<FaultInjector>>,
    telemetry: TelemetrySink,
    /// Shard output buffers cycle through here: workers acquire, the
    /// submitting thread releases after stitching.
    pool: Arc<BufferPool>,
    /// The decode side: speculative two-stage parallel inflate.
    inflater: ParallelInflater,
}

impl ParallelEngine {
    /// Spawns the worker pool.
    pub fn new(mut opts: ParallelOptions) -> Self {
        opts.workers = opts.workers.max(1);
        Self::spawn(opts, None, TelemetrySink::disabled(), Arc::default())
    }

    /// Spawns the worker pool, rejecting a zero-worker configuration with
    /// [`Error::NoWorkers`] instead of rounding it up.
    pub fn try_new(opts: ParallelOptions) -> Result<Self> {
        if opts.workers == 0 {
            return Err(Error::NoWorkers);
        }
        Ok(Self::spawn(
            opts,
            None,
            TelemetrySink::disabled(),
            Arc::default(),
        ))
    }

    /// Spawns the worker pool under fault injection: the injector's plan
    /// may kill workers mid-stream ([`crate::fault::FaultKind::WorkerPanic`]),
    /// and the engine must still complete every request through the
    /// serial fallback.
    pub fn with_faults(mut opts: ParallelOptions, faults: Arc<FaultInjector>) -> Self {
        opts.workers = opts.workers.max(1);
        Self::spawn(
            opts,
            Some(faults),
            TelemetrySink::disabled(),
            Arc::default(),
        )
    }

    /// Spawns the worker pool with span tracing and metrics wired to
    /// `sink`, recycling shard buffers through `pool`. Shard spans are
    /// modeled (a deterministic function of shard index and size — see
    /// [`SHARD_BYTES_PER_CYCLE`]'s docs), so trace dumps are identical
    /// across runs regardless of thread scheduling.
    pub fn with_telemetry(
        mut opts: ParallelOptions,
        faults: Option<Arc<FaultInjector>>,
        sink: TelemetrySink,
        pool: Arc<BufferPool>,
    ) -> Self {
        opts.workers = opts.workers.max(1);
        Self::spawn(opts, faults, sink, pool)
    }

    fn spawn(
        opts: ParallelOptions,
        faults: Option<Arc<FaultInjector>>,
        sink: TelemetrySink,
        pool: Arc<BufferPool>,
    ) -> Self {
        Self::spawn_with_decode(opts, faults, sink, pool, None)
    }

    /// As [`spawn`](Self::spawn), but sharing `decode_stats` with a facade
    /// (which already registered it on the telemetry registry). When
    /// `None`, fresh decode counters are created and self-registered.
    fn spawn_with_decode(
        mut opts: ParallelOptions,
        faults: Option<Arc<FaultInjector>>,
        sink: TelemetrySink,
        pool: Arc<BufferPool>,
        decode_stats: Option<Arc<InflateParStats>>,
    ) -> Self {
        opts.chunk_size = opts.chunk_size.max(1);
        let stats = Arc::new(ParallelStats::with_workers(opts.workers));
        if let Some(reg) = sink.registry() {
            reg.register_source(
                "nx-parallel-stats",
                Arc::clone(&stats) as Arc<dyn MetricSource>,
            );
        }
        let decode_stats = match decode_stats {
            Some(s) => s,
            None => {
                let s = Arc::new(InflateParStats::default());
                if let Some(reg) = sink.registry() {
                    reg.register_source(
                        "nx-decode-parallel",
                        Arc::clone(&s) as Arc<dyn MetricSource>,
                    );
                }
                s
            }
        };
        let inflater = ParallelInflater::with_parts(
            ParallelInflateOptions {
                workers: opts.workers,
                ..ParallelInflateOptions::default()
            },
            decode_stats,
            faults.clone(),
            Arc::clone(&pool),
            sink.clone(),
        );
        // A small bounded queue: submission applies backpressure instead
        // of buffering every pending shard descriptor at once.
        let (job_tx, job_rx) = bounded::<Job>(opts.workers * 2);
        let workers = (0..opts.workers)
            .map(|worker_id| {
                let rx = job_rx.clone();
                let inj = faults.clone();
                let st = Arc::clone(&stats);
                let tel = sink.clone();
                let pl = Arc::clone(&pool);
                let shape = WorkerShape {
                    worker_id: worker_id as u32,
                    workers: opts.workers as u64,
                    chunk_size: opts.chunk_size as u64,
                };
                std::thread::spawn(move || worker_loop(rx, inj, st, tel, shape, pl))
            })
            .collect();
        Self {
            opts,
            job_tx: Some(job_tx),
            workers,
            stats,
            faults,
            telemetry: sink,
            pool,
            inflater,
        }
    }

    /// The options in force.
    pub fn options(&self) -> &ParallelOptions {
        &self.opts
    }

    /// Aggregate counters for this engine.
    pub fn stats(&self) -> &ParallelStats {
        &self.stats
    }

    /// The buffer pool shard outputs recycle through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Compresses `data` at `level` into `format` framing using the
    /// worker pool. Output is deterministic: it depends only on `data`,
    /// `level`, `format` and `chunk_size` — never on the worker count or
    /// completion order — and always equals
    /// [`compress_serial`](Self::compress_serial).
    ///
    /// # Errors
    ///
    /// [`Error::Deflate`] for an invalid `level`. A pool failure (worker
    /// death, poisoned channel) is *not* an error: the request completes
    /// through the inline serial fallback — same bytes, recorded in
    /// [`ParallelStats::serial_fallbacks`] — instead of hanging or
    /// surfacing a transient.
    pub fn compress(&self, data: &[u8], level: u32, format: Format) -> Result<Vec<u8>> {
        self.compress_traced(data, level, Engine::Auto, format, None)
    }

    /// As [`compress`](Self::compress), but every shard span the pool
    /// emits joins the caller's trace: `ctx.trace_id` becomes the span
    /// request coordinate, `ctx.parent_span` the parent, and
    /// `ctx.sampled` gates emission (histograms record regardless).
    ///
    /// # Errors
    ///
    /// As [`compress`](Self::compress).
    pub fn compress_in_trace(
        &self,
        data: &[u8],
        level: u32,
        format: Format,
        ctx: &TraceContext,
    ) -> Result<Vec<u8>> {
        self.compress_traced(data, level, Engine::Auto, format, Some(ctx))
    }

    fn compress_traced(
        &self,
        data: &[u8],
        level: u32,
        engine: Engine,
        format: Format,
        ctx: Option<&TraceContext>,
    ) -> Result<Vec<u8>> {
        CompressionLevel::new(level)?;
        match self.compress_pooled(data, level, engine, format, ctx) {
            Some(framed) => {
                self.record_request(data.len(), framed.len());
                Ok(framed)
            }
            None => {
                // Pool failure: finish the request inline. Identical
                // bytes by construction (same sharding + stitching).
                self.stats.serial_fallbacks.fetch_add(1, Ordering::Relaxed);
                if let Some(inj) = &self.faults {
                    let s = inj.stats();
                    s.bump(&s.serial_fallbacks);
                }
                let framed = self.compress_serial_engine(data, level, engine, format)?;
                self.record_request(data.len(), framed.len());
                Ok(framed)
            }
        }
    }

    /// As [`compress`](Self::compress) with the level taken from
    /// [`crate::CompressOptions`], so ladder rungs ([`nx_deflate::Level`])
    /// reach the shard workers unchanged.
    ///
    /// # Errors
    ///
    /// As [`compress`](Self::compress).
    pub fn compress_with(
        &self,
        data: &[u8],
        opts: crate::CompressOptions,
        format: Format,
    ) -> Result<Vec<u8>> {
        self.compress_traced(data, opts.level().get(), opts.engine(), format, None)
    }

    /// Runs one request through the pool; `None` means the pool could not
    /// complete it (dead workers, failed shard, closed channel) and the
    /// caller must fall back.
    fn compress_pooled(
        &self,
        data: &[u8],
        level: u32,
        engine: Engine,
        format: Format,
        ctx: Option<&TraceContext>,
    ) -> Option<Vec<u8>> {
        let shards = shard_ranges(data.len(), self.opts.chunk_size);
        let njobs = shards.len();
        let request = self.faults.as_ref().map_or(0, |inj| inj.begin_request());
        // A request arriving inside an existing trace reuses that trace's
        // coordinates; a standalone request mints its own.
        let (trace_request, trace_parent, trace_sampled) = match ctx {
            Some(c) => (c.trace_id, c.parent_span, c.sampled),
            None => {
                let id = if self.telemetry.is_enabled() {
                    self.telemetry.begin_request()
                } else {
                    0
                };
                (id, NO_PARENT, true)
            }
        };
        // One shared copy of the input; shards borrow ranges of it.
        let input = Arc::new(data.to_vec());
        let (done_tx, done_rx) = bounded::<ShardOut>(njobs);
        let job_tx = self.job_tx.as_ref()?;
        let mut pending: VecDeque<Job> = shards
            .into_iter()
            .enumerate()
            .map(|(seq, chunk)| {
                let dict = chunk.start.saturating_sub(DICT_SIZE)..chunk.start;
                Job {
                    seq,
                    request,
                    trace_request,
                    trace_parent,
                    trace_sampled,
                    input: Arc::clone(&input),
                    chunk,
                    dict,
                    level,
                    engine,
                    format,
                    is_final: seq + 1 == njobs,
                    done: done_tx.clone(),
                }
            })
            .collect();
        drop(done_tx);

        // Interleave non-blocking submission with collection: a blocking
        // send into a dead pool's full queue is exactly the hang this
        // path exists to prevent.
        let mut outs: Vec<Option<ShardData>> = (0..njobs).map(|_| None).collect();
        let mut received = 0usize;
        while received < njobs {
            while let Some(job) = pending.pop_front() {
                match job_tx.try_send(job) {
                    Ok(()) => {}
                    Err(TrySendError::Full(job)) => {
                        pending.push_front(job);
                        break;
                    }
                    Err(TrySendError::Disconnected(_)) => return None,
                }
            }
            match done_rx.recv_timeout(POOL_PROBE) {
                Ok(out) => {
                    received += 1;
                    outs[out.seq] = out.data;
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Slow is fine; dead is not. With every worker gone no
                    // shard will ever arrive.
                    if self.workers.iter().all(JoinHandle::is_finished) {
                        return None;
                    }
                }
                // All shard senders dropped with results missing: jobs
                // died with their workers.
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        let outs: Option<Vec<ShardData>> = outs.into_iter().collect();
        let outs = outs?;
        let framed = stitch(&outs, data.len(), format);
        for o in outs {
            self.pool.release(o.bytes);
        }
        Some(framed)
    }

    fn record_request(&self, bytes_in: usize, bytes_out: usize) {
        let njobs = shard_ranges(bytes_in, self.opts.chunk_size).len();
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        self.stats.shards.fetch_add(njobs as u64, Ordering::Relaxed);
        self.stats
            .bytes_in
            .fetch_add(bytes_in as u64, Ordering::Relaxed);
        self.stats
            .bytes_out
            .fetch_add(bytes_out as u64, Ordering::Relaxed);
    }

    /// The single-threaded reference: identical sharding and stitching,
    /// run inline. [`compress`](Self::compress) is defined to produce
    /// exactly these bytes.
    ///
    /// # Errors
    ///
    /// [`Error::Deflate`] for an invalid `level`.
    pub fn compress_serial(&self, data: &[u8], level: u32, format: Format) -> Result<Vec<u8>> {
        self.compress_serial_engine(data, level, Engine::Auto, format)
    }

    /// The serial reference with an explicit LZ77 engine — the inline
    /// fallback for [`compress_with`](Self::compress_with) requests must
    /// match the pooled bytes for the *requested* engine.
    fn compress_serial_engine(
        &self,
        data: &[u8],
        level: u32,
        engine: Engine,
        format: Format,
    ) -> Result<Vec<u8>> {
        CompressionLevel::new(level)?;
        let shards = shard_ranges(data.len(), self.opts.chunk_size);
        let njobs = shards.len();
        let mut enc: Option<StreamEncoder> = None;
        let outs: Vec<ShardData> = shards
            .into_iter()
            .enumerate()
            .map(|(seq, chunk)| {
                let dict = chunk.start.saturating_sub(DICT_SIZE)..chunk.start;
                compress_shard(
                    &mut enc,
                    self.pool.acquire(),
                    &data[chunk.clone()],
                    &data[dict],
                    level,
                    engine,
                    format,
                    seq + 1 == njobs,
                )
            })
            .collect();
        let framed = stitch(&outs, data.len(), format);
        for o in outs {
            self.pool.release(o.bytes);
        }
        Ok(framed)
    }

    /// Decompresses `format`-framed `data` through the speculative
    /// parallel inflate path ([`crate::parallel_inflate`]): multi-member
    /// gzip decodes member-per-worker, large single streams decode via
    /// boundary probing + two-stage marker decode, and anything smaller
    /// (or any speculation anomaly) decodes serially. Output is
    /// byte-identical to a serial inflate in every case.
    ///
    /// # Errors
    ///
    /// [`Error::Deflate`] for malformed containers or streams.
    pub fn decompress(&self, data: &[u8], format: Format) -> Result<Vec<u8>> {
        self.inflater.decompress(data, format)
    }

    /// As [`decompress`](Self::decompress) inside the caller's trace —
    /// decode workers' chunk/member spans land under `ctx.parent_span`
    /// on the request's timeline
    /// (see [`ParallelInflater::decompress_in_trace`]).
    ///
    /// # Errors
    ///
    /// As [`decompress`](Self::decompress).
    pub fn decompress_in_trace(
        &self,
        data: &[u8],
        format: Format,
        ctx: &TraceContext,
    ) -> Result<Vec<u8>> {
        self.inflater.decompress_in_trace(data, format, ctx)
    }

    /// The decode-side parallel inflater (for seek-index builds and
    /// random access bound to this engine's counters and pool).
    pub fn inflater(&self) -> &ParallelInflater {
        &self.inflater
    }

    /// Counters for the parallel-decode path.
    pub fn decode_stats(&self) -> &Arc<InflateParStats> {
        self.inflater.stats()
    }
}

impl Drop for ParallelEngine {
    fn drop(&mut self) {
        // Closing the channel ends every worker's `for job in rx` loop.
        drop(self.job_tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Splits `len` bytes into `chunk_size` shards; an empty input still
/// produces one (empty) shard so the final-block machinery runs.
fn shard_ranges(len: usize, chunk_size: usize) -> Vec<Range<usize>> {
    if len == 0 {
        // Intentionally one element holding the empty range 0..0 (one
        // empty shard), not an empty vec.
        #[allow(clippy::single_range_in_vec_init)]
        return vec![0..0];
    }
    let mut out = Vec::with_capacity(len.div_ceil(chunk_size));
    let mut start = 0;
    while start < len {
        let end = (start + chunk_size).min(len);
        out.push(start..end);
        start = end;
    }
    out
}

/// Worker body: compress shards until the job channel closes, reusing
/// one [`StreamEncoder`] (hash chains, token buffer, scratch space)
/// across every shard this worker ever sees.
///
/// Two failure modes are survived deliberately: an injected
/// `WorkerPanic` kills this worker mid-stream (the thread exits with the
/// job unfinished — the submission side must detect the dying pool), and
/// a genuine panic inside compression is contained to a failed-shard
/// marker so one bad shard poisons neither the channel nor the encoder
/// reused by later shards.
/// Static pool geometry a worker needs to place its shard spans on the
/// modeled timeline.
#[derive(Clone, Copy)]
struct WorkerShape {
    worker_id: u32,
    workers: u64,
    chunk_size: u64,
}

fn worker_loop(
    rx: Receiver<Job>,
    faults: Option<Arc<FaultInjector>>,
    stats: Arc<ParallelStats>,
    sink: TelemetrySink,
    shape: WorkerShape,
    pool: Arc<BufferPool>,
) {
    let mut enc: Option<StreamEncoder> = None;
    for job in rx.iter() {
        if let Some(inj) = &faults {
            if inj.worker_fault(job.request, job.seq as u64) {
                // Injected worker death: drop the job (its result sender
                // goes with it) and exit the thread.
                return;
            }
        }
        let chunk = &job.input[job.chunk.clone()];
        let dict = &job.input[job.dict.clone()];
        let result = catch_unwind(AssertUnwindSafe(|| {
            compress_shard(
                &mut enc,
                pool.acquire(),
                chunk,
                dict,
                job.level,
                job.engine,
                job.format,
                job.is_final,
            )
        }));
        let data = match result {
            Ok(d) => Some(d),
            Err(_) => {
                // The encoder's state is suspect after an unwind; drop it.
                enc = None;
                stats.worker_panics.fetch_add(1, Ordering::Relaxed);
                None
            }
        };
        if data.is_some() {
            stats.worker_shards[shape.worker_id as usize].fetch_add(1, Ordering::Relaxed);
            stats.worker_bytes[shape.worker_id as usize]
                .fetch_add(chunk.len() as u64, Ordering::Relaxed);
            if sink.is_enabled() {
                // Modeled timeline: round-robin waves of full chunks, so
                // shard `seq` starts after `seq / workers` earlier waves
                // each costing `chunk_size / rate` cycles, on modeled
                // unit `seq % workers`. Deterministic in (seq, size)
                // alone — never the actual schedule; the real load
                // balance lives in the per-worker counters instead.
                let wave_cycles = (shape.chunk_size / SHARD_BYTES_PER_CYCLE).max(1);
                let start = (job.seq as u64 / shape.workers) * wave_cycles;
                let dur = (chunk.len() as u64 / SHARD_BYTES_PER_CYCLE).max(1);
                if job.trace_sampled {
                    sink.emit(
                        job.trace_request,
                        job.seq as u32,
                        job.trace_parent,
                        Stage::Shard,
                        (job.seq as u64 % shape.workers) as u32,
                        start,
                        dur,
                        chunk.len() as u64,
                        0,
                    );
                }
                sink.record_shard(dur);
            }
        }
        // A receiver that gave up (fallback path) is not our problem;
        // drop the result.
        let _ = job.done.send(ShardOut { seq: job.seq, data });
    }
}

/// Compresses one shard into `buf` (a pooled buffer the caller releases
/// after stitching), reusing `enc` when the level matches.
#[allow(clippy::too_many_arguments)]
fn compress_shard(
    enc: &mut Option<StreamEncoder>,
    mut buf: Vec<u8>,
    chunk: &[u8],
    dict: &[u8],
    level: u32,
    engine: Engine,
    format: Format,
    is_final: bool,
) -> ShardData {
    let lvl = CompressionLevel::new(level).expect("validated at submission");
    let enc = match enc {
        Some(e) if e.level() == lvl && e.engine() == engine => {
            e.reset_with_dict(dict);
            e
        }
        slot => slot.insert(StreamEncoder::with_dict_engine(lvl, dict, engine)),
    };
    let flush = if is_final { Flush::Finish } else { Flush::Sync };
    buf.clear();
    enc.write_into(chunk, flush, &mut buf);
    let bytes = buf;
    ShardData {
        bytes,
        crc: if format == Format::Gzip {
            crc32(chunk)
        } else {
            0
        },
        adler: if format == Format::Zlib {
            adler32(chunk)
        } else {
            1
        },
        len: chunk.len() as u64,
    }
}

/// Concatenates ordered shards and wraps them in the container, folding
/// the per-shard checksums into the trailer value.
fn stitch(outs: &[ShardData], total_len: usize, format: Format) -> Vec<u8> {
    let body_len: usize = outs.iter().map(|o| o.bytes.len()).sum();
    let mut raw = Vec::with_capacity(body_len);
    for o in outs {
        raw.extend_from_slice(&o.bytes);
    }
    match format {
        Format::RawDeflate => raw,
        Format::Gzip => {
            let crc = outs
                .iter()
                .fold(0u32, |acc, o| crc32_combine(acc, o.crc, o.len));
            gzip::wrap_deflate(&raw, crc, total_len as u64)
        }
        Format::Zlib => {
            let adler = outs
                .iter()
                .fold(1u32, |acc, o| adler32_combine(acc, o.adler, o.len));
            zlib::wrap_deflate(&raw, adler)
        }
    }
}

/// A parallel compression session bound to an [`crate::Nx`] handle: the
/// engine's traffic is recorded into the handle's [`NxStats`], modeling
/// a host that fans one request out across accelerator units.
#[derive(Debug)]
pub struct ParallelSession {
    engine: ParallelEngine,
    stats: Arc<NxStats>,
    level: u32,
    engine_sel: Engine,
    /// Canned profile for single-shard (small) payloads: the traffic
    /// canned profiles target. Multi-shard inputs run the regular sharded
    /// ladder — per-shard dictionary hand-off and canned preset
    /// dictionaries are different mechanisms and do not compose.
    profile: Option<Profile>,
}

impl ParallelSession {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        mut opts: ParallelOptions,
        level: u32,
        engine_sel: Engine,
        profile: Option<Profile>,
        stats: Arc<NxStats>,
        faults: Option<Arc<FaultInjector>>,
        sink: TelemetrySink,
        pool: Arc<BufferPool>,
        decode_stats: Arc<InflateParStats>,
    ) -> Self {
        opts.workers = opts.workers.max(1);
        let engine =
            ParallelEngine::spawn_with_decode(opts, faults, sink, pool, Some(decode_stats));
        Self {
            engine,
            stats,
            level,
            engine_sel,
            profile,
        }
    }

    /// The pool configuration.
    pub fn options(&self) -> &ParallelOptions {
        &self.engine.opts
    }

    /// Per-engine counters (shards, bytes).
    pub fn engine_stats(&self) -> &ParallelStats {
        self.engine.stats()
    }

    /// Compresses `data` into `format` framing across the pool.
    ///
    /// # Errors
    ///
    /// As [`ParallelEngine::compress`].
    pub fn compress(&self, data: &[u8], format: Format) -> Result<Vec<u8>> {
        // Single-shard payloads — the small-payload traffic canned
        // profiles target — take the one-pass canned path; anything that
        // shards runs the regular parallel ladder, since per-shard
        // history hand-off and a preset dictionary do not compose.
        if let Some(p) = &self.profile {
            if data.len() <= self.engine.opts.chunk_size {
                let out = software::compress_with_profile(data, self.engine_sel, p, format);
                self.stats
                    .record_compress(Codec::Deflate, data.len() as u64, out.len() as u64, 0);
                return Ok(out);
            }
        }
        let out = self
            .engine
            .compress_traced(data, self.level, self.engine_sel, format, None)?;
        self.stats
            .record_compress(Codec::Deflate, data.len() as u64, out.len() as u64, 0);
        Ok(out)
    }

    /// Decompresses `format`-framed `data` through the parallel inflate
    /// path (see the [module docs](self)).
    ///
    /// # Errors
    ///
    /// As [`ParallelEngine::decompress`].
    pub fn decompress(&self, data: &[u8], format: Format) -> Result<Vec<u8>> {
        let out = self.engine.decompress(data, format)?;
        self.stats
            .record_decompress(Codec::Deflate, data.len() as u64, out.len() as u64, 0);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::software;

    fn corpus(n: usize) -> Vec<u8> {
        nx_corpus::mixed(7, n)
    }

    fn engine(workers: usize, chunk: usize) -> ParallelEngine {
        ParallelEngine::new(ParallelOptions {
            workers,
            chunk_size: chunk,
        })
    }

    #[test]
    fn roundtrips_all_formats() {
        let data = corpus(600 * 1024);
        let e = engine(4, 64 * 1024);
        for format in [Format::RawDeflate, Format::Gzip, Format::Zlib] {
            let out = e.compress(&data, 6, format).unwrap();
            assert_eq!(e.decompress(&out, format).unwrap(), data, "{format:?}");
        }
        assert_eq!(e.stats().requests(), 3);
        assert_eq!(e.stats().shards(), 3 * 10);
    }

    #[test]
    fn output_independent_of_worker_count() {
        let data = corpus(300 * 1024);
        let reference = engine(1, 32 * 1024)
            .compress(&data, 6, Format::Gzip)
            .unwrap();
        for workers in [2, 3, 8] {
            let out = engine(workers, 32 * 1024)
                .compress(&data, 6, Format::Gzip)
                .unwrap();
            assert_eq!(out, reference, "workers={workers}");
        }
    }

    #[test]
    fn pool_output_equals_serial_reference() {
        let data = corpus(200 * 1024);
        let e = engine(4, 24 * 1024);
        for format in [Format::RawDeflate, Format::Gzip, Format::Zlib] {
            assert_eq!(
                e.compress(&data, 6, format).unwrap(),
                e.compress_serial(&data, 6, format).unwrap(),
                "{format:?}"
            );
        }
    }

    #[test]
    fn empty_input() {
        let e = engine(2, 128 * 1024);
        for format in [Format::RawDeflate, Format::Gzip, Format::Zlib] {
            let out = e.compress(b"", 6, format).unwrap();
            assert_eq!(e.decompress(&out, format).unwrap(), b"", "{format:?}");
        }
    }

    #[test]
    fn input_smaller_than_one_chunk() {
        let data = b"fits in one shard".to_vec();
        let e = engine(4, 128 * 1024);
        let out = e.compress(&data, 6, Format::Gzip).unwrap();
        assert_eq!(e.decompress(&out, Format::Gzip).unwrap(), data);
        assert_eq!(e.stats().shards(), 1);
        // A single shard is a plain whole-stream compression: identical
        // bytes to the ordinary software path.
        assert_eq!(
            out,
            software::compress(&data, CompressionLevel::new(6).unwrap(), Format::Gzip)
        );
    }

    #[test]
    fn chunks_smaller_than_the_dictionary() {
        // 1 KB chunks: every shard's dictionary spans several whole
        // previous chunks' tails (dict range is clamped to 32 KB of
        // *input*, which here covers 32 chunks).
        let data = corpus(40 * 1024);
        let e = engine(3, 1024);
        for level in [1u32, 6] {
            let out = e.compress(&data, level, Format::Zlib).unwrap();
            assert_eq!(
                e.decompress(&out, Format::Zlib).unwrap(),
                data,
                "level {level}"
            );
        }
    }

    #[test]
    fn incompressible_shards_fall_back_to_stored() {
        // Random bytes cannot be compressed; the per-block stored
        // fallback must kick in and keep expansion bounded (stored
        // overhead is 5 bytes per 64 KB + the shard seams).
        let data = nx_corpus::CorpusKind::Random.generate(3, 512 * 1024);
        let e = engine(4, 64 * 1024);
        let out = e.compress(&data, 6, Format::Gzip).unwrap();
        assert_eq!(e.decompress(&out, Format::Gzip).unwrap(), data);
        assert!(
            out.len() < data.len() + data.len() / 100 + 64,
            "incompressible input expanded: {} -> {}",
            data.len(),
            out.len()
        );
    }

    #[test]
    fn dictionary_priming_helps_across_shards() {
        // Input whose period is much larger than one chunk but smaller
        // than the window: without dictionary hand-off every shard would
        // start cold and find no cross-shard matches.
        let motif = corpus(24 * 1024);
        let data: Vec<u8> = motif
            .iter()
            .copied()
            .cycle()
            .take(motif.len() * 8)
            .collect();
        let primed = engine(2, 24 * 1024)
            .compress(&data, 6, Format::RawDeflate)
            .unwrap();
        // Reference without priming: compress each chunk independently
        // and concatenate lengths (not a valid stream; length only).
        let cold: usize = data
            .chunks(24 * 1024)
            .map(|c| nx_deflate::deflate(c, CompressionLevel::new(6).unwrap()).len())
            .sum();
        assert!(
            primed.len() * 2 < cold,
            "dictionary hand-off ineffective: primed {} vs cold {}",
            primed.len(),
            cold
        );
    }

    #[test]
    fn level_zero_and_invalid_levels() {
        let data = corpus(100 * 1024);
        let e = engine(2, 32 * 1024);
        let out = e.compress(&data, 0, Format::Gzip).unwrap();
        assert_eq!(e.decompress(&out, Format::Gzip).unwrap(), data);
        assert!(e.compress(&data, 10, Format::Gzip).is_err());
    }

    #[test]
    fn zero_workers_rejected_by_try_new() {
        let opts = ParallelOptions {
            workers: 0,
            chunk_size: 64 * 1024,
        };
        assert!(matches!(
            ParallelEngine::try_new(opts.clone()),
            Err(Error::NoWorkers)
        ));
        // The legacy constructor still rounds up.
        assert_eq!(ParallelEngine::new(opts).options().workers, 1);
    }

    #[test]
    fn injected_worker_death_falls_back_to_serial() {
        use crate::fault::{FaultKind, FaultPlan, RecoveryPolicy, Scripted, Site};
        // Kill every worker on its first shard of request 0: the pool is
        // dead mid-request and the engine must still produce the exact
        // serial bytes instead of hanging.
        let script: Vec<Scripted> = (0..16)
            .map(|s| Scripted {
                site: Site::Worker,
                request: 0,
                attempt: s,
                kind: FaultKind::WorkerPanic,
            })
            .collect();
        let inj = Arc::new(FaultInjector::new(
            FaultPlan::script(script),
            RecoveryPolicy::default(),
        ));
        let e = ParallelEngine::with_faults(
            ParallelOptions {
                workers: 2,
                chunk_size: 16 * 1024,
            },
            Arc::clone(&inj),
        );
        let data = corpus(120 * 1024);
        let out = e.compress(&data, 6, Format::Gzip).unwrap();
        assert_eq!(out, e.compress_serial(&data, 6, Format::Gzip).unwrap());
        assert_eq!(e.stats().serial_fallbacks(), 1);
        assert!(inj.stats().worker_panic_count() >= 1);
        assert_eq!(inj.stats().serial_fallback_count(), 1);
        // The pool is gone, but later requests still complete serially.
        let out2 = e.compress(&data, 6, Format::Zlib).unwrap();
        assert_eq!(out2, e.compress_serial(&data, 6, Format::Zlib).unwrap());
        assert_eq!(e.stats().serial_fallbacks(), 2);
    }

    #[test]
    fn backpressure_many_shards_through_a_tiny_pool() {
        // Far more shards than queue slots (workers*2 = 2): submission
        // must interleave with collection, never deadlock, and output
        // must stay byte-identical.
        let data = corpus(256 * 1024);
        let e = engine(1, 4 * 1024); // 64 shards, 2 queue slots
        let out = e.compress(&data, 6, Format::Gzip).unwrap();
        assert_eq!(out, e.compress_serial(&data, 6, Format::Gzip).unwrap());
        assert_eq!(e.decompress(&out, Format::Gzip).unwrap(), data);
        assert_eq!(e.stats().serial_fallbacks(), 0);
    }

    #[test]
    fn shard_buffers_recycle_through_the_pool() {
        let data = corpus(256 * 1024);
        let e = engine(2, 32 * 1024); // 8 shards per request
        e.compress(&data, 6, Format::Gzip).unwrap();
        // Every shard buffer stitched on the submitting thread goes back
        // to the shelf (pool cap permitting).
        assert_eq!(e.pool().recycled(), 8);
        e.compress(&data, 6, Format::Gzip).unwrap();
        assert!(
            e.pool().hits() >= 1,
            "second request never reused a shard buffer"
        );
        assert_eq!(e.pool().recycled(), 16);
    }

    #[test]
    fn session_records_into_nx_stats() {
        let nx = crate::Nx::power9();
        let sess = nx.parallel_session(
            ParallelOptions {
                workers: 2,
                chunk_size: 16 * 1024,
            },
            6,
        );
        let data = corpus(64 * 1024);
        let out = sess.compress(&data, Format::Gzip).unwrap();
        assert_eq!(nx.stats().compress_requests(), 1);
        assert_eq!(nx.stats().bytes_in(), data.len() as u64);
        let back = sess.decompress(&out, Format::Gzip).unwrap();
        assert_eq!(back, data);
        assert_eq!(
            sess.engine_stats().shards(),
            (data.len() as u64).div_ceil(16 * 1024)
        );
    }
}
