//! Steady-state allocation audit for the PR 4 scratch layer, using a
//! counting global allocator.
//!
//! The claim under test: once a `ScratchSession` is warm, repeated
//! `decompress_into` calls perform **zero** heap allocation in any
//! container format — decode tables rebuild in place, the output buffer
//! keeps its capacity, and the container parsers are allocation-free.
//!
//! The compress path is *exempt from strict zero* by design: dynamic-
//! Huffman block planning builds a fresh histogram and code plan per
//! block (see DESIGN.md), so the bar there is a constant, bounded
//! allocation count per iteration — no growth, no leaks.
//!
//! Everything lives in one `#[test]` because the counter is process-wide
//! and the harness runs sibling tests on concurrent threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use nx_core::{Format, Nx};

/// System allocator wrapper that counts every allocation event
/// (`alloc`, `alloc_zeroed`, and growth via `realloc`).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

const FORMATS: [Format; 3] = [Format::RawDeflate, Format::Gzip, Format::Zlib];
const WARMUP: usize = 3;
const ITERS: u64 = 8;

#[test]
fn scratch_session_steady_state_allocation_profile() {
    let nx = Nx::power9();
    let mut sess = nx.scratch_session(6).expect("level 6 is valid");
    let data = nx_corpus::CorpusKind::Text.generate(0xA110C, 256 << 10);

    let mut comp = Vec::new();
    let mut out = Vec::new();

    // --- Decompress: strict zero after warmup, every format. ---
    for (i, format) in FORMATS.into_iter().enumerate() {
        sess.compress_into(&data, format, &mut comp)
            .expect("compress is infallible");
        let before_warm = allocs();
        for _ in 0..WARMUP {
            sess.decompress_into(&comp, format, &mut out)
                .expect("valid container");
            assert_eq!(out, data);
        }
        // Counter sanity on the very first decode only: a cold session
        // must allocate (tables, output capacity). Later formats reuse
        // everything and may legitimately stay at zero from call one.
        if i == 0 {
            assert!(
                allocs() > before_warm,
                "counter sanity: first warmup must allocate (fresh tables/capacity)"
            );
        }

        let before = allocs();
        for _ in 0..ITERS {
            sess.decompress_into(&comp, format, &mut out)
                .expect("valid container");
            std::hint::black_box(out.len());
        }
        let delta = allocs() - before;
        assert_eq!(
            delta, 0,
            "steady-state decompress_into allocated {delta} times in {ITERS} iters ({format:?})"
        );
    }

    // --- Compress: constant bounded allocations per iteration. ---
    for _ in 0..WARMUP {
        sess.compress_into(&data, Format::Gzip, &mut comp)
            .expect("compress is infallible");
    }
    let t0 = allocs();
    for _ in 0..ITERS {
        sess.compress_into(&data, Format::Gzip, &mut comp)
            .expect("compress is infallible");
    }
    let first = allocs() - t0;
    let t1 = allocs();
    for _ in 0..2 * ITERS {
        sess.compress_into(&data, Format::Gzip, &mut comp)
            .expect("compress is infallible");
    }
    let second = allocs() - t1;
    assert_eq!(
        second,
        2 * first,
        "compress_into allocation count must be constant per iteration, not growing"
    );
    let per_iter = first / ITERS;
    assert!(
        per_iter <= 256,
        "compress_into allocates {per_iter}/iter — dynamic-Huffman planning \
         should stay within a couple hundred allocations"
    );

    // --- Pool recycling is also allocation-free once a buffer exists. ---
    let buf = sess.acquire_buffer();
    sess.release_buffer(buf);
    let before = allocs();
    for _ in 0..ITERS {
        let b = sess.acquire_buffer();
        sess.release_buffer(b);
    }
    assert_eq!(
        allocs() - before,
        0,
        "pool acquire/release cycle must not allocate"
    );
}
