//! End-to-end trace propagation (ISSUE 8 acceptance): a single trace id
//! minted at service admission is followable through the scheduler,
//! coalesced engine submission, execution, fault-recovery retries, and
//! completion — by scanning the span ring for that one id.

use nx_core::{
    FaultPlan, FaultRates, Format, Nx, QosClass, RecoveryPolicy, ServiceConfig, TenantSpec,
};
use nx_telemetry::{MetricsRegistry, Sampler, SpanEvent, Stage, TelemetrySink, NO_PARENT};
use std::collections::BTreeMap;

/// Groups the span ring by trace id, each timeline sorted by span seq.
fn traces(spans: &[SpanEvent]) -> BTreeMap<u64, Vec<SpanEvent>> {
    let mut m: BTreeMap<u64, Vec<SpanEvent>> = BTreeMap::new();
    for s in spans {
        m.entry(s.request).or_default().push(*s);
    }
    for v in m.values_mut() {
        v.sort_by_key(|s| s.seq);
    }
    m
}

fn stage(tl: &[SpanEvent], stage: Stage) -> Option<SpanEvent> {
    tl.iter().find(|s| s.stage == stage).copied()
}

fn traced_nx() -> Nx {
    Nx::new(nx_accel::AccelConfig::power9())
        .with_telemetry(TelemetrySink::enabled(MetricsRegistry::new()))
}

#[test]
fn one_trace_id_follows_a_request_admission_to_completion() {
    let nx = traced_nx();
    let svc = nx.service(ServiceConfig::default());
    let tenant = svc.open_window(TenantSpec::new("rpc", QosClass::Latency, 8));

    let payload = vec![7u8; 2048]; // under coalesce_limit
    let served = tenant
        .submit(payload.clone(), Format::Gzip)
        .expect("admit")
        .wait()
        .expect("complete");
    assert!(!served.compressed.bytes.is_empty());
    svc.close();

    let all = nx.telemetry().trace();
    let by_id = traces(&all);
    // Exactly one service request ran, so exactly one trace has an
    // admission span; that same id must carry every later stage.
    let (id, tl) = by_id
        .iter()
        .find(|(_, tl)| stage(tl, Stage::Admit).is_some())
        .expect("an admitted trace");

    let admit = stage(tl, Stage::Admit).unwrap();
    let wait = stage(tl, Stage::QueueWait).expect("queue-wait span");
    let dispatch = stage(tl, Stage::Dispatch).expect("dispatch span");
    let submit = stage(tl, Stage::Submit).expect("engine submit span");
    let engine = stage(tl, Stage::Engine).expect("engine span");
    let complete = stage(tl, Stage::Complete).expect("completion span");

    // Request-local timeline: admission starts the trace at cycle 0 and
    // the seq/cycle cursors only move forward.
    assert_eq!(admit.seq, 0);
    assert_eq!(admit.start_cycles, 0);
    assert_eq!(admit.parent, NO_PARENT);
    assert_eq!(wait.seq, 1);
    assert_eq!(dispatch.seq, 2);
    // Execution-side spans hang under the dispatch span: the fan-out
    // point where the scheduler handed the batch to the engine.
    assert_eq!(submit.parent, dispatch.seq);
    assert_eq!(engine.parent, dispatch.seq);
    assert_eq!(complete.parent, dispatch.seq);
    for pair in tl.windows(2) {
        assert!(
            pair[1].start_cycles >= pair[0].start_cycles,
            "monotone timeline"
        );
        assert!(pair[1].seq > pair[0].seq, "unique ascending seq");
    }
    // The admission span carries the tenant id; the trace id is the
    // one the exemplar system would surface.
    assert_eq!(admit.detail, 0, "first tenant id");
    assert!(*id > 0 || admit.request == *id);
}

#[test]
fn every_admitted_request_has_a_complete_chain() {
    let nx = traced_nx();
    let svc = nx.service(ServiceConfig::default());
    let tenant = svc.open_window(TenantSpec::new("rpc", QosClass::Latency, 16));

    let tickets: Vec<_> = (0..12)
        .map(|i| {
            tenant
                .submit(vec![i as u8; 512 + i * 97], Format::Zlib)
                .expect("admit")
        })
        .collect();
    for t in tickets {
        t.wait().expect("complete");
    }
    svc.close();

    let by_id = traces(&nx.telemetry().trace());
    let admitted: Vec<_> = by_id
        .values()
        .filter(|tl| stage(tl, Stage::Admit).is_some())
        .collect();
    assert_eq!(admitted.len(), 12, "one admission trace per request");
    for tl in admitted {
        let dispatch = stage(tl, Stage::Dispatch).expect("dispatch");
        assert!(dispatch.detail >= 1, "batch size recorded");
        for st in [
            Stage::QueueWait,
            Stage::Submit,
            Stage::Engine,
            Stage::Complete,
        ] {
            assert!(stage(tl, st).is_some(), "missing {st:?}");
        }
        // Engine-side spans all hang under this trace's dispatch point.
        for s in tl.iter().filter(|s| s.seq > dispatch.seq) {
            assert_eq!(s.parent, dispatch.seq);
        }
    }
}

#[test]
fn retries_join_the_admission_trace() {
    // Deterministic seeded faults, high enough that retries certainly
    // fire across 16 requests; recovery resubmits so all complete.
    let nx = Nx::with_faults(
        nx_accel::AccelConfig::power9(),
        FaultPlan::seeded(11, FaultRates::sweep(0.4)),
        RecoveryPolicy::touch_ahead(4),
    )
    .with_telemetry(TelemetrySink::enabled(MetricsRegistry::new()));
    let svc = nx.service(ServiceConfig::default());
    let tenant = svc.open_window(TenantSpec::new("rpc", QosClass::Latency, 16));

    let tickets: Vec<_> = (0..16)
        .map(|i| {
            tenant
                .submit(vec![0xA5; 4096 + i], Format::Gzip)
                .expect("admit")
        })
        .collect();
    for t in tickets {
        t.wait().expect("complete");
    }
    svc.close();

    let by_id = traces(&nx.telemetry().trace());
    let with_retry: Vec<_> = by_id
        .values()
        .filter(|tl| stage(tl, Stage::Admit).is_some() && stage(tl, Stage::Retry).is_some())
        .collect();
    assert!(
        !with_retry.is_empty(),
        "seeded fault sweep produced no retried service request"
    );
    for tl in &with_retry {
        let dispatch = stage(tl, Stage::Dispatch).expect("dispatch");
        let retry = stage(tl, Stage::Retry).unwrap();
        let complete = stage(tl, Stage::Complete).expect("recovered completion");
        // The retry hangs under the same dispatch fan-out point as the
        // engine spans, and the recovered completion lands after it.
        assert_eq!(retry.parent, dispatch.seq);
        assert!(complete.start_cycles >= retry.start_cycles);
    }
}

#[test]
fn sampling_gates_spans_but_not_latency_accounting() {
    let run = |sampler: Sampler| {
        let sink = TelemetrySink::enabled(MetricsRegistry::new()).with_sampler(sampler);
        let nx = Nx::new(nx_accel::AccelConfig::power9()).with_telemetry(sink);
        let svc = nx.service(ServiceConfig::default());
        let tenant = svc.open_window(TenantSpec::new("rpc", QosClass::Latency, 8));
        let mut lat = Vec::new();
        for i in 0..8u64 {
            let served = tenant
                .submit(vec![i as u8; 1024], Format::Gzip)
                .expect("admit")
                .wait()
                .expect("complete");
            lat.push(served.latency_cycles);
        }
        svc.close();
        (lat, nx.telemetry().trace().len())
    };
    let (lat_on, spans_on) = run(Sampler::Always);
    let (lat_off, spans_off) = run(Sampler::Never);
    // Identical modeled latencies — sampling only gates span emission.
    assert_eq!(lat_on, lat_off);
    assert!(spans_on > 0);
    assert_eq!(spans_off, 0);
}
