//! Highly repetitive data: zero pages, constant runs and a repeated block
//! motif — the best case for any LZ compressor (ratio ≫ 20×). Stands in
//! for sparse database pages and zeroed memory, the cases where the
//! paper's 842 memory-compression path shines.

use rand::rngs::StdRng;
use rand::Rng;

pub(crate) fn generate(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + 4096);
    // A fixed 64-byte motif repeated throughout.
    let motif: Vec<u8> = (0..64u8)
        .map(|i| i.wrapping_mul(37).wrapping_add(11))
        .collect();
    while out.len() < len {
        match rng.gen_range(0..8u32) {
            0..=2 => out.extend(std::iter::repeat_n(0u8, rng.gen_range(256..4096))),
            3..=5 => {
                let b: u8 = rng.gen_range(0..4) * 85;
                out.extend(std::iter::repeat_n(b, rng.gen_range(128..2048)));
            }
            6 => {
                for _ in 0..rng.gen_range(4..64) {
                    out.extend_from_slice(&motif);
                }
            }
            _ => {
                // A short "dirty" stretch so the data is not trivially
                // constant.
                for _ in 0..rng.gen_range(4..32) {
                    out.push(rng.gen());
                }
            }
        }
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mostly_runs() {
        let mut rng = StdRng::seed_from_u64(14);
        let data = generate(&mut rng, 1 << 16);
        let repeats = data.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(
            repeats as f64 > data.len() as f64 * 0.5,
            "only {repeats} repeats"
        );
    }

    #[test]
    fn low_entropy() {
        let mut rng = StdRng::seed_from_u64(15);
        let data = generate(&mut rng, 1 << 16);
        assert!(crate::byte_entropy(&data) < 4.0);
    }
}
