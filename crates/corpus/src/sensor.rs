//! Sensor/time-series telemetry: little-endian `f32` samples following a
//! drifting baseline with small noise, in the style of IoT/metric streams.
//! Byte-level redundancy is modest (exponent bytes repeat, mantissa bytes
//! are noisy) — a class DEFLATE compresses only lightly, sitting between
//! text and incompressible data.

use rand::rngs::StdRng;
use rand::Rng;

pub(crate) fn generate(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + 16);
    // Several channels with their own baselines, interleaved sample-major.
    let mut baselines = [20.0f32, 101.3, 3.3, 998.0];
    while out.len() < len {
        for b in baselines.iter_mut() {
            // Slow drift plus measurement noise.
            *b += (rng.gen::<f32>() - 0.5) * 0.01 * *b;
            let sample = *b + (rng.gen::<f32>() - 0.5) * 0.001 * *b;
            out.extend_from_slice(&sample.to_le_bytes());
        }
        // Occasionally a quantized integer channel (ADC counts).
        if rng.gen_ratio(1, 4) {
            let adc: u16 = rng.gen_range(2000..2100);
            out.extend_from_slice(&adc.to_le_bytes());
        }
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn floats_stay_near_baselines() {
        let mut rng = StdRng::seed_from_u64(23);
        let data = generate(&mut rng, 16 * 4);
        let first = f32::from_le_bytes(data[0..4].try_into().unwrap());
        assert!((10.0..40.0).contains(&first), "first sample {first}");
    }

    #[test]
    fn entropy_is_intermediate() {
        let mut rng = StdRng::seed_from_u64(24);
        let data = generate(&mut rng, 1 << 16);
        let h = crate::byte_entropy(&data);
        assert!((4.0..7.9).contains(&h), "entropy {h}");
    }
}
