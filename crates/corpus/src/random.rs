//! Uniform random bytes — the incompressible extreme (encrypted or
//! already-compressed payloads). Exercises the encoders' stored-block
//! fallback and the accelerator model's worst-case output bandwidth.

use rand::rngs::StdRng;
use rand::RngCore;

pub(crate) fn generate(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut out = vec![0u8; len];
    rng.fill_bytes(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn near_maximum_entropy() {
        let mut rng = StdRng::seed_from_u64(13);
        let data = generate(&mut rng, 1 << 16);
        assert!(crate::byte_entropy(&data) > 7.95);
    }
}
