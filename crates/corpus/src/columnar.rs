//! Columnar integer data: little-endian 32-bit columns whose values move by
//! small deltas, like timestamp / counter / measure columns in database
//! pages and Parquet chunks. Byte-level redundancy concentrates in the high
//! bytes of each word.

use rand::rngs::StdRng;
use rand::Rng;

/// Values per column chunk (a "page" of one column before switching).
const CHUNK_VALUES: usize = 1024;

pub(crate) fn generate(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + 4 * CHUNK_VALUES);
    // Three column personalities cycled per chunk.
    let mut timestamp: u32 = 1_600_000_000;
    let mut counter: u32 = 0;
    let mut kind = 0usize;
    while out.len() < len {
        match kind % 3 {
            0 => {
                // Timestamp column: strictly increasing, small deltas.
                for _ in 0..CHUNK_VALUES {
                    timestamp = timestamp.wrapping_add(rng.gen_range(0..16));
                    out.extend_from_slice(&timestamp.to_le_bytes());
                }
            }
            1 => {
                // Counter column: mostly +1 with occasional resets.
                for _ in 0..CHUNK_VALUES {
                    if rng.gen_ratio(1, 200) {
                        counter = 0;
                    }
                    counter = counter.wrapping_add(1);
                    out.extend_from_slice(&counter.to_le_bytes());
                }
            }
            _ => {
                // Measure column: small values from a skewed distribution.
                for _ in 0..CHUNK_VALUES {
                    let v: u32 = if rng.gen_ratio(9, 10) {
                        rng.gen_range(0..256)
                    } else {
                        rng.gen_range(0..1_000_000)
                    };
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        kind += 1;
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn high_bytes_are_redundant() {
        let mut rng = StdRng::seed_from_u64(7);
        let data = generate(&mut rng, 4 * CHUNK_VALUES);
        // First chunk is timestamps: every 4th byte (MSB) nearly constant.
        let msbs: Vec<u8> = data.chunks_exact(4).map(|w| w[3]).collect();
        let distinct: std::collections::HashSet<u8> = msbs.iter().copied().collect();
        assert!(distinct.len() <= 2, "{} distinct MSBs", distinct.len());
    }

    #[test]
    fn counter_chunk_increments() {
        let mut rng = StdRng::seed_from_u64(8);
        let data = generate(&mut rng, 8 * CHUNK_VALUES);
        // Second chunk (counter column) starts at byte 4*CHUNK_VALUES.
        let words: Vec<u32> = data[4 * CHUNK_VALUES..8 * CHUNK_VALUES]
            .chunks_exact(4)
            .map(|w| u32::from_le_bytes(w.try_into().unwrap()))
            .collect();
        let increments = words.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(increments as f64 > words.len() as f64 * 0.95);
    }
}
