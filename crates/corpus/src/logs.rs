//! Server-log-like lines: monotonic timestamps, a small set of templates,
//! and skewed field values. Highly compressible (≈5–10×), the class the
//! paper's storage/log-archival motivation targets.

use rand::rngs::StdRng;
use rand::Rng;

const LEVELS: &[&str] = &["INFO", "INFO", "INFO", "INFO", "WARN", "DEBUG", "ERROR"];
const COMPONENTS: &[&str] = &[
    "nx.gzip",
    "vas.window",
    "dma.read",
    "dma.write",
    "erat",
    "scheduler",
    "spark.shuffle",
    "storage.tier",
    "net.rpc",
];
const MESSAGES: &[&str] = &[
    "request completed in {d} us",
    "queued CRB at depth {d}",
    "page fault on source buffer, resubmitting after touch ({d} pages)",
    "compression ratio {d}.{d2} on partition {d3}",
    "window credit returned ({d} outstanding)",
    "checksum verified for job {d}",
    "engine utilization {d} percent",
];

pub(crate) fn generate(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + 128);
    let mut ts: u64 = 1_577_836_800_000; // fixed epoch base (ms)
    let mut seq: u64 = 0;
    while out.len() < len {
        ts += rng.gen_range(1..50);
        seq += 1;
        let level = LEVELS[rng.gen_range(0..LEVELS.len())];
        let comp = COMPONENTS[rng.gen_range(0..COMPONENTS.len())];
        let template = MESSAGES[rng.gen_range(0..MESSAGES.len())];
        // Skewed numeric fields: mostly small values.
        let d: u32 = if rng.gen_ratio(4, 5) {
            rng.gen_range(0..100)
        } else {
            rng.gen_range(0..100_000)
        };
        let msg = template
            .replace("{d3}", &(seq % 200).to_string())
            .replace("{d2}", &(d % 10).to_string())
            .replace("{d}", &d.to_string());
        let line = format!("{ts} {level:5} [{comp}] req={seq:08x} {msg}\n");
        out.extend_from_slice(line.as_bytes());
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lines_are_well_formed() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = generate(&mut rng, 20_000);
        let text = String::from_utf8(data).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() > 100);
        // All complete lines carry a timestamp and a component tag.
        for line in &lines[..lines.len() - 1] {
            assert!(line.contains('['), "malformed line: {line}");
            assert!(line.contains("req="), "malformed line: {line}");
        }
    }

    #[test]
    fn timestamps_are_monotonic() {
        let mut rng = StdRng::seed_from_u64(4);
        let data = generate(&mut rng, 20_000);
        let text = String::from_utf8(data).unwrap();
        let stamps: Vec<u64> = text
            .lines()
            .filter_map(|l| l.split(' ').next()?.parse().ok())
            .collect();
        assert!(stamps.windows(2).all(|w| w[0] < w[1]));
    }
}
