//! Source-code-like text: keyword-dense lines, indentation structure and
//! identifier reuse — the Calgary `progc`/`progl` class of input.

use rand::rngs::StdRng;
use rand::Rng;

const KEYWORDS: &[&str] = &[
    "if", "else", "for", "while", "return", "static", "const", "struct", "int", "char", "void",
    "unsigned", "switch", "case", "break", "sizeof",
];
const IDENTS: &[&str] = &[
    "buffer", "length", "offset", "state", "ctx", "result", "index", "count", "flags", "src",
    "dst", "tmp", "node", "entry", "queue", "handle",
];

pub(crate) fn generate(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + 128);
    let mut depth = 1usize;
    while out.len() < len {
        let indent = "    ".repeat(depth.min(6));
        let line = match rng.gen_range(0..8u32) {
            0 => {
                depth += 1;
                format!(
                    "{indent}{} ({} {} {}) {{",
                    KEYWORDS[rng.gen_range(0..4)],
                    IDENTS[rng.gen_range(0..IDENTS.len())],
                    ["<", ">", "==", "!="][rng.gen_range(0..4)],
                    rng.gen_range(0..256u32)
                )
            }
            1 if depth > 1 => {
                depth -= 1;
                format!("{indent}}}")
            }
            2 => format!(
                "{indent}{} {} = {}[{}];",
                KEYWORDS[rng.gen_range(8..12)],
                IDENTS[rng.gen_range(0..IDENTS.len())],
                IDENTS[rng.gen_range(0..IDENTS.len())],
                IDENTS[rng.gen_range(0..IDENTS.len())]
            ),
            3 => format!(
                "{indent}{}->{} += {};",
                IDENTS[rng.gen_range(0..IDENTS.len())],
                IDENTS[rng.gen_range(0..IDENTS.len())],
                rng.gen_range(1..64u32)
            ),
            4 => format!(
                "{indent}/* {} {} */",
                IDENTS[rng.gen_range(0..IDENTS.len())],
                rng.gen_range(0..100u32)
            ),
            5 => format!(
                "{indent}return {}({}, {});",
                IDENTS[rng.gen_range(0..IDENTS.len())],
                IDENTS[rng.gen_range(0..IDENTS.len())],
                IDENTS[rng.gen_range(0..IDENTS.len())]
            ),
            _ => format!(
                "{indent}{}({}, sizeof({}));",
                ["memcpy", "memset", "update", "push"][rng.gen_range(0..4)],
                IDENTS[rng.gen_range(0..IDENTS.len())],
                IDENTS[rng.gen_range(0..IDENTS.len())]
            ),
        };
        out.extend_from_slice(line.as_bytes());
        out.push(b'\n');
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn looks_like_code() {
        let mut rng = StdRng::seed_from_u64(21);
        let data = generate(&mut rng, 20_000);
        let text = String::from_utf8(data).unwrap();
        assert!(text.matches(';').count() > 100);
        assert!(text.contains("return"));
        assert!(text.lines().count() > 200);
    }

    #[test]
    fn braces_stay_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(22);
        let data = generate(&mut rng, 50_000);
        let text = String::from_utf8(data).unwrap();
        let open = text.matches('{').count() as i64;
        let close = text.matches('}').count() as i64;
        assert!(
            (open - close).abs() < open / 2,
            "opens {open} closes {close}"
        );
    }
}
