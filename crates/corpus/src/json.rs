//! JSON-like records with a shared key vocabulary — the shape of web API
//! payloads and of row-oriented Spark shuffle data. Key repetition gives
//! LZ77 long matches; values add controlled entropy.

use rand::rngs::StdRng;
use rand::Rng;

const NAMES: &[&str] = &[
    "alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi", "ivan", "judy",
];
const REGIONS: &[&str] = &["us-east", "us-west", "eu-central", "ap-south", "sa-east"];
const STATUSES: &[&str] = &["active", "inactive", "pending", "archived"];

pub(crate) fn generate(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + 256);
    out.extend_from_slice(b"[\n");
    let mut id: u64 = 1_000_000;
    while out.len() < len {
        id += rng.gen_range(1..10);
        let name = NAMES[rng.gen_range(0..NAMES.len())];
        let region = REGIONS[rng.gen_range(0..REGIONS.len())];
        let status = STATUSES[rng.gen_range(0..STATUSES.len())];
        let score: f64 = f64::from(rng.gen_range(0..10_000u32)) / 100.0;
        let items = rng.gen_range(0..5);
        let mut record = format!(
            "  {{\"id\": {id}, \"user\": {{\"name\": \"{name}\", \"region\": \"{region}\"}}, \
             \"status\": \"{status}\", \"score\": {score:.2}, \"items\": ["
        );
        for i in 0..items {
            if i > 0 {
                record.push_str(", ");
            }
            record.push_str(&format!(
                "{{\"sku\": \"SKU-{:04}\", \"qty\": {}}}",
                rng.gen_range(0..500u32),
                rng.gen_range(1..9u32)
            ));
        }
        record.push_str("]},\n");
        out.extend_from_slice(record.as_bytes());
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn records_contain_shared_keys() {
        let mut rng = StdRng::seed_from_u64(5);
        let data = generate(&mut rng, 20_000);
        let text = String::from_utf8(data).unwrap();
        let key_count = text.matches("\"status\"").count();
        assert!(key_count > 20, "only {key_count} records");
    }

    #[test]
    fn ids_are_increasing() {
        let mut rng = StdRng::seed_from_u64(6);
        let data = generate(&mut rng, 20_000);
        let text = String::from_utf8(data).unwrap();
        let ids: Vec<u64> = text
            .lines()
            .filter_map(|l| {
                let start = l.find("\"id\": ")? + 6;
                let end = l[start..].find(',')? + start;
                l[start..end].parse().ok()
            })
            .collect();
        assert!(ids.len() > 20);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }
}
