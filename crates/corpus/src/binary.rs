//! Executable-like binary: biased "opcode" bytes, short repeated
//! instruction motifs, embedded pointer tables and string fragments —
//! moderately compressible (≈1.5–2.5×), like Calgary `obj2` / Silesia
//! `mozilla` members.

use rand::rngs::StdRng;
use rand::Rng;

/// A small set of "instruction" motifs that recur, as real code does.
const MOTIFS: &[&[u8]] = &[
    &[0x55, 0x48, 0x89, 0xE5],             // prologue
    &[0x48, 0x83, 0xEC, 0x20],             // sub rsp
    &[0x48, 0x8B, 0x45, 0xF8],             // mov rax,[rbp-8]
    &[0xE8, 0x00, 0x00, 0x00, 0x00],       // call rel32 (zeros)
    &[0xC9, 0xC3],                         // leave; ret
    &[0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00], // nop padding
];

pub(crate) fn generate(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + 64);
    let mut base_ptr: u64 = 0x0000_7F3A_0000_0000;
    while out.len() < len {
        match rng.gen_range(0..10u32) {
            // 60%: code-like section — motifs plus biased random opcodes.
            0..=5 => {
                for _ in 0..rng.gen_range(8..64) {
                    if rng.gen_ratio(2, 5) {
                        let m = MOTIFS[rng.gen_range(0..MOTIFS.len())];
                        out.extend_from_slice(m);
                    } else {
                        // Opcode byte from a skewed distribution, plus a
                        // modrm-ish byte.
                        let op =
                            [0x48u8, 0x89, 0x8B, 0x0F, 0xE8, 0xFF, 0x83, 0xC7][rng.gen_range(0..8)];
                        out.push(op);
                        out.push(rng.gen());
                    }
                }
            }
            // 20%: pointer table — nearby 8-byte addresses.
            6..=7 => {
                for _ in 0..rng.gen_range(16..64) {
                    base_ptr += u64::from(rng.gen_range(8..256u32));
                    out.extend_from_slice(&base_ptr.to_le_bytes());
                }
            }
            // 10%: zero padding (section alignment).
            8 => {
                let pad = rng.gen_range(16..256);
                out.extend(std::iter::repeat_n(0u8, pad));
            }
            // 10%: string table fragment.
            _ => {
                for _ in 0..rng.gen_range(2..10) {
                    let words = [
                        "__libc_start",
                        "malloc",
                        "memcpy",
                        "deflate",
                        "inflate",
                        "gzip",
                    ];
                    out.extend_from_slice(words[rng.gen_range(0..words.len())].as_bytes());
                    out.push(0);
                }
            }
        }
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn contains_motifs_and_zeros() {
        let mut rng = StdRng::seed_from_u64(11);
        let data = generate(&mut rng, 50_000);
        let zeros = data.iter().filter(|&&b| b == 0).count();
        assert!(zeros > data.len() / 20, "too few zeros: {zeros}");
        // Prologue motif appears repeatedly.
        let hits = data
            .windows(4)
            .filter(|w| *w == [0x55, 0x48, 0x89, 0xE5])
            .count();
        assert!(hits > 10, "motif appears only {hits} times");
    }

    #[test]
    fn not_too_uniform() {
        let mut rng = StdRng::seed_from_u64(12);
        let data = generate(&mut rng, 1 << 16);
        let entropy = crate::byte_entropy(&data);
        assert!(entropy > 2.0 && entropy < 7.0, "entropy {entropy}");
    }
}
