#![warn(missing_docs)]

//! `nx-corpus` — deterministic synthetic corpora for the `nxsim`
//! experiments.
//!
//! The ISCA 2020 paper evaluates the POWER9/z15 compression accelerator on
//! standard corpora (Calgary/Canterbury/Silesia classes of data) and on
//! Apache Spark shuffle traffic — none of which can be shipped here. Each
//! generator in this crate produces a seeded, reproducible byte stream with
//! a *calibrated redundancy class* standing in for one of those inputs:
//!
//! | Kind | Stands in for | Character |
//! |---|---|---|
//! | [`CorpusKind::Text`] | book/prose members (e.g. Calgary `book1`) | order-2 Markov English-like text |
//! | [`CorpusKind::Logs`] | server logs / `kennedy.xls`-like records | timestamped repetitive lines |
//! | [`CorpusKind::Json`] | web/API payloads, Spark rows | nested records with shared keys |
//! | [`CorpusKind::Columnar`] | database/Parquet pages | delta-friendly integer columns |
//! | [`CorpusKind::Xmlish`] | markup members (`world192`-ish) | tag-heavy markup |
//! | [`CorpusKind::Binary`] | executables (`geo`, `obj2`) | opcode-like biased binary |
//! | [`CorpusKind::Code`] | source members (`progc`, `progl`) | keyword-dense code-like text |
//! | [`CorpusKind::Sensor`] | IoT/metric telemetry | drifting f32 channels with noise |
//! | [`CorpusKind::Random`] | encrypted/compressed payloads | incompressible uniform bytes |
//! | [`CorpusKind::Redundant`] | zero pages, repeated buffers | highly repetitive |
//!
//! All generators are pure functions of `(seed, len)`, so experiments are
//! exactly reproducible.
//!
//! ```
//! use nx_corpus::CorpusKind;
//!
//! let a = CorpusKind::Text.generate(42, 1024);
//! let b = CorpusKind::Text.generate(42, 1024);
//! assert_eq!(a, b);
//! assert_eq!(a.len(), 1024);
//! ```

mod binary;
mod code;
mod columnar;
mod json;
mod logs;
mod markov;
mod random;
mod redundant;
mod sensor;
mod xmlish;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The ten synthetic corpus classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum CorpusKind {
    /// Markov-chain English-like prose.
    Text,
    /// Timestamped, templated log lines.
    Logs,
    /// JSON-like records with a shared key vocabulary.
    Json,
    /// Little-endian integer columns with small deltas.
    Columnar,
    /// Tag-heavy XML-like markup.
    Xmlish,
    /// Biased binary resembling machine code and tables.
    Binary,
    /// Source-code-like text (keywords, identifiers, indentation).
    Code,
    /// Interleaved f32 telemetry channels with drift and noise.
    Sensor,
    /// Uniform random bytes (incompressible).
    Random,
    /// Highly repetitive buffer (long identical runs and pages).
    Redundant,
}

impl CorpusKind {
    /// All corpus kinds, in canonical experiment order.
    pub fn all() -> &'static [CorpusKind] {
        &[
            CorpusKind::Text,
            CorpusKind::Logs,
            CorpusKind::Json,
            CorpusKind::Columnar,
            CorpusKind::Xmlish,
            CorpusKind::Binary,
            CorpusKind::Code,
            CorpusKind::Sensor,
            CorpusKind::Random,
            CorpusKind::Redundant,
        ]
    }

    /// Stable lower-case name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            CorpusKind::Text => "text",
            CorpusKind::Logs => "logs",
            CorpusKind::Json => "json",
            CorpusKind::Columnar => "columnar",
            CorpusKind::Xmlish => "xmlish",
            CorpusKind::Binary => "binary",
            CorpusKind::Code => "code",
            CorpusKind::Sensor => "sensor",
            CorpusKind::Random => "random",
            CorpusKind::Redundant => "redundant",
        }
    }

    /// Generates exactly `len` bytes of this corpus class from `seed`.
    pub fn generate(self, seed: u64, len: usize) -> Vec<u8> {
        // Mix the kind into the seed so different kinds with the same seed
        // do not share RNG streams.
        let mixed = seed ^ (self as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(mixed);
        let mut out = match self {
            CorpusKind::Text => markov::generate(&mut rng, len),
            CorpusKind::Logs => logs::generate(&mut rng, len),
            CorpusKind::Json => json::generate(&mut rng, len),
            CorpusKind::Columnar => columnar::generate(&mut rng, len),
            CorpusKind::Xmlish => xmlish::generate(&mut rng, len),
            CorpusKind::Binary => binary::generate(&mut rng, len),
            CorpusKind::Code => code::generate(&mut rng, len),
            CorpusKind::Sensor => sensor::generate(&mut rng, len),
            CorpusKind::Random => random::generate(&mut rng, len),
            CorpusKind::Redundant => redundant::generate(&mut rng, len),
        };
        out.truncate(len);
        debug_assert_eq!(out.len(), len);
        out
    }
}

impl std::fmt::Display for CorpusKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `pad` honors width/alignment specifiers in format strings.
        f.pad(self.name())
    }
}

/// A generated corpus sample with its provenance.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Which generator produced the data.
    pub kind: CorpusKind,
    /// The seed used.
    pub seed: u64,
    /// The generated bytes.
    pub data: Vec<u8>,
}

/// Generates the standard corpus suite at `len` bytes each — the
/// input set used by the ratio and throughput experiments.
pub fn standard_suite(seed: u64, len: usize) -> Vec<Sample> {
    CorpusKind::all()
        .iter()
        .map(|&kind| Sample {
            kind,
            seed,
            data: kind.generate(seed, len),
        })
        .collect()
}

/// A "mixed" workload: concatenation of all classes in equal shares,
/// standing in for the diverse enterprise data stream the paper's headline
/// throughput numbers are quoted on.
pub fn mixed(seed: u64, total_len: usize) -> Vec<u8> {
    let kinds = CorpusKind::all();
    let share = total_len / kinds.len();
    let mut out = Vec::with_capacity(total_len);
    for &k in kinds {
        out.extend_from_slice(&k.generate(seed, share));
    }
    // Pad the remainder with text.
    if out.len() < total_len {
        out.extend_from_slice(&CorpusKind::Text.generate(seed ^ 1, total_len - out.len()));
    }
    out.truncate(total_len);
    out
}

/// Shannon entropy of the byte distribution, in bits/byte — a quick
/// compressibility signal used by calibration tests.
pub fn byte_entropy(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut counts = [0u64; 256];
    for &b in data {
        counts[usize::from(b)] += 1;
    }
    let n = data.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_generate_exact_length() {
        for &k in CorpusKind::all() {
            for len in [0usize, 1, 7, 1000, 65_536] {
                let d = k.generate(7, len);
                assert_eq!(d.len(), len, "{k} at {len}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        for &k in CorpusKind::all() {
            assert_eq!(k.generate(1, 4096), k.generate(1, 4096), "{k}");
            assert_ne!(k.generate(1, 4096), k.generate(2, 4096), "{k} ignores seed");
        }
    }

    #[test]
    fn kinds_differ_from_each_other() {
        let all: Vec<Vec<u8>> = CorpusKind::all()
            .iter()
            .map(|k| k.generate(3, 2048))
            .collect();
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(all[i], all[j], "kinds {i} and {j} identical");
            }
        }
    }

    #[test]
    fn entropy_ordering_is_sane() {
        let random = byte_entropy(&CorpusKind::Random.generate(5, 1 << 16));
        let text = byte_entropy(&CorpusKind::Text.generate(5, 1 << 16));
        let redundant = byte_entropy(&CorpusKind::Redundant.generate(5, 1 << 16));
        assert!(random > 7.9, "random entropy {random}");
        assert!(text < 6.0, "text entropy {text}");
        assert!(redundant < 5.0, "redundant entropy {redundant}");
    }

    #[test]
    fn compressibility_classes_hold() {
        use nx_deflate::{deflate, CompressionLevel};
        let lvl = CompressionLevel::new(6).unwrap();
        let ratio = |k: CorpusKind| {
            let d = k.generate(11, 1 << 16);
            d.len() as f64 / deflate(&d, lvl).len() as f64
        };
        let random = ratio(CorpusKind::Random);
        let text = ratio(CorpusKind::Text);
        let logs = ratio(CorpusKind::Logs);
        let redundant = ratio(CorpusKind::Redundant);
        assert!(random < 1.05, "random compressed {random}x");
        assert!(text > 1.5, "text only {text}x");
        assert!(logs > 3.0, "logs only {logs}x");
        assert!(redundant > 20.0, "redundant only {redundant}x");
    }

    #[test]
    fn standard_suite_covers_all_kinds() {
        let suite = standard_suite(9, 512);
        assert_eq!(suite.len(), CorpusKind::all().len());
        for s in &suite {
            assert_eq!(s.data.len(), 512);
        }
    }

    #[test]
    fn mixed_has_exact_length() {
        for len in [100usize, 4096, 100_000] {
            assert_eq!(mixed(3, len).len(), len);
        }
    }

    #[test]
    fn entropy_of_empty_is_zero() {
        assert_eq!(byte_entropy(&[]), 0.0);
    }
}
