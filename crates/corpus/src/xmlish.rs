//! Tag-heavy XML-like markup: deep element nesting with a small tag
//! vocabulary, resembling configuration dumps and document markup corpora.

use rand::rngs::StdRng;
use rand::Rng;

const TAGS: &[&str] = &[
    "record", "field", "meta", "entry", "value", "group", "item", "attr",
];
const WORDS: &[&str] = &[
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa",
];

pub(crate) fn generate(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + 256);
    out.extend_from_slice(b"<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<root>\n");
    let mut stack: Vec<&str> = Vec::new();
    while out.len() < len {
        let depth = stack.len();
        let open = depth < 5 && (depth == 0 || rng.gen_ratio(3, 5));
        if open {
            let tag = TAGS[rng.gen_range(0..TAGS.len())];
            let indent = "  ".repeat(depth + 1);
            if rng.gen_ratio(1, 2) {
                out.extend_from_slice(
                    format!(
                        "{indent}<{tag} id=\"{}\" class=\"{}\">\n",
                        rng.gen_range(0..10_000u32),
                        WORDS[rng.gen_range(0..WORDS.len())]
                    )
                    .as_bytes(),
                );
            } else {
                out.extend_from_slice(format!("{indent}<{tag}>\n").as_bytes());
            }
            stack.push(tag);
            // Leaf text content sometimes.
            if rng.gen_ratio(1, 2) {
                let indent = "  ".repeat(stack.len() + 1);
                let w1 = WORDS[rng.gen_range(0..WORDS.len())];
                let w2 = WORDS[rng.gen_range(0..WORDS.len())];
                out.extend_from_slice(
                    format!("{indent}{w1} {w2} {}\n", rng.gen_range(0..1000u32)).as_bytes(),
                );
            }
        } else if let Some(tag) = stack.pop() {
            let indent = "  ".repeat(stack.len() + 1);
            out.extend_from_slice(format!("{indent}</{tag}>\n").as_bytes());
        }
    }
    // Close anything left open so truncation is the only irregularity.
    while let Some(tag) = stack.pop() {
        out.extend_from_slice(format!("</{tag}>\n").as_bytes());
    }
    out.extend_from_slice(b"</root>\n");
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn produces_markup() {
        let mut rng = StdRng::seed_from_u64(9);
        let data = generate(&mut rng, 10_000);
        let text = String::from_utf8(data).unwrap();
        assert!(text.starts_with("<?xml"));
        assert!(text.matches('<').count() > 100);
    }

    #[test]
    fn open_and_close_tags_roughly_balance() {
        let mut rng = StdRng::seed_from_u64(10);
        let data = generate(&mut rng, 50_000);
        let text = String::from_utf8(data).unwrap();
        let opens = text.matches("<record").count();
        let closes = text.matches("</record").count();
        // Truncation can lose a few closers, not more.
        assert!(
            opens >= closes && opens - closes < 8,
            "opens {opens} closes {closes}"
        );
    }
}
