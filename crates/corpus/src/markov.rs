//! English-like prose from a small order-2 word-level Markov chain.
//!
//! The vocabulary and transition structure are fixed; the RNG only selects
//! among the allowed successors, producing text whose letter frequencies,
//! word repetition and phrase reuse resemble natural-language corpus
//! members (compression ratio ~2–3× at zlib level 6).

use rand::rngs::StdRng;
use rand::Rng;

const VOCAB: &[&str] = &[
    "the",
    "of",
    "and",
    "a",
    "to",
    "in",
    "is",
    "was",
    "he",
    "for",
    "it",
    "with",
    "as",
    "his",
    "on",
    "be",
    "at",
    "by",
    "had",
    "not",
    "are",
    "but",
    "from",
    "or",
    "have",
    "an",
    "they",
    "which",
    "one",
    "you",
    "were",
    "her",
    "all",
    "she",
    "there",
    "would",
    "their",
    "we",
    "him",
    "been",
    "has",
    "when",
    "who",
    "will",
    "more",
    "no",
    "if",
    "out",
    "so",
    "said",
    "what",
    "up",
    "its",
    "about",
    "into",
    "than",
    "them",
    "can",
    "only",
    "other",
    "new",
    "some",
    "could",
    "time",
    "these",
    "two",
    "may",
    "then",
    "do",
    "first",
    "any",
    "my",
    "now",
    "such",
    "like",
    "our",
    "over",
    "man",
    "me",
    "even",
    "most",
    "made",
    "after",
    "also",
    "did",
    "many",
    "before",
    "must",
    "through",
    "years",
    "where",
    "much",
    "your",
    "way",
    "well",
    "down",
    "should",
    "because",
    "each",
    "just",
    "those",
    "people",
    "mr",
    "how",
    "too",
    "little",
    "state",
    "good",
    "very",
    "make",
    "world",
    "still",
    "own",
    "see",
    "men",
    "work",
    "long",
    "get",
    "here",
    "between",
    "both",
    "life",
    "being",
    "under",
    "never",
    "day",
    "same",
    "another",
    "know",
    "while",
    "last",
    "might",
    "us",
    "great",
    "old",
    "year",
    "off",
    "come",
    "since",
    "against",
    "go",
    "came",
    "right",
    "used",
    "take",
    "three",
    "system",
    "processor",
    "memory",
    "data",
    "compression",
    "accelerator",
    "throughput",
    "latency",
    "hardware",
    "software",
];

/// Sentence length distribution parameters.
const MIN_SENTENCE: usize = 4;
const MAX_SENTENCE: usize = 18;

pub(crate) fn generate(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + 64);
    let mut prev: usize = rng.gen_range(0..VOCAB.len());
    let mut prev2: usize = rng.gen_range(0..VOCAB.len());
    while out.len() < len {
        let sentence_len = rng.gen_range(MIN_SENTENCE..=MAX_SENTENCE);
        for w in 0..sentence_len {
            // Order-2-flavored transition: hash the two previous word ids
            // into a bucket of 8 allowed successors; the chain therefore
            // revisits the same word pairs, creating LZ-matchable phrases.
            let bucket = (prev.wrapping_mul(31) ^ prev2.wrapping_mul(131)) % VOCAB.len();
            let next = (bucket + rng.gen_range(0..8) * 17) % VOCAB.len();
            let word = VOCAB[next];
            if w == 0 {
                // Capitalize the first letter.
                let mut chars = word.as_bytes().to_vec();
                chars[0] = chars[0].to_ascii_uppercase();
                out.extend_from_slice(&chars);
            } else {
                out.extend_from_slice(word.as_bytes());
            }
            prev2 = prev;
            prev = next;
            if w + 1 < sentence_len {
                out.push(b' ');
            }
        }
        out.extend_from_slice(b". ");
        // Paragraph breaks.
        if rng.gen_ratio(1, 12) {
            out.extend_from_slice(b"\n\n");
        }
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn output_is_printable_ascii() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = generate(&mut rng, 10_000);
        assert!(data
            .iter()
            .all(|&b| b == b'\n' || (0x20..0x7F).contains(&b)));
    }

    #[test]
    fn contains_words_and_sentences() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = generate(&mut rng, 10_000);
        let text = String::from_utf8(data).unwrap();
        assert!(text.contains(". "));
        assert!(text.split_whitespace().count() > 500);
    }
}
