//! E16 — Chunked-stream throughput vs chunk size.
//!
//! Streams larger than one request run as CRB *sequences* with the
//! previous 32 KB re-streamed as history (DESIGN.md, "Chunked streams").
//! Small chunks therefore pay the per-CRB overhead *and* the history
//! reload over and over — the integration-level cousin of E1's
//! request-size ramp, and the reason the NX library batches aggressively.
//! Ratio also moves: chunk boundaries cost nothing once the history DDE
//! carries the window, but each chunk still closes its own DEFLATE block.

use crate::{fmt_bytes, Table, SEED};
use nx_accel::pipeline::AccelStream;
use nx_accel::AccelConfig;

/// One-line experiment title shown by `tables list`.
pub const TITLE: &str = "Chunked-stream (CRB sequence) throughput vs chunk size";

/// Total stream length.
pub const TOTAL: usize = 8 << 20;

/// Chunk sizes swept.
pub const CHUNKS: [usize; 6] = [4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, TOTAL];

/// Runs one sweep point; returns (cycles, output bytes).
fn run_chunked(data: &[u8], chunk: usize) -> (u64, usize) {
    let mut s = AccelStream::new(AccelConfig::power9());
    let mut out = 0usize;
    let chunks: Vec<&[u8]> = data.chunks(chunk).collect();
    for (i, c) in chunks.iter().enumerate() {
        let (bytes, _) = s.write(c, i + 1 == chunks.len());
        out += bytes.len();
    }
    (s.total_cycles(), out)
}

/// Runs the experiment and renders its report.
pub fn run() -> String {
    let data = nx_corpus::mixed(SEED, TOTAL);
    let mut table = Table::new(vec!["chunk size", "CRBs", "GB/s", "vs one-shot", "ratio"]);
    let (oneshot_cycles, _) = run_chunked(&data, TOTAL);
    for &chunk in &CHUNKS {
        let (cycles, out) = run_chunked(&data, chunk);
        let gbps = data.len() as f64 / cycles as f64 * 2.0; // 2 GHz
        table.row(vec![
            fmt_bytes(chunk as u64),
            data.len().div_ceil(chunk).to_string(),
            format!("{gbps:.2}"),
            format!("{:.2}x", oneshot_cycles as f64 / cycles as f64),
            format!("{:.3}", data.len() as f64 / out as f64),
        ]);
    }
    format!(
        "## E16 — {TITLE}\n\n8 MiB mixed stream through POWER9 chunked CRB sessions \
         (history carried across chunks). Small chunks re-pay request overhead and \
         history reload per CRB.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_chunks_cost_throughput() {
        let data = nx_corpus::mixed(SEED, 1 << 20);
        let (small_cycles, _) = run_chunked(&data, 8 << 10);
        let (large_cycles, _) = run_chunked(&data, 1 << 20);
        assert!(
            small_cycles as f64 > 1.5 * large_cycles as f64,
            "8 KiB chunks: {small_cycles} vs one-shot {large_cycles}"
        );
    }

    #[test]
    fn every_sweep_point_is_lossless() {
        let data = nx_corpus::mixed(SEED, 256 << 10);
        for &chunk in &[4 << 10, 64 << 10] {
            let mut s = AccelStream::new(AccelConfig::power9());
            let mut out = Vec::new();
            let chunks: Vec<&[u8]> = data.chunks(chunk).collect();
            for (i, c) in chunks.iter().enumerate() {
                out.extend(s.write(c, i + 1 == chunks.len()).0);
            }
            assert_eq!(nx_deflate::inflate(&out).unwrap(), data, "chunk {chunk}");
        }
    }
}
