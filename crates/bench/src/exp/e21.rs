//! E21 — Deflate compress-side overhaul: level ladder, hash4 matcher,
//! block cost model.
//!
//! PR 5 rebuilt the software encoder's hot path around a libdeflate-style
//! flat-array hash4 matcher (head + u16-delta prev chains, u64-XOR match
//! extension, insert-skip over incompressible runs), an explicit
//! [`Level`] ladder (`Fastest..Best`), and per-block stored/static/dynamic
//! selection by computed bit cost with fused (code|len) emission tables.
//! The paper's compressor sustains 8 bytes/cycle — this experiment prices
//! how far the re-tuned *software baseline* moved toward that bar:
//!
//! * **Part A** times `deflate` on the mixed corpus at every ladder rung.
//!   Acceptance: `Default` ≥ 2× and `Fastest` ≥ 4× the 27.586 MB/s PR 4
//!   baseline (BENCH_KERNELS.json summary, same container class).
//! * **Part B** sweeps every corpus class × every rung, recording ratio
//!   and MB/s; every output must decode byte-identically through our
//!   inflate *and* through the system `gzip -dc` (skipped gracefully when
//!   the binary is missing).
//! * **Part C** checks the ladder is a ladder: on every corpus the
//!   compressed size at each rung is ≤ 1.02× the next-faster rung's (the
//!   2% slack covers heuristic crossover on nearly-incompressible data).
//!
//! `run()` writes `BENCH_DEFLATE.json`; `scripts/ci.sh` gates on the
//! summary row's `deflate_default_mb_per_s` against the committed
//! baseline.

use super::MetricRow;
use crate::{Table, SEED};
use nx_corpus::CorpusKind;
use nx_deflate::{crc32::crc32, deflate, gzip, inflate, Level};
use std::sync::OnceLock;
use std::time::Instant;

/// One-line experiment title shown by `tables list`.
pub const TITLE: &str = "Deflate ladder: hash4 matcher, block cost model, per-level throughput";

/// Where the machine-readable rows land (workspace root under
/// `cargo run`). The CI gate parses the summary row of this file.
pub const JSON_PATH: &str = "BENCH_DEFLATE.json";

/// Bytes generated per corpus class.
const PER_KIND: usize = 1 << 20;

/// Mixed-corpus length for the headline Part A measurement.
const MIXED_LEN: usize = 4 << 20;

/// Timed passes per (corpus, level); the minimum is reported.
const PASSES: usize = 3;

/// Mixed-corpus deflate throughput at level 6 before this PR
/// (BENCH_KERNELS.json summary, `deflate_mb_per_s`).
const PR4_BASELINE_MB_PER_S: f64 = 27.586;

/// Acceptance bars over the PR 4 baseline.
const BAR_DEFAULT: f64 = 2.0;
const BAR_FASTEST: f64 = 4.0;

/// One (corpus, rung) measurement.
struct Cell {
    corpus: &'static str,
    level: &'static str,
    ratio: f64,
    mb_per_s: f64,
    /// Our decoder returned the original bytes.
    identical: bool,
    /// `gzip -dc` returned the original bytes (`None` = binary missing).
    gzip_ok: Option<bool>,
}

struct Measured {
    cells: Vec<Cell>,
    /// Part A: mixed-corpus MB/s per ladder rung, `Level::all()` order.
    mixed_mb_per_s: [f64; 5],
    all_identical: bool,
    /// `Some(true)` iff every gzip(1) check ran and passed.
    gzip_verified: Option<bool>,
    /// Part C: compressed size never grows by more than 2% when stepping
    /// to a slower rung, on every corpus.
    ladder_monotone: bool,
}

/// Wall-clock seconds of one call to `f`.
fn timed<F: FnMut()>(mut f: F) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

/// Decompresses a gzip member through the system `gzip -dc`, the
/// interoperability oracle the paper's library had to satisfy. `None`
/// when the binary is unavailable.
pub fn gzip_dc(gz: &[u8]) -> Option<Vec<u8>> {
    use std::io::Write;
    use std::process::{Command, Stdio};
    let mut child = Command::new("gzip")
        .arg("-dc")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .ok()?;
    let mut stdin = child.stdin.take()?;
    let payload = gz.to_vec();
    // Feed stdin from a helper thread: gzip streams output while reading
    // input, so a single-threaded write-then-read can deadlock on full
    // pipes once payloads outgrow the pipe buffer.
    let writer = std::thread::spawn(move || {
        let _ = stdin.write_all(&payload);
    });
    let out = child.wait_with_output().ok()?;
    let _ = writer.join();
    out.status.success().then_some(out.stdout)
}

/// Runs the sweep once per process; `run()` and [`metrics`] share it.
fn measured() -> &'static Measured {
    static CELL: OnceLock<Measured> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut cells = Vec::new();
        let mut all_identical = true;
        let mut gzip_verified: Option<bool> = None;
        let mut ladder_monotone = true;

        for &kind in CorpusKind::all() {
            let data = kind.generate(SEED, PER_KIND);
            let mut prev_size: Option<usize> = None;
            for rung in Level::all() {
                let level = rung.compression_level();
                let comp = deflate(&data, level);

                let mut t = f64::INFINITY;
                for _ in 0..PASSES {
                    t = t.min(timed(|| {
                        std::hint::black_box(deflate(&data, level).len());
                    }));
                }

                let identical = inflate(&comp).expect("valid stream") == data;
                all_identical &= identical;

                let gz = gzip::wrap_deflate(&comp, crc32(&data), data.len() as u64);
                let gzip_ok = gzip_dc(&gz).map(|back| back == data);
                if let Some(ok) = gzip_ok {
                    // AND over every check that ran; stays None if the
                    // binary is missing throughout.
                    gzip_verified = Some(gzip_verified.unwrap_or(true) && ok);
                }

                if let Some(prev) = prev_size {
                    // Stepping to a slower rung may not cost more than 2%.
                    ladder_monotone &= comp.len() as f64 <= prev as f64 * 1.02;
                }
                prev_size = Some(comp.len());

                cells.push(Cell {
                    corpus: kind.name(),
                    level: rung.name(),
                    ratio: data.len() as f64 / comp.len() as f64,
                    mb_per_s: data.len() as f64 / t / 1e6,
                    identical,
                    gzip_ok,
                });
            }
        }

        let mixed = nx_corpus::mixed(SEED, MIXED_LEN);
        let mut mixed_mb_per_s = [0.0f64; 5];
        for (slot, rung) in mixed_mb_per_s.iter_mut().zip(Level::all()) {
            let level = rung.compression_level();
            let comp = deflate(&mixed, level);
            all_identical &= inflate(&comp).expect("valid stream") == mixed;
            let mut t = f64::INFINITY;
            for _ in 0..PASSES {
                t = t.min(timed(|| {
                    std::hint::black_box(deflate(&mixed, level).len());
                }));
            }
            *slot = mixed.len() as f64 / t / 1e6;
        }

        Measured {
            cells,
            mixed_mb_per_s,
            all_identical,
            gzip_verified,
            ladder_monotone,
        }
    })
}

/// Mixed-corpus throughput for one rung.
fn mixed_for(m: &Measured, rung: Level) -> f64 {
    m.mixed_mb_per_s[rung.index()]
}

/// Renders the machine-readable rows ([`JSON_PATH`]).
fn render_json(m: &Measured) -> String {
    let mut rows: Vec<String> = m
        .cells
        .iter()
        .map(|c| {
            format!(
                "  {{\"section\": \"corpus\", \"corpus\": \"{}\", \"level\": \"{}\", \
                 \"ratio\": {:.4}, \"deflate_mb_per_s\": {:.3}, \"identical\": {}, \
                 \"gzip_ok\": {}}}",
                c.corpus,
                c.level,
                c.ratio,
                c.mb_per_s,
                c.identical,
                c.gzip_ok.map_or("null".into(), |b| b.to_string()),
            )
        })
        .collect();
    for rung in Level::all() {
        rows.push(format!(
            "  {{\"section\": \"mixed\", \"level\": \"{}\", \"deflate_mb_per_s\": {:.3}}}",
            rung.name(),
            mixed_for(m, rung),
        ));
    }
    rows.push(format!(
        "  {{\"section\": \"summary\", \"deflate_default_mb_per_s\": {:.3}, \
         \"deflate_fastest_mb_per_s\": {:.3}, \
         \"pr4_baseline_mb_per_s\": {PR4_BASELINE_MB_PER_S}, \
         \"speedup_default\": {:.3}, \"speedup_fastest\": {:.3}, \
         \"bar_default\": {BAR_DEFAULT}, \"bar_fastest\": {BAR_FASTEST}, \
         \"ladder_monotone\": {}, \"all_identical\": {}, \"gzip_verified\": {}}}",
        mixed_for(m, Level::Default),
        mixed_for(m, Level::Fastest),
        mixed_for(m, Level::Default) / PR4_BASELINE_MB_PER_S,
        mixed_for(m, Level::Fastest) / PR4_BASELINE_MB_PER_S,
        m.ladder_monotone,
        m.all_identical,
        m.gzip_verified.map_or("null".into(), |b| b.to_string()),
    ));
    format!("[\n{}\n]\n", rows.join(",\n"))
}

/// Machine-readable rows for `tables --json`.
pub fn metrics() -> Vec<MetricRow> {
    let m = measured();
    vec![
        MetricRow::new(
            "deflate_default_mb_per_s",
            mixed_for(m, Level::Default),
            "MB/s",
        ),
        MetricRow::new(
            "deflate_fastest_mb_per_s",
            mixed_for(m, Level::Fastest),
            "MB/s",
        ),
        MetricRow::new("deflate_best_mb_per_s", mixed_for(m, Level::Best), "MB/s"),
        MetricRow::new(
            "speedup_default",
            mixed_for(m, Level::Default) / PR4_BASELINE_MB_PER_S,
            "ratio",
        ),
        MetricRow::new(
            "speedup_fastest",
            mixed_for(m, Level::Fastest) / PR4_BASELINE_MB_PER_S,
            "ratio",
        ),
        MetricRow::new(
            "outputs_identical",
            f64::from(u8::from(m.all_identical)),
            "bool",
        ),
        MetricRow::new(
            "gzip_verified",
            f64::from(u8::from(m.gzip_verified == Some(true))),
            "bool",
        ),
        MetricRow::new(
            "ladder_monotone",
            f64::from(u8::from(m.ladder_monotone)),
            "bool",
        ),
    ]
}

/// Runs the experiment, writes [`JSON_PATH`], renders the report.
pub fn run() -> String {
    let m = measured();

    let mut table = Table::new(vec!["corpus", "level", "ratio", "deflate MB/s", "verified"]);
    for c in &m.cells {
        table.row(vec![
            c.corpus.to_string(),
            c.level.to_string(),
            format!("{:.3}", c.ratio),
            format!("{:.1}", c.mb_per_s),
            match (c.identical, c.gzip_ok) {
                (true, Some(true)) => "ours+gzip".to_string(),
                (true, None) => "ours".to_string(),
                _ => "FAIL".to_string(),
            },
        ]);
    }

    let mut mixed_table = Table::new(vec!["level", "mixed MB/s", "vs PR4"]);
    for rung in Level::all() {
        mixed_table.row(vec![
            rung.name().to_string(),
            format!("{:.1}", mixed_for(m, rung)),
            format!("{:.2}x", mixed_for(m, rung) / PR4_BASELINE_MB_PER_S),
        ]);
    }

    let json = render_json(m);
    let json_note = match std::fs::write(JSON_PATH, &json) {
        Ok(()) => format!("rows written to `{JSON_PATH}`"),
        Err(err) => format!("could not write `{JSON_PATH}`: {err}"),
    };

    format!(
        "## E21 — {TITLE}\n\nHeadline: {} MiB mixed corpus compresses at {:.1} MB/s on \
         `Level::Default` ({:.2}x the {PR4_BASELINE_MB_PER_S} MB/s PR 4 baseline, bar \
         ≥ {BAR_DEFAULT}x) and {:.1} MB/s on `Level::Fastest` ({:.2}x, bar ≥ {BAR_FASTEST}x). \
         The paper's pipeline sustains 8 B/cycle (~16 GB/s at 2 GHz); the software ladder \
         prices how much of that gap fixed-function hardware closes.\n\n{}\n\
         Corpus sweep ({} classes × {} MiB × {} rungs, best-of-{PASSES}); `verified` means \
         the output decoded byte-identically through our inflate and the system `gzip -dc`:\n\n{}\n\
         All outputs identical: {}; gzip(1) verification: {}; ladder monotone (≤ 2% size \
         growth per slower rung): {}.\n\n{json_note}\n",
        MIXED_LEN >> 20,
        mixed_for(m, Level::Default),
        mixed_for(m, Level::Default) / PR4_BASELINE_MB_PER_S,
        mixed_for(m, Level::Fastest),
        mixed_for(m, Level::Fastest) / PR4_BASELINE_MB_PER_S,
        mixed_table.render(),
        CorpusKind::all().len(),
        PER_KIND >> 20,
        Level::all().len(),
        table.render(),
        m.all_identical,
        m.gzip_verified
            .map_or("skipped (no gzip binary)".to_string(), |b| b.to_string()),
        m.ladder_monotone,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rung_roundtrips_every_corpus() {
        for &kind in CorpusKind::all() {
            let data = kind.generate(SEED, 64 << 10);
            for rung in Level::all() {
                let comp = deflate(&data, rung.compression_level());
                assert_eq!(
                    inflate(&comp).expect("valid stream"),
                    data,
                    "roundtrip mismatch on {} at {}",
                    kind.name(),
                    rung.name()
                );
            }
        }
    }

    #[test]
    fn gzip_shim_roundtrips_when_available() {
        let data = nx_corpus::mixed(SEED, 128 << 10);
        let comp = deflate(&data, Level::Fastest.compression_level());
        let gz = gzip::wrap_deflate(&comp, crc32(&data), data.len() as u64);
        match gzip_dc(&gz) {
            Some(back) => assert_eq!(back, data, "gzip -dc disagreed with our encoder"),
            None => eprintln!("gzip binary unavailable; shim check skipped"),
        }
    }

    #[test]
    fn bench_json_is_well_formed() {
        let m = Measured {
            cells: vec![Cell {
                corpus: "text",
                level: "fastest",
                ratio: 2.5,
                mb_per_s: 120.0,
                identical: true,
                gzip_ok: Some(true),
            }],
            mixed_mb_per_s: [120.0, 80.0, 58.0, 17.0, 13.0],
            all_identical: true,
            gzip_verified: Some(true),
            ladder_monotone: true,
        };
        let json = render_json(&m);
        assert!(json.starts_with("[\n") && json.ends_with("]\n"));
        assert_eq!(json.matches("{\"section\"").count(), 7);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"deflate_default_mb_per_s\": 58.000"));
        assert!(json.contains("\"speedup_fastest\": 4.350"));
        assert!(json.contains("\"all_identical\": true"));
        assert!(json.contains("\"gzip_verified\": true"));
    }
}
