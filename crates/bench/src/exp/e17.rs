//! E17 — Sharded parallel compression engine scaling.
//!
//! Measures the `nx_core::parallel` pigz-style engine (shards primed
//! with the previous shard's trailing 32 KB, sync-flush boundaries,
//! CRC folded with `crc32_combine`) against the single-threaded
//! `nx_core::software::compress` baseline on a 16 MiB mixed corpus,
//! at 1/2/4/8 workers. This is the software analogue of handing one
//! stream to multiple accelerator engines: the shard seams cost a few
//! tenths of a percent of ratio, the dictionary hand-off keeps
//! cross-shard matches, and the coordinator never touches the payload.
//!
//! Speedup tracks the *host's* core count: on a single-core container
//! the workers time-slice and speedup stays ≈ 1×, so the report prints
//! the detected parallelism next to the numbers.

use super::MetricRow;
use crate::{Table, SEED};
use nx_core::parallel::{ParallelEngine, ParallelOptions};
use nx_core::Format;
use nx_deflate::CompressionLevel;
use std::sync::OnceLock;
use std::time::Instant;

/// One-line experiment title shown by `tables list`.
pub const TITLE: &str = "Parallel sharded compression engine scaling vs serial";

/// Corpus size (matches `benches/parallel.rs`).
const TOTAL: usize = 16 << 20;

/// Worker counts swept.
const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// One measured sweep point.
struct Point {
    workers: usize,
    secs: f64,
    bytes_out: usize,
}

struct Measured {
    serial_secs: f64,
    serial_bytes: usize,
    points: Vec<Point>,
}

/// Best-of-`n` wall-clock seconds for `f`.
fn best_of<F: FnMut() -> usize>(n: usize, mut f: F) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut bytes = 0;
    for _ in 0..n {
        let t0 = Instant::now();
        bytes = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, bytes)
}

/// Runs the sweep once per process; `run()` and [`metrics`] share it.
fn measured() -> &'static Measured {
    static CELL: OnceLock<Measured> = OnceLock::new();
    CELL.get_or_init(|| {
        let data = nx_corpus::mixed(SEED, TOTAL);
        let level = CompressionLevel::new(6).expect("level 6");
        let (serial_secs, serial_bytes) = best_of(2, || {
            nx_core::software::compress(&data, level, Format::Gzip).len()
        });
        let points = WORKERS
            .iter()
            .map(|&workers| {
                let engine = ParallelEngine::new(ParallelOptions {
                    workers,
                    ..ParallelOptions::default()
                });
                let (secs, bytes_out) = best_of(2, || {
                    engine.compress(&data, 6, Format::Gzip).expect("pool").len()
                });
                Point {
                    workers,
                    secs,
                    bytes_out,
                }
            })
            .collect();
        Measured {
            serial_secs,
            serial_bytes,
            points,
        }
    })
}

/// Machine-readable rows for `tables --json`.
pub fn metrics() -> Vec<MetricRow> {
    let m = measured();
    let mut rows = vec![
        MetricRow::new(
            "serial_mb_per_s",
            TOTAL as f64 / m.serial_secs / 1e6,
            "MB/s",
        ),
        MetricRow::new("serial_bytes_out", m.serial_bytes as f64, "bytes"),
    ];
    for p in &m.points {
        let (mbps, speedup): (&'static str, &'static str) = match p.workers {
            1 => ("sharded_w1_mb_per_s", "sharded_w1_speedup"),
            2 => ("sharded_w2_mb_per_s", "sharded_w2_speedup"),
            4 => ("sharded_w4_mb_per_s", "sharded_w4_speedup"),
            _ => ("sharded_w8_mb_per_s", "sharded_w8_speedup"),
        };
        rows.push(MetricRow::new(mbps, TOTAL as f64 / p.secs / 1e6, "MB/s"));
        rows.push(MetricRow::new(speedup, m.serial_secs / p.secs, "ratio"));
    }
    rows.push(MetricRow::new(
        "host_parallelism",
        host_parallelism() as f64,
        "count",
    ));
    rows
}

fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs the experiment and renders its report.
pub fn run() -> String {
    let m = measured();
    let mut table = Table::new(vec!["config", "MB/s", "speedup", "ratio", "size vs serial"]);
    table.row(vec![
        "serial".to_string(),
        format!("{:.1}", TOTAL as f64 / m.serial_secs / 1e6),
        "1.00x".to_string(),
        format!("{:.3}", TOTAL as f64 / m.serial_bytes as f64),
        "+0.00%".to_string(),
    ]);
    for p in &m.points {
        table.row(vec![
            format!("sharded x{}", p.workers),
            format!("{:.1}", TOTAL as f64 / p.secs / 1e6),
            format!("{:.2}x", m.serial_secs / p.secs),
            format!("{:.3}", TOTAL as f64 / p.bytes_out as f64),
            format!(
                "{:+.2}%",
                (p.bytes_out as f64 / m.serial_bytes as f64 - 1.0) * 100.0
            ),
        ]);
    }
    format!(
        "## E17 — {TITLE}\n\n16 MiB mixed corpus, gzip level 6, 128 KiB shards with 32 KB \
         dictionary hand-off; host parallelism = {} core(s). Speedup is bounded by the \
         host's cores — on a single-core host the workers time-slice and the sweep \
         measures sharding overhead instead.\n\n{}",
        host_parallelism(),
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_output_stays_close_to_serial_ratio() {
        // Size-only check (fast): sharding at 128 KiB costs well under 1%
        // of compressed size thanks to the dictionary hand-off.
        let data = nx_corpus::mixed(SEED, 2 << 20);
        let level = CompressionLevel::new(6).unwrap();
        let serial = nx_core::software::compress(&data, level, Format::Gzip).len();
        let engine = ParallelEngine::new(ParallelOptions::default());
        let sharded = engine.compress(&data, 6, Format::Gzip).unwrap().len();
        let growth = sharded as f64 / serial as f64 - 1.0;
        assert!(
            growth < 0.01,
            "sharding grew output by {:.3}%",
            growth * 100.0
        );
    }

    #[test]
    fn metric_names_are_unique() {
        // The JSON emitter keys rows by (experiment, metric); a duplicate
        // would silently shadow a measurement.
        let all = [
            "serial_mb_per_s",
            "serial_bytes_out",
            "sharded_w1_mb_per_s",
            "sharded_w1_speedup",
            "sharded_w2_mb_per_s",
            "sharded_w2_speedup",
            "sharded_w4_mb_per_s",
            "sharded_w4_speedup",
            "sharded_w8_mb_per_s",
            "sharded_w8_speedup",
            "host_parallelism",
        ];
        let mut sorted = all.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len());
    }
}
