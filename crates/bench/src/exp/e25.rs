//! E25 — Speculative batch matcher: the software NX 8-positions-per-cycle
//! pipeline vs. the sequential ladder.
//!
//! PR 9 added `lz77::batch` + `lz77::cover`: hash 8 consecutive positions
//! per step with two wide u64 loads, probe the hash4 head/prev tables for
//! all 8 lanes before any extension, extend every candidate with the
//! u64-XOR comparator, then resolve a non-overlapping match cover over
//! the window (longest-first, earliest-anchor tie-breaks) — the software
//! emulation of the hardware matcher the paper's compressor builds in
//! silicon. `Engine::Auto` routes levels 1–3 through it; this experiment
//! prices the move:
//!
//! * **Part A** times the mixed corpus at `Level::Fastest` and
//!   `Level::Fast` under the speculative engine vs. the same rungs forced
//!   to `Engine::Sequential` (the pre-batch greedy ladder) on the same
//!   host, in the same process — a self-calibrating frontier comparison.
//!   Acceptance: speculative `Fastest` is *faster* than sequential
//!   `Fastest` at a ratio no worse.
//! * **Part B** sweeps every corpus class: speculative vs. sequential
//!   ratio and MB/s at `Fastest`, plus the speculative-vs-lazy
//!   (`Level::Default`) ratio gap — the paper reports its speculative
//!   hardware matcher costs ~10% ratio against zlib's sequential lazy
//!   parse for ~10× the throughput. Every speculative output must decode
//!   byte-identically through our inflate *and* `gzip -dc`.
//! * **Part C** cross-validates parse quality against the `nx-accel`
//!   hardware-model matcher ([`nx_accel::MatchEngine`]): software
//!   speculative, hardware speculative (N=8 banked CAM model) and
//!   hardware greedy parses of the same inputs in one table (match share,
//!   mean match length), with every hardware token stream expanded and
//!   checked lossless.
//!
//! `run()` writes `BENCH_SPECULATIVE.json`; `scripts/ci.sh` gates on the
//! summary row's `speculative_mb_per_s` against the committed baseline.

use super::e21::gzip_dc;
use super::MetricRow;
use crate::{Table, SEED};
use nx_accel::matcher::MatchEngine;
use nx_accel::{AccelConfig, Resolution};
use nx_corpus::CorpusKind;
use nx_deflate::lz77::{expand_tokens, Token, Tokenizer};
use nx_deflate::{crc32::crc32, gzip, inflate, Encoder, Engine, Level};
use std::sync::OnceLock;
use std::time::Instant;

/// One-line experiment title shown by `tables list`.
pub const TITLE: &str =
    "Speculative batch matcher: 8-position windows vs the sequential ladder, NX-model parity";

/// Where the machine-readable rows land. The CI gate parses the summary
/// row of this file.
pub const JSON_PATH: &str = "BENCH_SPECULATIVE.json";

/// Bytes generated per corpus class.
const PER_KIND: usize = 1 << 20;

/// Mixed-corpus length for the headline Part A measurement.
const MIXED_LEN: usize = 4 << 20;

/// Timed passes per (corpus, engine); the minimum is reported.
const PASSES: usize = 3;

/// The paper's reported ratio cost of the hardware's speculative parse
/// against zlib's sequential lazy matching, in percent.
const PAPER_GAP_PCT: f64 = 10.0;

/// Input size for the Part C hardware-model cross-validation (the cycle
/// model walks byte-at-a-time; keep it modest).
const XVAL_LEN: usize = 256 << 10;

/// One corpus-class comparison at `Level::Fastest`.
struct Cell {
    corpus: &'static str,
    spec_ratio: f64,
    spec_mb_per_s: f64,
    seq_ratio: f64,
    seq_mb_per_s: f64,
    /// Speculative ratio deficit vs. the sequential lazy `Default` rung,
    /// in percent (negative = speculative compresses better).
    lazy_gap_pct: f64,
    /// Our decoder returned the original bytes (speculative output).
    identical: bool,
    /// `gzip -dc` returned the original bytes (`None` = binary missing).
    gzip_ok: Option<bool>,
}

/// Aggregate parse shape of one token stream.
struct ParseShape {
    matches: u64,
    literals: u64,
    matched_bytes: u64,
}

impl ParseShape {
    fn of(tokens: &[Token]) -> Self {
        let mut s = Self {
            matches: 0,
            literals: 0,
            matched_bytes: 0,
        };
        for t in tokens {
            match t {
                Token::Literal(_) => s.literals += 1,
                Token::Match { len, .. } => {
                    s.matches += 1;
                    s.matched_bytes += u64::from(*len);
                }
            }
        }
        s
    }

    fn match_share_pct(&self, input_len: usize) -> f64 {
        self.matched_bytes as f64 * 100.0 / input_len as f64
    }

    fn mean_match_len(&self) -> f64 {
        if self.matches == 0 {
            0.0
        } else {
            self.matched_bytes as f64 / self.matches as f64
        }
    }
}

/// One Part C row: the same input parsed three ways.
struct XvalRow {
    corpus: &'static str,
    sw_share: f64,
    sw_mean_len: f64,
    hw_spec_share: f64,
    hw_spec_mean_len: f64,
    hw_greedy_share: f64,
    hw_greedy_mean_len: f64,
    /// Both hardware-model token streams expanded back to the input.
    hw_lossless: bool,
}

struct Measured {
    cells: Vec<Cell>,
    xval: Vec<XvalRow>,
    /// Part A mixed corpus: (spec, seq) MB/s at Fastest and Fast.
    mixed_fastest: (f64, f64),
    mixed_fast: (f64, f64),
    /// Part A mixed corpus: (spec, seq) ratios at Fastest.
    mixed_fastest_ratio: (f64, f64),
    /// Mixed-corpus speculative-vs-lazy(`Default`) ratio gap, percent.
    mixed_lazy_gap_pct: f64,
    all_identical: bool,
    gzip_verified: Option<bool>,
}

/// Wall-clock seconds of one call to `f`.
fn timed<F: FnMut()>(mut f: F) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

/// Best-of-[`PASSES`] throughput of `enc` over `data`, in MB/s.
fn throughput(enc: &Encoder, data: &[u8]) -> f64 {
    let mut t = f64::INFINITY;
    for _ in 0..PASSES {
        t = t.min(timed(|| {
            std::hint::black_box(enc.compress(data).len());
        }));
    }
    data.len() as f64 / t / 1e6
}

/// Speculative-vs-lazy ratio gap in percent: how much ratio the
/// speculative `Fastest` parse gives up against the sequential lazy
/// `Default` parse of the same input.
fn lazy_gap_pct(spec_size: usize, lazy_size: usize) -> f64 {
    // Ratio = len/size, so ratio deficit = 1 - lazy_size/spec_size.
    (1.0 - lazy_size as f64 / spec_size as f64) * 100.0
}

/// Runs the sweep once per process; `run()` and [`metrics`] share it.
fn measured() -> &'static Measured {
    static CELL: OnceLock<Measured> = OnceLock::new();
    CELL.get_or_init(|| {
        let fastest = Level::Fastest.compression_level();
        let fast = Level::Fast.compression_level();
        let lazy = Level::Default.compression_level();
        let spec_enc = Encoder::with_engine(fastest, Engine::Auto);
        let seq_enc = Encoder::with_engine(fastest, Engine::Sequential);
        let lazy_enc = Encoder::with_engine(lazy, Engine::Auto);

        let mut cells = Vec::new();
        let mut all_identical = true;
        let mut gzip_verified: Option<bool> = None;

        for &kind in CorpusKind::all() {
            let data = kind.generate(SEED, PER_KIND);
            let spec = spec_enc.compress(&data);
            let seq = seq_enc.compress(&data);
            let lazy_size = lazy_enc.compress(&data).len();

            let identical = inflate(&spec).expect("valid stream") == data;
            all_identical &= identical;
            let gz = gzip::wrap_deflate(&spec, crc32(&data), data.len() as u64);
            let gzip_ok = gzip_dc(&gz).map(|back| back == data);
            if let Some(ok) = gzip_ok {
                gzip_verified = Some(gzip_verified.unwrap_or(true) && ok);
            }

            cells.push(Cell {
                corpus: kind.name(),
                spec_ratio: data.len() as f64 / spec.len() as f64,
                spec_mb_per_s: throughput(&spec_enc, &data),
                seq_ratio: data.len() as f64 / seq.len() as f64,
                seq_mb_per_s: throughput(&seq_enc, &data),
                lazy_gap_pct: lazy_gap_pct(spec.len(), lazy_size),
                identical,
                gzip_ok,
            });
        }

        // Part A: the headline mixed-corpus frontier.
        let mixed = nx_corpus::mixed(SEED, MIXED_LEN);
        let spec_out = spec_enc.compress(&mixed);
        let seq_out = seq_enc.compress(&mixed);
        all_identical &= inflate(&spec_out).expect("valid stream") == mixed;
        let mixed_fastest = (throughput(&spec_enc, &mixed), throughput(&seq_enc, &mixed));
        let spec_fast = Encoder::with_engine(fast, Engine::Auto);
        let seq_fast = Encoder::with_engine(fast, Engine::Sequential);
        let mixed_fast = (
            throughput(&spec_fast, &mixed),
            throughput(&seq_fast, &mixed),
        );
        let mixed_fastest_ratio = (
            mixed.len() as f64 / spec_out.len() as f64,
            mixed.len() as f64 / seq_out.len() as f64,
        );
        let mixed_lazy_gap_pct = lazy_gap_pct(spec_out.len(), lazy_enc.compress(&mixed).len());

        // Part C: hardware-model cross-validation on a corpus subset.
        let mut xval = Vec::new();
        let mut tok = Tokenizer::new();
        for kind in [
            CorpusKind::Text,
            CorpusKind::Json,
            CorpusKind::Binary,
            CorpusKind::Logs,
        ] {
            let data = kind.generate(SEED, XVAL_LEN);
            let sw = ParseShape::of(tok.tokenize_with(&data, 0, fastest.get(), Engine::Auto));

            let spec_cfg = AccelConfig::power9();
            let mut greedy_cfg = AccelConfig::power9();
            greedy_cfg.resolution = Resolution::Greedy;
            let hw_spec_tokens = MatchEngine::new(spec_cfg).tokenize(&data).tokens;
            let hw_greedy_tokens = MatchEngine::new(greedy_cfg).tokenize(&data).tokens;
            let hw_lossless =
                expand_tokens(&hw_spec_tokens) == data && expand_tokens(&hw_greedy_tokens) == data;
            let hw_spec = ParseShape::of(&hw_spec_tokens);
            let hw_greedy = ParseShape::of(&hw_greedy_tokens);

            xval.push(XvalRow {
                corpus: kind.name(),
                sw_share: sw.match_share_pct(data.len()),
                sw_mean_len: sw.mean_match_len(),
                hw_spec_share: hw_spec.match_share_pct(data.len()),
                hw_spec_mean_len: hw_spec.mean_match_len(),
                hw_greedy_share: hw_greedy.match_share_pct(data.len()),
                hw_greedy_mean_len: hw_greedy.mean_match_len(),
                hw_lossless,
            });
        }

        Measured {
            cells,
            xval,
            mixed_fastest,
            mixed_fast,
            mixed_fastest_ratio,
            mixed_lazy_gap_pct,
            all_identical,
            gzip_verified,
        }
    })
}

/// Renders the machine-readable rows ([`JSON_PATH`]).
fn render_json(m: &Measured) -> String {
    let mut rows: Vec<String> = m
        .cells
        .iter()
        .map(|c| {
            format!(
                "  {{\"section\": \"corpus\", \"corpus\": \"{}\", \
                 \"spec_ratio\": {:.4}, \"spec_mb_per_s\": {:.3}, \
                 \"seq_ratio\": {:.4}, \"seq_mb_per_s\": {:.3}, \
                 \"lazy_gap_pct\": {:.2}, \"identical\": {}, \"gzip_ok\": {}}}",
                c.corpus,
                c.spec_ratio,
                c.spec_mb_per_s,
                c.seq_ratio,
                c.seq_mb_per_s,
                c.lazy_gap_pct,
                c.identical,
                c.gzip_ok.map_or("null".into(), |b| b.to_string()),
            )
        })
        .collect();
    for x in &m.xval {
        rows.push(format!(
            "  {{\"section\": \"xval\", \"corpus\": \"{}\", \
             \"sw_match_share_pct\": {:.2}, \"sw_mean_match_len\": {:.2}, \
             \"hw_spec_match_share_pct\": {:.2}, \"hw_spec_mean_match_len\": {:.2}, \
             \"hw_greedy_match_share_pct\": {:.2}, \"hw_greedy_mean_match_len\": {:.2}, \
             \"hw_lossless\": {}}}",
            x.corpus,
            x.sw_share,
            x.sw_mean_len,
            x.hw_spec_share,
            x.hw_spec_mean_len,
            x.hw_greedy_share,
            x.hw_greedy_mean_len,
            x.hw_lossless,
        ));
    }
    rows.push(format!(
        "  {{\"section\": \"summary\", \"speculative_mb_per_s\": {:.3}, \
         \"sequential_mb_per_s\": {:.3}, \"speedup\": {:.3}, \
         \"fast_speculative_mb_per_s\": {:.3}, \"fast_sequential_mb_per_s\": {:.3}, \
         \"speculative_ratio\": {:.4}, \"sequential_ratio\": {:.4}, \
         \"spec_faster_than_sequential\": {}, \"spec_ratio_not_worse\": {}, \
         \"lazy_gap_pct\": {:.2}, \"paper_gap_pct\": {PAPER_GAP_PCT}, \
         \"all_identical\": {}, \"gzip_verified\": {}}}",
        m.mixed_fastest.0,
        m.mixed_fastest.1,
        m.mixed_fastest.0 / m.mixed_fastest.1,
        m.mixed_fast.0,
        m.mixed_fast.1,
        m.mixed_fastest_ratio.0,
        m.mixed_fastest_ratio.1,
        m.mixed_fastest.0 > m.mixed_fastest.1,
        m.mixed_fastest_ratio.0 >= m.mixed_fastest_ratio.1,
        m.mixed_lazy_gap_pct,
        m.all_identical,
        m.gzip_verified.map_or("null".into(), |b| b.to_string()),
    ));
    format!("[\n{}\n]\n", rows.join(",\n"))
}

/// Machine-readable rows for `tables --json`.
pub fn metrics() -> Vec<MetricRow> {
    let m = measured();
    vec![
        MetricRow::new("speculative_mb_per_s", m.mixed_fastest.0, "MB/s"),
        MetricRow::new("sequential_mb_per_s", m.mixed_fastest.1, "MB/s"),
        MetricRow::new("speedup", m.mixed_fastest.0 / m.mixed_fastest.1, "ratio"),
        MetricRow::new("speculative_ratio", m.mixed_fastest_ratio.0, "ratio"),
        MetricRow::new("sequential_ratio", m.mixed_fastest_ratio.1, "ratio"),
        MetricRow::new("lazy_gap_pct", m.mixed_lazy_gap_pct, "percent"),
        MetricRow::new(
            "spec_faster_than_sequential",
            f64::from(u8::from(m.mixed_fastest.0 > m.mixed_fastest.1)),
            "bool",
        ),
        MetricRow::new(
            "spec_ratio_not_worse",
            f64::from(u8::from(m.mixed_fastest_ratio.0 >= m.mixed_fastest_ratio.1)),
            "bool",
        ),
        MetricRow::new(
            "outputs_identical",
            f64::from(u8::from(m.all_identical)),
            "bool",
        ),
        MetricRow::new(
            "gzip_verified",
            f64::from(u8::from(m.gzip_verified == Some(true))),
            "bool",
        ),
    ]
}

/// Runs the experiment, writes [`JSON_PATH`], renders the report.
pub fn run() -> String {
    let m = measured();

    let mut table = Table::new(vec![
        "corpus",
        "spec ratio",
        "spec MB/s",
        "seq ratio",
        "seq MB/s",
        "vs lazy",
        "verified",
    ]);
    for c in &m.cells {
        table.row(vec![
            c.corpus.to_string(),
            format!("{:.3}", c.spec_ratio),
            format!("{:.1}", c.spec_mb_per_s),
            format!("{:.3}", c.seq_ratio),
            format!("{:.1}", c.seq_mb_per_s),
            format!("{:+.1}%", c.lazy_gap_pct),
            match (c.identical, c.gzip_ok) {
                (true, Some(true)) => "ours+gzip".to_string(),
                (true, None) => "ours".to_string(),
                _ => "FAIL".to_string(),
            },
        ]);
    }

    let mut xval_table = Table::new(vec![
        "corpus",
        "sw share",
        "sw len",
        "hw-spec share",
        "hw-spec len",
        "hw-greedy share",
        "hw-greedy len",
        "hw lossless",
    ]);
    for x in &m.xval {
        xval_table.row(vec![
            x.corpus.to_string(),
            format!("{:.1}%", x.sw_share),
            format!("{:.1}", x.sw_mean_len),
            format!("{:.1}%", x.hw_spec_share),
            format!("{:.1}", x.hw_spec_mean_len),
            format!("{:.1}%", x.hw_greedy_share),
            format!("{:.1}", x.hw_greedy_mean_len),
            x.hw_lossless.to_string(),
        ]);
    }

    let json = render_json(m);
    let json_note = match std::fs::write(JSON_PATH, &json) {
        Ok(()) => format!("rows written to `{JSON_PATH}`"),
        Err(err) => format!("could not write `{JSON_PATH}`: {err}"),
    };

    format!(
        "## E25 — {TITLE}\n\nHeadline: on the {} MiB mixed corpus at `Level::Fastest` the \
         speculative batch engine compresses at {:.1} MB/s vs {:.1} MB/s for the forced \
         sequential ladder ({:.2}x, same host, best-of-{PASSES}), at ratio {:.4} vs {:.4} \
         (`Fast`: {:.1} vs {:.1} MB/s). Speculative-vs-lazy(`Default`) ratio gap on mixed: \
         {:+.1}% (paper reports ~{PAPER_GAP_PCT}% for its hardware matcher at ~10x \
         throughput).\n\nCorpus sweep ({} classes x {} MiB at `Fastest`; `vs lazy` = ratio \
         given up against the sequential lazy `Default` parse):\n\n{}\n\
         Hardware-model cross-validation ({} KiB inputs; software speculative vs the \
         `nx-accel` N=8 banked-CAM matcher in speculative and greedy resolution; share = \
         bytes covered by matches, len = mean match length):\n\n{}\n\
         All speculative outputs identical through our inflate: {}; gzip(1) verification: \
         {}.\n\n{json_note}\n",
        MIXED_LEN >> 20,
        m.mixed_fastest.0,
        m.mixed_fastest.1,
        m.mixed_fastest.0 / m.mixed_fastest.1,
        m.mixed_fastest_ratio.0,
        m.mixed_fastest_ratio.1,
        m.mixed_fast.0,
        m.mixed_fast.1,
        m.mixed_lazy_gap_pct,
        CorpusKind::all().len(),
        PER_KIND >> 20,
        table.render(),
        XVAL_LEN >> 10,
        xval_table.render(),
        m.all_identical,
        m.gzip_verified
            .map_or("skipped (no gzip binary)".to_string(), |b| b.to_string()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speculative_and_sequential_roundtrip_every_corpus() {
        let fastest = Level::Fastest.compression_level();
        for &kind in CorpusKind::all() {
            let data = kind.generate(SEED, 64 << 10);
            for engine in [Engine::Auto, Engine::Sequential, Engine::Speculative] {
                let comp = Encoder::with_engine(fastest, engine).compress(&data);
                assert_eq!(
                    inflate(&comp).expect("valid stream"),
                    data,
                    "roundtrip mismatch on {} with {engine:?}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn forced_speculative_works_at_lazy_rungs() {
        use nx_deflate::CompressionLevel;
        let data = nx_corpus::mixed(SEED, 128 << 10);
        for level in [6u32, 9] {
            let comp = Encoder::with_engine(
                CompressionLevel::new(level).expect("valid"),
                Engine::Speculative,
            )
            .compress(&data);
            assert_eq!(inflate(&comp).expect("valid stream"), data, "level {level}");
        }
    }

    #[test]
    fn hardware_model_parses_are_lossless() {
        let data = nx_corpus::mixed(SEED, 64 << 10);
        for resolution in [Resolution::Speculative, Resolution::Greedy] {
            let mut cfg = AccelConfig::power9();
            cfg.resolution = resolution;
            let out = MatchEngine::new(cfg).tokenize(&data);
            assert_eq!(expand_tokens(&out.tokens), data, "{resolution:?}");
        }
    }

    #[test]
    fn parse_shape_counts() {
        let tokens = [
            Token::Literal(b'a'),
            Token::Match { len: 10, dist: 1 },
            Token::Match { len: 6, dist: 3 },
        ];
        let s = ParseShape::of(&tokens);
        assert_eq!(s.literals, 1);
        assert_eq!(s.matches, 2);
        assert_eq!(s.matched_bytes, 16);
        assert!((s.mean_match_len() - 8.0).abs() < 1e-9);
        assert!((s.match_share_pct(17) - 16.0 * 100.0 / 17.0).abs() < 1e-9);
    }

    #[test]
    fn bench_json_is_well_formed() {
        let m = Measured {
            cells: vec![Cell {
                corpus: "text",
                spec_ratio: 2.9,
                spec_mb_per_s: 150.0,
                seq_ratio: 2.8,
                seq_mb_per_s: 110.0,
                lazy_gap_pct: 8.5,
                identical: true,
                gzip_ok: Some(true),
            }],
            xval: vec![XvalRow {
                corpus: "text",
                sw_share: 80.0,
                sw_mean_len: 12.0,
                hw_spec_share: 79.0,
                hw_spec_mean_len: 11.5,
                hw_greedy_share: 81.0,
                hw_greedy_mean_len: 12.5,
                hw_lossless: true,
            }],
            mixed_fastest: (150.0, 108.0),
            mixed_fast: (140.0, 72.0),
            mixed_fastest_ratio: (3.61, 3.55),
            mixed_lazy_gap_pct: 9.1,
            all_identical: true,
            gzip_verified: Some(true),
        };
        let json = render_json(&m);
        assert!(json.starts_with("[\n") && json.ends_with("]\n"));
        assert_eq!(json.matches("{\"section\"").count(), 3);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"speculative_mb_per_s\": 150.000"));
        assert!(json.contains("\"spec_faster_than_sequential\": true"));
        assert!(json.contains("\"spec_ratio_not_worse\": true"));
        assert!(json.contains("\"lazy_gap_pct\": 9.10"));
        assert!(json.contains("\"gzip_verified\": true"));
    }
}
