//! E26 — Canned Huffman profiles + preset dictionaries: one-pass encode
//! for small-payload traffic.
//!
//! PR 10 added the offline profiler (`nx_deflate::profile`), the
//! versioned [`nx_core::ProfileRegistry`], zlib FDICT preset-dictionary
//! framing and the one-pass canned encoder: tokens stream directly
//! against pre-validated canned tables (a cheap per-block guard falls
//! back to the dynamic path on misfit), and a preset dictionary primes
//! the LZ77 history so 1–16 KiB payloads stop paying the cold-window +
//! two-pass Huffman tax on every request. This experiment prices the
//! move:
//!
//! * **Part A** sweeps the shipped content classes on a 1–16 KiB
//!   payload corpus (evaluation seeds disjoint from the training
//!   seeds): compression ratio and encode MB/s for the canned one-pass
//!   path vs. the default ladder at level 6, same host, same process.
//!   Every canned output is decoded byte-identically through our
//!   inflate (dictionary-aware for zlib FDICT streams); gzip-framed
//!   canned members — which never carry a dictionary — also pass the
//!   system `gzip -dc` referee when available.
//! * **Part B** drives the threaded multi-tenant [`NxService`] with a
//!   closed-loop small-payload storm: one tenant bound to a canned
//!   profile at window-open, one on default options, requests/sec
//!   measured wall-clock over the same payload schedule.
//!
//! `run()` writes `BENCH_SMALL.json`; `scripts/ci.sh` gates on the
//! summary row's `canned_mb_per_s` against the committed baseline and
//! hard-fails the correctness booleans.

use super::e21::gzip_dc;
use super::MetricRow;
use crate::Table;
use nx_core::service::{QosClass, ServiceConfig, TenantSpec};
use nx_core::{profiles, software, CompressOptions, Format, Nx, Profile};
use nx_deflate::CompressionLevel;
use std::collections::VecDeque;
use std::sync::OnceLock;
use std::time::Instant;

/// One-line experiment title shown by `tables list`.
pub const TITLE: &str =
    "Canned profiles + preset dictionaries: one-pass encode on 1-16 KiB payloads";

/// Where the machine-readable rows land. The CI gate parses the summary
/// row of this file.
pub const JSON_PATH: &str = "BENCH_SMALL.json";

/// Payload sizes of the small-payload corpus.
const SIZES: [usize; 5] = [1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10];

/// Evaluation seeds per (class, size) — disjoint from the training
/// window (`nx_core::profiles` trains at seeds 7700+).
const EVAL_SEEDS: u64 = 3;

/// Timed passes per (class, path); the minimum is reported.
const PASSES: usize = 3;

/// The ladder rung the canned path competes against.
const LADDER_LEVEL: u32 = 6;

/// Requests per tenant in the Part B service storm.
const STORM_REQUESTS: usize = 300;

/// Credits per storm tenant (in-flight pipeline depth).
const STORM_CREDITS: u32 = 16;

/// One content-class comparison on the small-payload corpus.
struct Cell {
    corpus: &'static str,
    canned_ratio: f64,
    canned_mb_per_s: f64,
    ladder_ratio: f64,
    ladder_mb_per_s: f64,
    /// Preset-dictionary bytes the class profile carries.
    dict_bytes: usize,
    /// Every canned output decoded byte-identically through our inflate.
    identical: bool,
    /// `gzip -dc` accepted the gzip-framed canned members (`None` =
    /// binary missing).
    gzip_ok: Option<bool>,
}

struct Measured {
    cells: Vec<Cell>,
    /// Aggregate (canned, ladder) MB/s over the whole corpus.
    agg_mb_per_s: (f64, f64),
    /// Aggregate (canned, ladder) ratio over the whole corpus.
    agg_ratio: (f64, f64),
    /// Part B: (canned, ladder) requests/sec through the threaded
    /// service.
    svc_rps: (f64, f64),
    all_identical: bool,
    gzip_verified: Option<bool>,
}

/// Wall-clock seconds of one call to `f`.
fn timed<F: FnMut()>(mut f: F) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

/// Best-of-[`PASSES`] sweep throughput of `compress` over `payloads`,
/// in MB/s.
fn sweep_mb_per_s<F: Fn(&[u8]) -> Vec<u8>>(payloads: &[Vec<u8>], compress: F) -> f64 {
    let total: usize = payloads.iter().map(Vec::len).sum();
    let mut t = f64::INFINITY;
    for _ in 0..PASSES {
        t = t.min(timed(|| {
            for p in payloads {
                std::hint::black_box(compress(p).len());
            }
        }));
    }
    total as f64 / t / 1e6
}

/// Decodes a canned `format` stream with the framing-appropriate
/// dictionary mode and checks it against `data`.
fn canned_decodes(bytes: &[u8], format: Format, profile: &Profile, data: &[u8]) -> bool {
    let back = match format {
        Format::Gzip => software::decompress(bytes, format),
        Format::Zlib if profile.dict().is_empty() => software::decompress(bytes, format),
        _ => software::decompress_with_dict(bytes, format, profile.dict()),
    };
    back.map(|b| b == data).unwrap_or(false)
}

/// Closed-loop storm: pushes [`STORM_REQUESTS`] payloads through one
/// tenant window keeping up to its credit budget in flight, returns
/// requests/sec.
fn storm_rps(handle: &nx_core::service::TenantHandle, payloads: &[Vec<u8>]) -> f64 {
    let mut inflight = VecDeque::new();
    let t0 = Instant::now();
    for i in 0..STORM_REQUESTS {
        let data = payloads[i % payloads.len()].clone();
        loop {
            match handle.submit(data.clone(), Format::Zlib) {
                Ok(t) => {
                    inflight.push_back(t);
                    break;
                }
                Err(_) => {
                    // Credit or depth backpressure: drain the oldest
                    // ticket and retry.
                    let t = inflight.pop_front().expect("backpressure implies inflight");
                    t.wait().expect("served");
                }
            }
        }
    }
    for t in inflight {
        t.wait().expect("served");
    }
    STORM_REQUESTS as f64 / t0.elapsed().as_secs_f64()
}

/// Runs the sweep once per process; `run()` and [`metrics`] share it.
fn measured() -> &'static Measured {
    static CELL: OnceLock<Measured> = OnceLock::new();
    CELL.get_or_init(|| {
        let registry = profiles::default_registry();
        let level = CompressionLevel::new(LADDER_LEVEL).expect("valid level");
        let engine = nx_deflate::Engine::Auto;

        let mut cells = Vec::new();
        let mut all_identical = true;
        let mut gzip_verified: Option<bool> = None;
        let mut agg = (0usize, 0usize, 0usize); // input, canned out, ladder out
        let mut agg_canned_t = 0.0f64;
        let mut agg_ladder_t = 0.0f64;

        for kind in profiles::DEFAULT_CLASSES {
            let (_, profile) = registry.by_name(kind.name()).expect("shipped class");
            let payloads: Vec<Vec<u8>> = SIZES
                .iter()
                .flat_map(|&len| (0..EVAL_SEEDS).map(move |s| (len, s)))
                .map(|(len, s)| kind.generate(s, len))
                .collect();
            let total: usize = payloads.iter().map(Vec::len).sum();

            // Correctness sweep: every canned output in every framing
            // decodes byte-identically; gzip members pass `gzip -dc`.
            let mut identical = true;
            let mut gzip_ok: Option<bool> = None;
            let mut canned_out = 0usize;
            let mut ladder_out = 0usize;
            for p in &payloads {
                for format in [Format::RawDeflate, Format::Zlib, Format::Gzip] {
                    let out = software::compress_with_profile(p, engine, profile, format);
                    identical &= canned_decodes(&out, format, profile, p);
                    if format == Format::Zlib {
                        canned_out += out.len();
                        ladder_out += software::compress(p, level, format).len();
                    }
                    if format == Format::Gzip {
                        if let Some(back) = gzip_dc(&out) {
                            gzip_ok = Some(gzip_ok.unwrap_or(true) && back == *p);
                        }
                    }
                }
            }
            all_identical &= identical;
            if let Some(ok) = gzip_ok {
                gzip_verified = Some(gzip_verified.unwrap_or(true) && ok);
            }

            // Timing sweep (zlib framing: the dictionary-bearing mode).
            let canned_mb = sweep_mb_per_s(&payloads, |p| {
                software::compress_with_profile(p, engine, profile, Format::Zlib)
            });
            let ladder_mb =
                sweep_mb_per_s(&payloads, |p| software::compress(p, level, Format::Zlib));

            agg.0 += total;
            agg.1 += canned_out;
            agg.2 += ladder_out;
            agg_canned_t += total as f64 / (canned_mb * 1e6);
            agg_ladder_t += total as f64 / (ladder_mb * 1e6);

            cells.push(Cell {
                corpus: kind.name(),
                canned_ratio: total as f64 / canned_out as f64,
                canned_mb_per_s: canned_mb,
                ladder_ratio: total as f64 / ladder_out as f64,
                ladder_mb_per_s: ladder_mb,
                dict_bytes: profile.dict().len(),
                identical,
                gzip_ok,
            });
        }

        // Part B: the threaded service, canned vs. default tenant on the
        // same payload schedule.
        let nx = Nx::power9();
        let (json_id, _) = registry.by_name("json").expect("json profile");
        let svc = nx.service(ServiceConfig::default());
        let canned_tenant = svc.open_window_with(
            TenantSpec::new("canned", QosClass::Latency, STORM_CREDITS),
            CompressOptions::new().with_profile(json_id),
        );
        let ladder_tenant = svc.open_window_with(
            TenantSpec::new("ladder", QosClass::Latency, STORM_CREDITS),
            CompressOptions::from_numeric(LADDER_LEVEL).expect("valid level"),
        );
        let storm_payloads: Vec<Vec<u8>> = (0..16u64)
            .map(|s| nx_corpus::CorpusKind::Json.generate(s, 2 << 10))
            .collect();
        let ladder_rps = storm_rps(&ladder_tenant, &storm_payloads);
        let canned_rps = storm_rps(&canned_tenant, &storm_payloads);
        svc.close();

        Measured {
            cells,
            agg_mb_per_s: (
                agg.0 as f64 / agg_canned_t / 1e6,
                agg.0 as f64 / agg_ladder_t / 1e6,
            ),
            agg_ratio: (agg.0 as f64 / agg.1 as f64, agg.0 as f64 / agg.2 as f64),
            svc_rps: (canned_rps, ladder_rps),
            all_identical,
            gzip_verified,
        }
    })
}

/// Renders the machine-readable rows ([`JSON_PATH`]).
fn render_json(m: &Measured) -> String {
    let mut rows: Vec<String> = m
        .cells
        .iter()
        .map(|c| {
            format!(
                "  {{\"section\": \"corpus\", \"corpus\": \"{}\", \
                 \"canned_ratio\": {:.4}, \"canned_mb_per_s\": {:.3}, \
                 \"ladder_ratio\": {:.4}, \"ladder_mb_per_s\": {:.3}, \
                 \"dict_bytes\": {}, \"identical\": {}, \"gzip_ok\": {}}}",
                c.corpus,
                c.canned_ratio,
                c.canned_mb_per_s,
                c.ladder_ratio,
                c.ladder_mb_per_s,
                c.dict_bytes,
                c.identical,
                c.gzip_ok.map_or("null".into(), |b| b.to_string()),
            )
        })
        .collect();
    rows.push(format!(
        "  {{\"section\": \"summary\", \"canned_mb_per_s\": {:.3}, \
         \"ladder_mb_per_s\": {:.3}, \"speedup\": {:.3}, \
         \"canned_ratio\": {:.4}, \"ladder_ratio\": {:.4}, \
         \"ratio_not_worse\": {}, \"svc_canned_rps\": {:.1}, \
         \"svc_ladder_rps\": {:.1}, \"svc_rps_uplift\": {:.3}, \
         \"all_identical\": {}, \"gzip_verified\": {}}}",
        m.agg_mb_per_s.0,
        m.agg_mb_per_s.1,
        m.agg_mb_per_s.0 / m.agg_mb_per_s.1,
        m.agg_ratio.0,
        m.agg_ratio.1,
        m.agg_ratio.0 >= m.agg_ratio.1,
        m.svc_rps.0,
        m.svc_rps.1,
        m.svc_rps.0 / m.svc_rps.1,
        m.all_identical,
        m.gzip_verified.map_or("null".into(), |b| b.to_string()),
    ));
    format!("[\n{}\n]\n", rows.join(",\n"))
}

/// Machine-readable rows for `tables --json`.
pub fn metrics() -> Vec<MetricRow> {
    let m = measured();
    vec![
        MetricRow::new("canned_mb_per_s", m.agg_mb_per_s.0, "MB/s"),
        MetricRow::new("ladder_mb_per_s", m.agg_mb_per_s.1, "MB/s"),
        MetricRow::new("speedup", m.agg_mb_per_s.0 / m.agg_mb_per_s.1, "ratio"),
        MetricRow::new("canned_ratio", m.agg_ratio.0, "ratio"),
        MetricRow::new("ladder_ratio", m.agg_ratio.1, "ratio"),
        MetricRow::new(
            "ratio_not_worse",
            f64::from(u8::from(m.agg_ratio.0 >= m.agg_ratio.1)),
            "bool",
        ),
        MetricRow::new("svc_canned_rps", m.svc_rps.0, "count"),
        MetricRow::new("svc_ladder_rps", m.svc_rps.1, "count"),
        MetricRow::new("svc_rps_uplift", m.svc_rps.0 / m.svc_rps.1, "ratio"),
        MetricRow::new(
            "outputs_identical",
            f64::from(u8::from(m.all_identical)),
            "bool",
        ),
        MetricRow::new(
            "gzip_verified",
            f64::from(u8::from(m.gzip_verified == Some(true))),
            "bool",
        ),
    ]
}

/// Runs the experiment, writes [`JSON_PATH`], renders the report.
pub fn run() -> String {
    let m = measured();

    let mut table = Table::new(vec![
        "corpus",
        "canned ratio",
        "canned MB/s",
        "ladder ratio",
        "ladder MB/s",
        "dict B",
        "verified",
    ]);
    for c in &m.cells {
        table.row(vec![
            c.corpus.to_string(),
            format!("{:.3}", c.canned_ratio),
            format!("{:.1}", c.canned_mb_per_s),
            format!("{:.3}", c.ladder_ratio),
            format!("{:.1}", c.ladder_mb_per_s),
            c.dict_bytes.to_string(),
            match (c.identical, c.gzip_ok) {
                (true, Some(true)) => "ours+gzip".to_string(),
                (true, None) => "ours".to_string(),
                _ => "FAIL".to_string(),
            },
        ]);
    }

    let json = render_json(m);
    let json_note = match std::fs::write(JSON_PATH, &json) {
        Ok(()) => format!("rows written to `{JSON_PATH}`"),
        Err(err) => format!("could not write `{JSON_PATH}`: {err}"),
    };

    format!(
        "## E26 — {TITLE}\n\nHeadline: on the 1–16 KiB small-payload corpus ({} classes x \
         {} sizes x {} seeds, zlib framing) the one-pass canned path encodes at {:.1} MB/s \
         vs {:.1} MB/s for the level-{LADDER_LEVEL} ladder ({:.2}x, same host, \
         best-of-{PASSES}), at aggregate ratio {:.4} vs {:.4} (preset dictionaries prime \
         the cold window; equal-or-better ratio: {}). Threaded service storm \
         ({STORM_REQUESTS} requests/tenant, {STORM_CREDITS} credits in flight, 2 KiB JSON \
         payloads): canned tenant {:.0} req/s vs default tenant {:.0} req/s \
         ({:.2}x).\n\nPer-class sweep (each canned output decoded byte-identically; \
         gzip-framed members re-checked through `gzip -dc`):\n\n{}\n\
         All canned outputs identical through our inflate: {}; gzip(1) verification: \
         {}.\n\n{json_note}\n",
        profiles::DEFAULT_CLASSES.len(),
        SIZES.len(),
        EVAL_SEEDS,
        m.agg_mb_per_s.0,
        m.agg_mb_per_s.1,
        m.agg_mb_per_s.0 / m.agg_mb_per_s.1,
        m.agg_ratio.0,
        m.agg_ratio.1,
        m.agg_ratio.0 >= m.agg_ratio.1,
        m.svc_rps.0,
        m.svc_rps.1,
        m.svc_rps.0 / m.svc_rps.1,
        table.render(),
        m.all_identical,
        m.gzip_verified
            .map_or("skipped (no gzip binary)".to_string(), |b| b.to_string()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_outputs_decode_on_the_small_corpus() {
        let registry = profiles::default_registry();
        for kind in profiles::DEFAULT_CLASSES {
            let (_, profile) = registry.by_name(kind.name()).expect("shipped class");
            let data = kind.generate(0, 2 << 10);
            for format in [Format::RawDeflate, Format::Zlib, Format::Gzip] {
                let out = software::compress_with_profile(
                    &data,
                    nx_deflate::Engine::Auto,
                    profile,
                    format,
                );
                assert!(
                    canned_decodes(&out, format, profile, &data),
                    "{} {format:?}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn bench_json_is_well_formed() {
        let m = Measured {
            cells: vec![Cell {
                corpus: "json",
                canned_ratio: 3.1,
                canned_mb_per_s: 240.0,
                ladder_ratio: 2.4,
                ladder_mb_per_s: 120.0,
                dict_bytes: 2048,
                identical: true,
                gzip_ok: Some(true),
            }],
            agg_mb_per_s: (240.0, 120.0),
            agg_ratio: (3.1, 2.4),
            svc_rps: (9000.0, 5000.0),
            all_identical: true,
            gzip_verified: Some(true),
        };
        let json = render_json(&m);
        assert!(json.starts_with("[\n") && json.ends_with("]\n"));
        assert_eq!(json.matches("{\"section\"").count(), 2);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"canned_mb_per_s\": 240.000"));
        assert!(json.contains("\"speedup\": 2.000"));
        assert!(json.contains("\"ratio_not_worse\": true"));
        assert!(json.contains("\"svc_rps_uplift\": 1.800"));
        assert!(json.contains("\"all_identical\": true"));
        assert!(json.contains("\"gzip_verified\": true"));
    }
}
