//! E3 — Single-accelerator speedup over single-core zlib software.
//!
//! Paper claim: **388× over the zlib compression software running on a
//! general-purpose core**. Here the software side is this workspace's
//! from-scratch DEFLATE measured in wall-clock on the host machine, and
//! the accelerator side is the modeled engine latency at its 2 GHz clock
//! — the same methodology, so the *magnitude class* (hundreds of ×, and
//! growing with the software level) is the reproduced quantity.

use crate::{Table, SEED};
use nx_accel::{AccelConfig, Accelerator};
use nx_deflate::{deflate, CompressionLevel};
use std::time::Instant;

/// One-line experiment title shown by `tables list`.
pub const TITLE: &str = "Speedup of one accelerator over one software core";

/// Input size for the comparison.
pub const BYTES: usize = 64 << 20;

/// Measures one software level's wall-clock rate, B/s.
fn software_rate(data: &[u8], level: u32) -> f64 {
    let lvl = CompressionLevel::new(level).expect("valid level");
    // One warmup, then the timed run.
    std::hint::black_box(deflate(&data[..data.len() / 8], lvl));
    let t0 = Instant::now();
    std::hint::black_box(deflate(data, lvl));
    data.len() as f64 / t0.elapsed().as_secs_f64()
}

/// Runs the experiment and renders its report.
pub fn run() -> String {
    let data = nx_corpus::mixed(SEED, BYTES);
    let mut p9 = Accelerator::new(AccelConfig::power9());
    let (_, report) = p9.compress(&data);
    let accel_secs = report.latency_secs();
    let accel_gbps = report.throughput_gbps();

    let mut table = Table::new(vec![
        "software level",
        "sw MB/s (host)",
        "accel GB/s (model)",
        "speedup",
    ]);
    for level in [1u32, 6, 9] {
        let sw_bps = software_rate(&data, level);
        let sw_secs = BYTES as f64 / sw_bps;
        table.row(vec![
            format!("zlib -{level}"),
            format!("{:.1}", sw_bps / 1e6),
            format!("{accel_gbps:.2}"),
            format!("{:.0}x", sw_secs / accel_secs),
        ]);
    }
    format!(
        "## E3 — {TITLE}\n\n64 MiB mixed corpus. Software wall-clock is host-dependent; \
         the paper reports 388x against its baseline.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_is_in_the_hundreds() {
        // Smaller input to keep the test quick; speedup is size-robust.
        let data = nx_corpus::mixed(SEED, 8 << 20);
        let mut p9 = Accelerator::new(AccelConfig::power9());
        let (_, report) = p9.compress(&data);
        let sw_bps = software_rate(&data, 6);
        let speedup = (data.len() as f64 / sw_bps) / report.latency_secs();
        assert!(speedup > 30.0, "speedup only {speedup:.0}x");
    }
}
