//! E1 — Compression throughput vs request size.
//!
//! Paper shape reproduced: throughput climbs with request size as the
//! fixed per-request overheads (pipeline fill, DHT builds for the first
//! block, submission) amortize, saturating near the lane-width peak
//! (≈ 16 GB/s POWER9, ≈ 32 GB/s z15).

use crate::{fmt_bytes, Table, SEED};
use nx_accel::{AccelConfig, Accelerator};

/// One-line experiment title shown by `tables list`.
pub const TITLE: &str = "Compression throughput vs request size (POWER9 & z15)";

/// Request sizes swept.
pub const SIZES: [usize; 8] = [
    4 << 10,
    16 << 10,
    64 << 10,
    256 << 10,
    1 << 20,
    4 << 20,
    16 << 20,
    64 << 20,
];

/// Runs the experiment and renders its report.
pub fn run() -> String {
    let mut table = Table::new(vec![
        "request size",
        "POWER9 GB/s",
        "z15 GB/s",
        "P9 B/cycle",
        "ratio",
    ]);
    let mut p9 = Accelerator::new(AccelConfig::power9());
    let mut z15 = Accelerator::new(AccelConfig::z15());
    for &size in &SIZES {
        let data = nx_corpus::mixed(SEED, size);
        let (_, r9) = p9.compress(&data);
        let (_, r15) = z15.compress(&data);
        table.row(vec![
            fmt_bytes(size as u64),
            format!("{:.2}", r9.throughput_gbps()),
            format!("{:.2}", r15.throughput_gbps()),
            format!("{:.2}", r9.bytes_per_cycle()),
            format!("{:.2}", r9.ratio()),
        ]);
    }
    format!(
        "## E1 — {TITLE}\n\nMixed corpus; throughput includes per-request overheads.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_rises_and_saturates() {
        let mut p9 = Accelerator::new(AccelConfig::power9());
        let small = {
            let d = nx_corpus::mixed(SEED, 4 << 10);
            p9.compress(&d).1.throughput_gbps()
        };
        let large = {
            let d = nx_corpus::mixed(SEED, 8 << 20);
            p9.compress(&d).1.throughput_gbps()
        };
        assert!(large > 2.0 * small, "no ramp: {small} -> {large}");
        assert!(large <= 16.0 + 1e-9, "beyond peak: {large}");
    }
}
