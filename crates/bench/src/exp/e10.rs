//! E10 — End-to-end Spark TPC-DS speedup.
//!
//! Paper claim: "the accelerators provide an end-to-end **23 % speedup**
//! to Apache Spark TPC-DS workload compared to the software baseline."
//! Reproduced on the deterministic TPC-DS-like mix (see
//! `nx_analytics::tpcds` for the calibration).

use crate::{Table, SEED};
use nx_analytics::{tpcds, Cluster, Codec};

/// One-line experiment title shown by `tables list`.
pub const TITLE: &str = "End-to-end Spark-like TPC-DS speedup from offload";

/// Runs the experiment and renders its report.
pub fn run() -> String {
    let jobs = tpcds::query_mix(SEED);
    let cluster = Cluster::new(24, 1);

    let mut table = Table::new(vec![
        "codec",
        "makespan (s)",
        "core-seconds",
        "codec CPU %",
        "shuffle ratio",
        "wire GB",
    ]);
    let mut reports = Vec::new();
    for codec in [
        Codec::none(),
        Codec::software_default(),
        Codec::software_parallel(4),
        Codec::nx_offload_default(),
    ] {
        let r = cluster.run(&jobs, &codec);
        table.row(vec![
            r.codec.to_string(),
            format!("{:.1}", r.makespan.as_secs_f64()),
            format!("{:.1}", r.core_seconds),
            format!("{:.1}", 100.0 * r.codec_cpu_fraction()),
            format!("{:.2}x", r.shuffle_ratio()),
            format!("{:.2}", r.shuffle_on_wire as f64 / 1e9),
        ]);
        reports.push(r);
    }
    let speedup = (reports[3].speedup_over(&reports[1]) - 1.0) * 100.0;
    let vs_parallel = (reports[3].speedup_over(&reports[2]) - 1.0) * 100.0;
    format!(
        "## E10 — {TITLE}\n\n{} queries on 24 executors with one on-chip accelerator.\n\n{}\
         \nNX offload end-to-end speedup over the software codec: **{speedup:.1}%** \
         (paper: 23%); over the 4-worker sharded software codec: {vs_parallel:.1}% \
         (parallel software buys back compress time but still burns cores and \
         leaves decompression serial).\n",
        jobs.len(),
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_lands_in_the_paper_band() {
        let jobs = tpcds::query_mix(SEED);
        let cluster = Cluster::new(24, 1);
        let sw = cluster.run(&jobs, &Codec::software_default());
        let nx = cluster.run(&jobs, &Codec::nx_offload_default());
        let speedup = nx.speedup_over(&sw);
        assert!((1.10..=1.45).contains(&speedup), "speedup {speedup:.3}");
    }

    #[test]
    fn offload_keeps_compression_benefits_on_the_wire() {
        let jobs = tpcds::query_mix(SEED);
        let cluster = Cluster::new(24, 1);
        let none = cluster.run(&jobs, &Codec::none());
        let nx = cluster.run(&jobs, &Codec::nx_offload_default());
        assert!(nx.shuffle_on_wire * 3 < none.shuffle_on_wire);
        // And still beats running uncompressed end-to-end (I/O savings).
        assert!(nx.makespan <= none.makespan);
    }

    #[test]
    fn parallel_software_narrows_but_does_not_close_the_gap() {
        let jobs = tpcds::query_mix(SEED);
        let cluster = Cluster::new(24, 1);
        let sw = cluster.run(&jobs, &Codec::software_default());
        let par = cluster.run(&jobs, &Codec::software_parallel(4));
        let nx = cluster.run(&jobs, &Codec::nx_offload_default());
        // Sharding across 4 cores beats the serial software codec…
        assert!(par.makespan < sw.makespan);
        // …but the offload still wins: decompression stays serial on
        // the executor core and the shard workers are not free.
        assert!(nx.makespan < par.makespan);
    }
}
