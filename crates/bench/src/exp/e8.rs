//! E8 — Generation comparison: z15 doubles the POWER9 rate.
//!
//! Paper claim: "The z15 chip doubles the compression rate of POWER9."
//! Reproduced per corpus class for both directions.

use crate::{Table, SEED};
use nx_accel::{AccelConfig, Accelerator};
use nx_corpus::CorpusKind;

/// One-line experiment title shown by `tables list`.
pub const TITLE: &str = "POWER9 vs z15 per-engine rates by corpus";

/// Sample size per corpus.
pub const BYTES: usize = 4 << 20;

/// Runs the experiment and renders its report.
pub fn run() -> String {
    let mut p9 = Accelerator::new(AccelConfig::power9());
    let mut z15 = Accelerator::new(AccelConfig::z15());
    let mut table = Table::new(vec![
        "corpus",
        "P9 comp GB/s",
        "z15 comp GB/s",
        "comp gain",
        "P9 dec GB/s",
        "z15 dec GB/s",
    ]);
    for &kind in CorpusKind::all() {
        let data = kind.generate(SEED, BYTES);
        let (s9, c9) = p9.compress(&data);
        let (_, c15) = z15.compress(&data);
        let (_, d9) = p9.decompress(&s9).expect("own stream");
        let (_, d15) = z15.decompress(&s9).expect("own stream");
        table.row(vec![
            kind.name().to_string(),
            format!("{:.2}", c9.throughput_gbps()),
            format!("{:.2}", c15.throughput_gbps()),
            format!("{:.2}x", c15.throughput_gbps() / c9.throughput_gbps()),
            format!("{:.2}", d9.throughput_gbps()),
            format!("{:.2}", d15.throughput_gbps()),
        ]);
    }
    format!("## E8 — {TITLE}\n\n4 MiB per corpus.\n\n{}", table.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z15_gains_approach_2x_on_compressible_classes() {
        let mut p9 = Accelerator::new(AccelConfig::power9());
        let mut z15 = Accelerator::new(AccelConfig::z15());
        let data = CorpusKind::Logs.generate(SEED, 2 << 20);
        let (_, c9) = p9.compress(&data);
        let (_, c15) = z15.compress(&data);
        let gain = c15.throughput_gbps() / c9.throughput_gbps();
        assert!((1.5..=2.4).contains(&gain), "gain {gain:.2}");
    }
}
