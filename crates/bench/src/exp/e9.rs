//! E9 — Aggregate throughput across system topologies.
//!
//! Paper claim: "On a maximally configured z15 system topology, on-chip
//! compression accelerators provide **up to 280 GB/s** data compression
//! rate." Reproduced as a topology sweep under saturating load (see the
//! drawer-modeling substitution note in `nx_sys::chip`).

use crate::{Table, SEED};
use nx_corpus::CorpusKind;
use nx_sys::crb::Function;
use nx_sys::erat::FaultPolicy;
use nx_sys::{CompletionMode, RequestStream, SystemSim, Topology};

/// One-line experiment title shown by `tables list`.
pub const TITLE: &str = "Aggregate compression rate vs system topology";

fn saturated_gbps(topo: &Topology) -> f64 {
    let per_unit_jobs = 48;
    let stream = RequestStream::saturating(
        SEED,
        per_unit_jobs * topo.total_units(),
        8 << 20,
        &[CorpusKind::Json, CorpusKind::Logs, CorpusKind::Columnar],
        Function::Compress,
    );
    let mut sim = SystemSim::new(
        topo,
        CompletionMode::Poll,
        FaultPolicy::RetryOnFault {
            fault_probability: 0.0,
        },
        SEED,
    );
    sim.run(&stream).throughput_gbps()
}

/// Runs the experiment and renders its report.
pub fn run() -> String {
    let topologies = vec![
        Topology::power9_chip(),
        Topology::power9_two_socket(),
        Topology::z15_chip(),
        Topology::z15_drawers(1),
        Topology::z15_drawers(2),
        Topology::z15_drawers(3),
        Topology::z15_drawers(4),
        Topology::z15_max(),
    ];
    let mut table = Table::new(vec![
        "topology",
        "units",
        "peak GB/s",
        "achieved GB/s",
        "efficiency",
    ]);
    for topo in &topologies {
        let achieved = saturated_gbps(topo);
        let peak = topo.peak_compress_bps() / 1e9;
        table.row(vec![
            topo.name.clone(),
            topo.total_units().to_string(),
            format!("{peak:.0}"),
            format!("{achieved:.1}"),
            format!("{:.0}%", 100.0 * achieved / peak),
        ]);
    }
    format!(
        "## E9 — {TITLE}\n\nSaturating batch of 8 MiB requests; the z15 max row \
         reproduces the paper's 280 GB/s headline.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z15_max_lands_near_280() {
        let achieved = saturated_gbps(&Topology::z15_max());
        assert!(
            (230.0..=330.0).contains(&achieved),
            "z15 max aggregate {achieved:.1} GB/s"
        );
    }

    #[test]
    fn scaling_is_roughly_linear_in_units() {
        let one = saturated_gbps(&Topology::z15_drawers(1));
        let three = saturated_gbps(&Topology::z15_drawers(3));
        let ratio = three / one;
        assert!(
            (2.5..=3.5).contains(&ratio),
            "1->3 drawer scaling {ratio:.2}"
        );
    }
}
