//! E22 — Parallel + seekable inflate: speculative two-stage decode,
//! member fan-out, and seek-index random access.
//!
//! PR 6 added `nx_core::parallel_inflate`: a rapidgzip-style decoder
//! that (a) decodes multi-member gzip member-per-worker, (b) splits a
//! single member at probed block boundaries and decodes chunks ahead of
//! the unknown 32 KB window into marker buffers, patching them once the
//! predecessor's window resolves, and (c) serializes a [`SeekIndex`]
//! (bit offset + window snapshot per checkpoint) so `decompress_at`
//! random-accesses a member without inflating its prefix.
//!
//! * **Part A** sweeps worker count × stream shape (single member /
//!   multi-member) and reports decode MB/s against the serial walk,
//!   plus the speculation miss rate and marker patch volume.
//! * **Part B** prices random access: build-index cost, serialized
//!   index size, and the latency of ranged reads at several depths —
//!   each compared against what a prefix decode would have cost.
//!
//! Every parallel decode is verified byte-identical to the serial
//! decode before its timing is reported. `run()` writes
//! `BENCH_INFLATE_PAR.json`; `scripts/ci.sh` gates on the summary row's
//! `multi_member_4w_mb_per_s` against the committed baseline.
//!
//! Caveat: wall-clock speedup needs real cores. On a single-core host
//! the sweep still validates correctness and counters, but speedups
//! hover at or below 1.0x — the JSON records `host_threads` so readers
//! can interpret the figures.

use super::MetricRow;
use crate::{Table, SEED};
use nx_core::{software, Format, ParallelInflateOptions, ParallelInflater};
use nx_deflate::CompressionLevel;
use std::sync::OnceLock;
use std::time::Instant;

/// One-line experiment title shown by `tables list`.
pub const TITLE: &str = "Parallel inflate: speculative chunks, member fan-out, seek index";

/// Where the machine-readable rows land (workspace root under
/// `cargo run`). The CI gate parses the summary row of this file.
pub const JSON_PATH: &str = "BENCH_INFLATE_PAR.json";

/// Uncompressed payload length for both stream shapes.
const PAYLOAD_LEN: usize = 8 << 20;

/// Member size for the multi-member shape.
const MEMBER_LEN: usize = 1 << 20;

/// Worker counts swept in Part A.
const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Timed passes per cell; the minimum is reported.
const PASSES: usize = 3;

/// Ranged reads priced in Part B: (offset, len).
const SEEKS: [(u64, usize); 3] = [
    (64 << 10, 4 << 10),
    (4 << 20, 64 << 10),
    ((PAYLOAD_LEN as u64) - (256 << 10), 128 << 10),
];

/// One (shape, workers) cell of the Part A sweep.
struct DecodeCell {
    shape: &'static str,
    workers: usize,
    mb_per_s: f64,
    speedup: f64,
    identical: bool,
}

/// One ranged read of the Part B sweep.
struct SeekCell {
    offset: u64,
    len: usize,
    seek_us: f64,
    prefix_decode_us: f64,
    identical: bool,
}

struct Measured {
    cells: Vec<DecodeCell>,
    seeks: Vec<SeekCell>,
    serial_single_mb_per_s: f64,
    serial_multi_mb_per_s: f64,
    /// misses / (chunks + misses) over the whole single-member sweep.
    miss_rate: f64,
    marker_patch_bytes: u64,
    index_build_ms: f64,
    index_bytes: usize,
    index_checkpoints: usize,
    host_threads: usize,
    all_identical: bool,
}

/// Wall-clock seconds of one call to `f`.
fn timed<F: FnMut()>(mut f: F) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

/// Best-of-[`PASSES`] wall-clock seconds.
fn best_of<F: FnMut()>(mut f: F) -> f64 {
    let mut t = f64::INFINITY;
    for _ in 0..PASSES {
        t = t.min(timed(&mut f));
    }
    t
}

fn inflater(workers: usize) -> ParallelInflater {
    ParallelInflater::new(ParallelInflateOptions {
        workers,
        ..Default::default()
    })
}

/// Runs the sweep once per process; `run()` and [`metrics`] share it.
fn measured() -> &'static Measured {
    static CELL: OnceLock<Measured> = OnceLock::new();
    CELL.get_or_init(|| {
        let payload = nx_corpus::mixed(SEED, PAYLOAD_LEN);
        let level = CompressionLevel::default();
        let single = software::compress(&payload, level, Format::Gzip);
        let multi: Vec<u8> = payload
            .chunks(MEMBER_LEN)
            .flat_map(|c| software::compress(c, level, Format::Gzip))
            .collect();

        let mut all_identical = true;

        // Serial baselines through the same members-walk the parallel
        // path falls back to.
        let reference = inflater(1);
        let t_single = best_of(|| {
            std::hint::black_box(
                reference
                    .decompress_serial(&single, Format::Gzip)
                    .expect("serial")
                    .len(),
            );
        });
        let t_multi = best_of(|| {
            std::hint::black_box(
                reference
                    .decompress_serial(&multi, Format::Gzip)
                    .expect("serial")
                    .len(),
            );
        });

        let mut cells = Vec::new();
        let mut chunks = 0u64;
        let mut misses = 0u64;
        let mut marker_patch_bytes = 0u64;
        for (shape, stream, t_serial) in [
            ("single-member", &single, t_single),
            ("multi-member", &multi, t_multi),
        ] {
            for workers in WORKERS {
                let inf = inflater(workers);
                let out = inf.decompress(stream, Format::Gzip).expect("parallel");
                let identical = out == payload;
                all_identical &= identical;
                let t = best_of(|| {
                    std::hint::black_box(
                        inf.decompress(stream, Format::Gzip)
                            .expect("parallel")
                            .len(),
                    );
                });
                if shape == "single-member" {
                    chunks += inf.stats().chunks_decoded();
                    misses += inf.stats().speculation_misses();
                    marker_patch_bytes += inf.stats().marker_patch_bytes();
                }
                cells.push(DecodeCell {
                    shape,
                    workers,
                    mb_per_s: payload.len() as f64 / t / 1e6,
                    speedup: t_serial / t,
                    identical,
                });
            }
        }

        // Part B: the seek index over the single-member stream.
        let inf = inflater(4);
        let mut index_opt = None;
        let index_build_ms = best_of(|| {
            index_opt = Some(inf.build_index(&single, Format::Gzip).expect("index"));
        }) * 1e3;
        let index = index_opt.expect("index built");
        let index_bytes = index.to_bytes().len();
        let mut seeks = Vec::new();
        for (offset, len) in SEEKS {
            let out = inf
                .decompress_at(&single, &index, offset, len)
                .expect("seek");
            let identical = out == payload[offset as usize..offset as usize + len];
            all_identical &= identical;
            let seek_us = best_of(|| {
                std::hint::black_box(
                    inf.decompress_at(&single, &index, offset, len)
                        .expect("seek")
                        .len(),
                );
            }) * 1e6;
            // What the same read costs without the index: decode the
            // prefix serially, then slice.
            let prefix_decode_us =
                t_single * ((offset as f64 + len as f64) / payload.len() as f64) * 1e6;
            seeks.push(SeekCell {
                offset,
                len,
                seek_us,
                prefix_decode_us,
                identical,
            });
        }

        Measured {
            cells,
            seeks,
            serial_single_mb_per_s: payload.len() as f64 / t_single / 1e6,
            serial_multi_mb_per_s: payload.len() as f64 / t_multi / 1e6,
            miss_rate: if chunks + misses == 0 {
                0.0
            } else {
                misses as f64 / (chunks + misses) as f64
            },
            marker_patch_bytes,
            index_build_ms,
            index_bytes,
            index_checkpoints: index.checkpoints().len(),
            host_threads: std::thread::available_parallelism().map_or(1, usize::from),
            all_identical,
        }
    })
}

/// The Part A cell for `shape` at `workers`.
fn cell_for<'m>(m: &'m Measured, shape: &str, workers: usize) -> &'m DecodeCell {
    m.cells
        .iter()
        .find(|c| c.shape == shape && c.workers == workers)
        .expect("swept cell")
}

/// Renders the machine-readable rows ([`JSON_PATH`]).
fn render_json(m: &Measured) -> String {
    let mut rows: Vec<String> = m
        .cells
        .iter()
        .map(|c| {
            format!(
                "  {{\"section\": \"decode\", \"shape\": \"{}\", \"workers\": {}, \
                 \"mb_per_s\": {:.3}, \"speedup\": {:.3}, \"identical\": {}}}",
                c.shape, c.workers, c.mb_per_s, c.speedup, c.identical,
            )
        })
        .collect();
    for s in &m.seeks {
        rows.push(format!(
            "  {{\"section\": \"seek\", \"offset\": {}, \"len\": {}, \"seek_us\": {:.1}, \
             \"prefix_decode_us\": {:.1}, \"identical\": {}}}",
            s.offset, s.len, s.seek_us, s.prefix_decode_us, s.identical,
        ));
    }
    rows.push(format!(
        "  {{\"section\": \"summary\", \"serial_mb_per_s\": {:.3}, \
         \"serial_multi_mb_per_s\": {:.3}, \
         \"single_member_4w_mb_per_s\": {:.3}, \"multi_member_4w_mb_per_s\": {:.3}, \
         \"speedup_single_4w\": {:.3}, \"speedup_multi_4w\": {:.3}, \
         \"speculation_miss_rate\": {:.4}, \"marker_patch_bytes\": {}, \
         \"index_build_ms\": {:.2}, \"index_bytes\": {}, \"index_checkpoints\": {}, \
         \"host_threads\": {}, \"all_identical\": {}}}",
        m.serial_single_mb_per_s,
        m.serial_multi_mb_per_s,
        cell_for(m, "single-member", 4).mb_per_s,
        cell_for(m, "multi-member", 4).mb_per_s,
        cell_for(m, "single-member", 4).speedup,
        cell_for(m, "multi-member", 4).speedup,
        m.miss_rate,
        m.marker_patch_bytes,
        m.index_build_ms,
        m.index_bytes,
        m.index_checkpoints,
        m.host_threads,
        m.all_identical,
    ));
    format!("[\n{}\n]\n", rows.join(",\n"))
}

/// Machine-readable rows for `tables --json`.
pub fn metrics() -> Vec<MetricRow> {
    let m = measured();
    vec![
        MetricRow::new("inflate_serial_mb_per_s", m.serial_single_mb_per_s, "MB/s"),
        MetricRow::new(
            "single_member_4w_mb_per_s",
            cell_for(m, "single-member", 4).mb_per_s,
            "MB/s",
        ),
        MetricRow::new(
            "multi_member_4w_mb_per_s",
            cell_for(m, "multi-member", 4).mb_per_s,
            "MB/s",
        ),
        MetricRow::new(
            "speedup_multi_4w",
            cell_for(m, "multi-member", 4).speedup,
            "ratio",
        ),
        MetricRow::new("speculation_miss_rate", m.miss_rate, "ratio"),
        MetricRow::new("index_build_ms", m.index_build_ms, "us"),
        MetricRow::new("index_bytes", m.index_bytes as f64, "bytes"),
        MetricRow::new(
            "outputs_identical",
            f64::from(u8::from(m.all_identical)),
            "bool",
        ),
    ]
}

/// Runs the experiment, writes [`JSON_PATH`], renders the report.
pub fn run() -> String {
    let m = measured();

    let mut table = Table::new(vec!["shape", "workers", "MB/s", "vs serial", "verified"]);
    for c in &m.cells {
        table.row(vec![
            c.shape.to_string(),
            c.workers.to_string(),
            format!("{:.1}", c.mb_per_s),
            format!("{:.2}x", c.speedup),
            if c.identical { "ok" } else { "FAIL" }.to_string(),
        ]);
    }

    let mut seek_table = Table::new(vec!["offset", "len", "seek us", "prefix-decode us", "win"]);
    for s in &m.seeks {
        seek_table.row(vec![
            s.offset.to_string(),
            s.len.to_string(),
            format!("{:.1}", s.seek_us),
            format!("{:.1}", s.prefix_decode_us),
            format!("{:.1}x", s.prefix_decode_us / s.seek_us.max(1e-9)),
        ]);
    }

    let json = render_json(m);
    let json_note = match std::fs::write(JSON_PATH, &json) {
        Ok(()) => format!("rows written to `{JSON_PATH}`"),
        Err(err) => format!("could not write `{JSON_PATH}`: {err}"),
    };

    format!(
        "## E22 — {TITLE}\n\nHeadline: an {} MiB payload decodes serially at {:.1} MB/s; at \
         4 workers the member-per-worker path runs at {:.1} MB/s ({:.2}x) and the speculative \
         single-member path at {:.1} MB/s ({:.2}x, miss rate {:.1}%, {} marker bytes patched). \
         Host exposes {} thread(s) — speedups need real cores.\n\n{}\n\
         Seek index: {} checkpoints, {} KiB serialized, built in {:.1} ms (one serial decode). \
         Ranged reads vs decoding the prefix serially:\n\n{}\n\
         All outputs byte-identical to serial: {}.\n\n{json_note}\n",
        PAYLOAD_LEN >> 20,
        m.serial_single_mb_per_s,
        cell_for(m, "multi-member", 4).mb_per_s,
        cell_for(m, "multi-member", 4).speedup,
        cell_for(m, "single-member", 4).mb_per_s,
        cell_for(m, "single-member", 4).speedup,
        m.miss_rate * 100.0,
        m.marker_patch_bytes,
        m.host_threads,
        table.render(),
        m.index_checkpoints,
        m.index_bytes >> 10,
        m.index_build_ms,
        seek_table.render(),
        m.all_identical,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_is_well_formed() {
        let m = Measured {
            cells: WORKERS
                .iter()
                .flat_map(|&w| {
                    ["single-member", "multi-member"].map(|shape| DecodeCell {
                        shape,
                        workers: w,
                        mb_per_s: 100.0 * w as f64,
                        speedup: w as f64 * 0.9,
                        identical: true,
                    })
                })
                .collect(),
            seeks: vec![SeekCell {
                offset: 4096,
                len: 1024,
                seek_us: 120.0,
                prefix_decode_us: 900.0,
                identical: true,
            }],
            serial_single_mb_per_s: 110.0,
            serial_multi_mb_per_s: 115.0,
            miss_rate: 0.25,
            marker_patch_bytes: 1 << 20,
            index_build_ms: 80.0,
            index_bytes: 300 << 10,
            index_checkpoints: 8,
            host_threads: 4,
            all_identical: true,
        };
        let json = render_json(&m);
        assert!(json.starts_with("[\n") && json.ends_with("]\n"));
        assert_eq!(json.matches("{\"section\"").count(), 10);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"multi_member_4w_mb_per_s\": 400.000"));
        assert!(json.contains("\"speculation_miss_rate\": 0.2500"));
        assert!(json.contains("\"all_identical\": true"));
        assert!(json.contains("\"serial_multi_mb_per_s\": 115.000"));
    }

    #[test]
    fn parallel_decode_matches_serial_on_a_small_sweep() {
        let payload = nx_corpus::mixed(SEED ^ 0xE22, 512 << 10);
        let level = CompressionLevel::default();
        let single = software::compress(&payload, level, Format::Gzip);
        let multi: Vec<u8> = payload
            .chunks(128 << 10)
            .flat_map(|c| software::compress(c, level, Format::Gzip))
            .collect();
        for workers in WORKERS {
            let inf = ParallelInflater::new(ParallelInflateOptions {
                workers,
                chunk_size: 32 << 10,
                ..Default::default()
            });
            assert_eq!(
                inf.decompress(&single, Format::Gzip).expect("single"),
                payload
            );
            assert_eq!(
                inf.decompress(&multi, Format::Gzip).expect("multi"),
                payload
            );
        }
    }
}
