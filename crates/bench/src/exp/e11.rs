//! E11 — Processor-cycle offload: CPU cycles per byte compressed.
//!
//! Paper claim class: "The accelerator reduces processor cycles ... of
//! many applications." Software compression burns tens of CPU cycles per
//! byte; the accelerated path charges the core only for CRB build, paste,
//! page touches and completion handling.

use crate::{Table, SEED};
use nx_corpus::CorpusKind;
use nx_deflate::CompressionLevel;
use nx_sys::crb::Function;
use nx_sys::erat::FaultPolicy;
use nx_sys::workload::SizeDistribution;
use nx_sys::{CompletionMode, RequestStream, SoftwareBaseline, SystemSim, Topology};

/// One-line experiment title shown by `tables list`.
pub const TITLE: &str = "CPU cycles per byte: software vs accelerated path";

fn accel_cycles_per_byte(mode: CompletionMode, size: u64) -> f64 {
    let stream = RequestStream::open_loop(
        SEED,
        4,
        500.0,
        800,
        SizeDistribution::Fixed(size),
        &[CorpusKind::Json],
        Function::Compress,
    );
    let mut sim = SystemSim::new(
        &Topology::power9_chip(),
        mode,
        FaultPolicy::RetryOnFault {
            fault_probability: 0.0,
        },
        SEED,
    );
    sim.run(&stream).cpu_cycles_per_byte()
}

/// Runs the experiment and renders its report.
pub fn run() -> String {
    let sample = nx_corpus::mixed(SEED, 8 << 20);
    let per_core = SoftwareBaseline::measure_per_core_bps(CompressionLevel::default(), &sample);
    let sw = SoftwareBaseline::new(1, per_core, 1.0, 2.5);

    let mut table = Table::new(vec!["path", "request size", "CPU cycles/byte"]);
    table.row(vec![
        "software zlib-6 (measured)".to_string(),
        "any".to_string(),
        format!("{:.1}", sw.cpu_cycles_per_byte()),
    ]);
    for &size in &[64u64 << 10, 1 << 20] {
        for mode in [CompletionMode::Interrupt, CompletionMode::Poll] {
            table.row(vec![
                format!("NX + {mode:?}"),
                crate::fmt_bytes(size),
                format!("{:.2}", accel_cycles_per_byte(mode, size)),
            ]);
        }
    }
    format!(
        "## E11 — {TITLE}\n\nInterrupt completion frees the core during the transfer; \
         polling trades cycles for latency (see E6).\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interrupt_path_offloads_by_orders_of_magnitude() {
        let accel = accel_cycles_per_byte(CompletionMode::Interrupt, 1 << 20);
        // Software is tens of cycles/byte; the offloaded path must be < 1.
        assert!(accel < 1.0, "accelerated path costs {accel:.3} cycles/byte");
    }

    #[test]
    fn polling_costs_more_cpu_than_interrupts() {
        let poll = accel_cycles_per_byte(CompletionMode::Poll, 1 << 20);
        let intr = accel_cycles_per_byte(CompletionMode::Interrupt, 1 << 20);
        assert!(poll > intr);
    }
}
