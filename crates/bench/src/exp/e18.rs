//! E18 — Fault-injection sweep: throughput and tail latency vs fault rate.
//!
//! Exercises the `nx_core::fault` subsystem end to end. Part A drives the
//! functional `Nx` handle through `Nx::with_faults` across injected fault
//! rates, comparing the plain retry-from-offset recovery policy against
//! the touch-ahead mitigation (touch the faulting page plus a window so
//! the resubmission runs fault-free through it). Every response is
//! checked byte-identical against the clean reference — recovery must
//! never change the answer, only the latency. Part B replays the same
//! comparison in the `nx_sys` discrete-event simulator, where CSB error
//! injection composes with the stochastic ERAT page-fault model and the
//! retry/touch-ahead/touch-first policies of the paper's Section V.
//!
//! The zero-rate row doubles as the instrumentation-overhead check: a
//! seeded plan whose rates are all zero still runs the full draw-and-
//! recover machinery, and the report prints its cost next to an
//! uninstrumented baseline (the acceptance bar is ≤ 5%).
//!
//! `run()` emits `BENCH_FAULTS.json` with the full sweep (one object per
//! cell); `tables --json` additionally gets a curated set of scalar
//! metrics.

use super::MetricRow;
use crate::{Table, SEED};
use nx_accel::AccelConfig;
use nx_core::fault::{FaultPlan, FaultRates, RecoveryPolicy};
use nx_core::{Format, Nx};
use nx_corpus::CorpusKind;
use nx_deflate::CompressionLevel;
use nx_sys::crb::Function;
use nx_sys::erat::FaultPolicy;
use nx_sys::{CompletionMode, RequestStream, SystemSim, Topology};
use std::sync::OnceLock;
use std::time::Instant;

/// One-line experiment title shown by `tables list`.
pub const TITLE: &str = "Fault-injection sweep: recovery cost, retry vs touch-ahead";

/// Where the machine-readable sweep lands (relative to the invocation
/// directory, i.e. the workspace root under `cargo run`).
pub const JSON_PATH: &str = "BENCH_FAULTS.json";

/// Functional sweep: requests per cell and bytes per request. 512 KiB
/// spans several 64 KiB fault pages, so touch-ahead has a window to win.
const REQUESTS: usize = 40;
const REQ_BYTES: usize = 512 << 10;

/// Injected fault rates swept in Part A (the page-fault probability;
/// the other fault classes scale down from it — see `FaultRates::sweep`).
const RATES: [f64; 6] = [0.0, 0.02, 0.05, 0.1, 0.2, 0.5];

/// Part B: per-page fault probability of the ERAT model and the injected
/// CSB-error rates layered on top.
const SIM_PAGE_FAULT_P: f64 = 0.05;
const SIM_INJECTED: [f64; 3] = [0.0, 0.1, 0.3];
const SIM_TOUCH_WINDOW: u64 = 32;

/// One functional sweep cell (Part A).
struct FnCell {
    policy: &'static str,
    rate: f64,
    /// Decompression throughput over produced bytes, MB/s.
    mb_per_s: f64,
    /// p99 of the per-request decompress latency, µs.
    p99_us: f64,
    /// Compression-direction throughput over consumed bytes, MB/s.
    compress_mb_per_s: f64,
    page_faults: u64,
    retries: u64,
    resubmissions: u64,
    fallbacks: u64,
}

/// One simulator sweep cell (Part B).
struct SysCell {
    policy: &'static str,
    injected: f64,
    gbps: f64,
    p99_us: f64,
    faults: u64,
    csb_errors: u64,
    retries: u64,
}

struct Measured {
    /// Instrumented-but-quiet cost vs an uninstrumented handle,
    /// as a fraction (0.03 = 3% slower).
    rate0_overhead: f64,
    cells: Vec<FnCell>,
    sys: Vec<SysCell>,
}

/// The shared request set: raw payloads and their gzip framings.
struct Inputs {
    chunks: Vec<Vec<u8>>,
    gz: Vec<Vec<u8>>,
}

impl Inputs {
    fn build(requests: usize, req_bytes: usize) -> Self {
        let data = nx_corpus::mixed(SEED, requests * req_bytes);
        let level = CompressionLevel::default();
        let chunks: Vec<Vec<u8>> = data.chunks(req_bytes).map(<[u8]>::to_vec).collect();
        let gz = chunks
            .iter()
            .map(|c| nx_core::software::compress(c, level, Format::Gzip))
            .collect();
        Inputs { chunks, gz }
    }
}

fn inputs() -> &'static Inputs {
    static CELL: OnceLock<Inputs> = OnceLock::new();
    CELL.get_or_init(|| Inputs::build(REQUESTS, REQ_BYTES))
}

fn p99(lat_us: &mut [f64]) -> f64 {
    if lat_us.is_empty() {
        return 0.0;
    }
    lat_us.sort_by(f64::total_cmp);
    let idx = ((lat_us.len() as f64 * 0.99).ceil() as usize).clamp(1, lat_us.len());
    lat_us[idx - 1]
}

/// Runs one Part A cell: the full request set through a faulted handle,
/// verifying every answer against the clean reference.
fn run_cell(ins: &Inputs, policy_name: &'static str, rate: f64, policy: RecoveryPolicy) -> FnCell {
    let plan = FaultPlan::seeded(SEED ^ (rate * 1000.0) as u64, FaultRates::sweep(rate));
    let nx = Nx::with_faults(AccelConfig::power9(), plan, policy);

    let mut lat = Vec::with_capacity(ins.gz.len());
    let mut out_bytes = 0usize;
    let t0 = Instant::now();
    for (gz, chunk) in ins.gz.iter().zip(&ins.chunks) {
        let t = Instant::now();
        let out = nx.decompress(gz, Format::Gzip).expect("recovery exhausted");
        lat.push(t.elapsed().as_secs_f64() * 1e6);
        assert_eq!(
            out.bytes, *chunk,
            "recovered decompression must be byte-identical"
        );
        out_bytes += out.bytes.len();
    }
    let secs = t0.elapsed().as_secs_f64();

    let mut in_bytes = 0usize;
    let ct0 = Instant::now();
    for chunk in ins.chunks.iter().step_by(5) {
        let out = nx
            .compress(chunk, Format::Gzip)
            .expect("recovery exhausted");
        let back = nx_core::software::decompress(&out.bytes, Format::Gzip).expect("framing intact");
        assert_eq!(back, *chunk, "recovered compression must round-trip");
        in_bytes += chunk.len();
    }
    let csecs = ct0.elapsed().as_secs_f64();

    let stats = nx.fault_stats().expect("faulted handle exposes stats");
    FnCell {
        policy: policy_name,
        rate,
        mb_per_s: out_bytes as f64 / secs / 1e6,
        p99_us: p99(&mut lat),
        compress_mb_per_s: in_bytes as f64 / csecs / 1e6,
        page_faults: stats.page_fault_count(),
        retries: stats.retry_count(),
        resubmissions: stats.resubmission_count(),
        fallbacks: stats.software_fallback_count(),
    }
}

/// Wall-clock seconds to decompress the whole request set on `nx`.
fn decompress_secs(nx: &Nx) -> f64 {
    let ins = inputs();
    let t0 = Instant::now();
    for gz in &ins.gz {
        let out = nx.decompress(gz, Format::Gzip).expect("valid stream");
        std::hint::black_box(out.bytes.len());
    }
    t0.elapsed().as_secs_f64()
}

/// Runs one Part B cell: the simulator under `policy` with `injected`
/// CSB-error pressure layered on the ERAT page-fault model.
fn run_sim_cell(policy_name: &'static str, policy: FaultPolicy, injected: f64) -> SysCell {
    let topo = Topology::power9_chip();
    let stream = RequestStream::saturating(
        SEED,
        96,
        4 << 20,
        &[CorpusKind::Json, CorpusKind::Logs, CorpusKind::Binary],
        Function::Compress,
    );
    let mut sim = SystemSim::new(&topo, CompletionMode::Interrupt, policy, SEED);
    if injected > 0.0 {
        let rates = FaultRates {
            csb_error: injected,
            timeout: injected * 0.25,
            ..FaultRates::none()
        };
        sim = sim.with_injected_faults(FaultPlan::seeded(SEED, rates));
    }
    let mut res = sim.run(&stream);
    SysCell {
        policy: policy_name,
        injected,
        gbps: res.throughput_gbps(),
        p99_us: res.p99_latency_us(),
        faults: res.faults,
        csb_errors: res.csb_errors,
        retries: res.retries,
    }
}

/// Runs the sweep once per process; `run()` and [`metrics`] share it.
fn measured() -> &'static Measured {
    static CELL: OnceLock<Measured> = OnceLock::new();
    CELL.get_or_init(|| {
        // Warm the shared inputs outside any timed region.
        let _ = inputs();

        // Interleave the two handles (best-of-4 each) so scheduler noise
        // hits both sides evenly — the passes are only ~100 ms long.
        let plain = Nx::power9();
        let quiet = Nx::with_faults(
            AccelConfig::power9(),
            FaultPlan::seeded(SEED, FaultRates::none()),
            RecoveryPolicy::default(),
        );
        let (mut baseline, mut instrumented) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..4 {
            baseline = baseline.min(decompress_secs(&plain));
            instrumented = instrumented.min(decompress_secs(&quiet));
        }
        let rate0_overhead = instrumented / baseline - 1.0;

        let mut cells = Vec::new();
        for &rate in &RATES {
            cells.push(run_cell(inputs(), "retry", rate, RecoveryPolicy::default()));
            cells.push(run_cell(
                inputs(),
                "ahead",
                rate,
                RecoveryPolicy::touch_ahead(16),
            ));
        }

        let p = SIM_PAGE_FAULT_P;
        let sys = SIM_INJECTED
            .iter()
            .flat_map(|&injected| {
                [
                    run_sim_cell(
                        "retry",
                        FaultPolicy::RetryOnFault {
                            fault_probability: p,
                        },
                        injected,
                    ),
                    run_sim_cell(
                        "ahead",
                        FaultPolicy::TouchAhead {
                            fault_probability: p,
                            window_pages: SIM_TOUCH_WINDOW,
                        },
                        injected,
                    ),
                    run_sim_cell(
                        "touchfirst",
                        FaultPolicy::TouchFirst {
                            fault_probability: p,
                        },
                        injected,
                    ),
                ]
            })
            .collect();

        Measured {
            rate0_overhead,
            cells,
            sys,
        }
    })
}

/// Renders the full sweep as a JSON array, one object per cell.
fn render_sweep_json(m: &Measured) -> String {
    let mut rows = vec![format!(
        "  {{\"section\": \"overhead\", \"rate0_overhead_pct\": {:.3}}}",
        m.rate0_overhead * 100.0
    )];
    for c in &m.cells {
        rows.push(format!(
            "  {{\"section\": \"functional\", \"policy\": \"{}\", \"rate\": {}, \
             \"mb_per_s\": {:.3}, \"p99_us\": {:.3}, \"compress_mb_per_s\": {:.3}, \
             \"page_faults\": {}, \"retries\": {}, \"resubmissions\": {}, \
             \"software_fallbacks\": {}, \"verified\": true}}",
            c.policy,
            c.rate,
            c.mb_per_s,
            c.p99_us,
            c.compress_mb_per_s,
            c.page_faults,
            c.retries,
            c.resubmissions,
            c.fallbacks
        ));
    }
    for s in &m.sys {
        rows.push(format!(
            "  {{\"section\": \"system\", \"policy\": \"{}\", \"injected\": {}, \
             \"gb_per_s\": {:.3}, \"p99_us\": {:.3}, \"page_faults\": {}, \
             \"csb_errors\": {}, \"retries\": {}}}",
            s.policy, s.injected, s.gbps, s.p99_us, s.faults, s.csb_errors, s.retries
        ));
    }
    format!("[\n{}\n]\n", rows.join(",\n"))
}

/// Static metric names for the curated `tables --json` rows; the full
/// sweep lives in `BENCH_FAULTS.json`.
fn cell_metric_names(policy: &str, permille: u32) -> Option<(&'static str, &'static str)> {
    match (policy, permille) {
        ("retry", 0) => Some(("retry_r000_mb_per_s", "retry_r000_p99_us")),
        ("retry", 20) => Some(("retry_r020_mb_per_s", "retry_r020_p99_us")),
        ("retry", 50) => Some(("retry_r050_mb_per_s", "retry_r050_p99_us")),
        ("retry", 100) => Some(("retry_r100_mb_per_s", "retry_r100_p99_us")),
        ("retry", 200) => Some(("retry_r200_mb_per_s", "retry_r200_p99_us")),
        ("retry", 500) => Some(("retry_r500_mb_per_s", "retry_r500_p99_us")),
        ("ahead", 0) => Some(("ahead_r000_mb_per_s", "ahead_r000_p99_us")),
        ("ahead", 20) => Some(("ahead_r020_mb_per_s", "ahead_r020_p99_us")),
        ("ahead", 50) => Some(("ahead_r050_mb_per_s", "ahead_r050_p99_us")),
        ("ahead", 100) => Some(("ahead_r100_mb_per_s", "ahead_r100_p99_us")),
        ("ahead", 200) => Some(("ahead_r200_mb_per_s", "ahead_r200_p99_us")),
        ("ahead", 500) => Some(("ahead_r500_mb_per_s", "ahead_r500_p99_us")),
        _ => None,
    }
}

/// Machine-readable rows for `tables --json`.
pub fn metrics() -> Vec<MetricRow> {
    let m = measured();
    let mut rows = vec![MetricRow::new(
        "rate0_overhead_pct",
        m.rate0_overhead * 100.0,
        "percent",
    )];
    for c in &m.cells {
        let pm = (c.rate * 1000.0).round() as u32;
        if let Some((mbps, p99)) = cell_metric_names(c.policy, pm) {
            rows.push(MetricRow::new(mbps, c.mb_per_s, "MB/s"));
            rows.push(MetricRow::new(p99, c.p99_us, "us"));
        }
    }
    for s in &m.sys {
        if (s.injected - 0.3).abs() < 1e-9 {
            let (gbps, p99): (&'static str, &'static str) = match s.policy {
                "retry" => ("sim_retry_i300_gbps", "sim_retry_i300_p99_us"),
                "ahead" => ("sim_ahead_i300_gbps", "sim_ahead_i300_p99_us"),
                _ => ("sim_touchfirst_i300_gbps", "sim_touchfirst_i300_p99_us"),
            };
            rows.push(MetricRow::new(gbps, s.gbps, "GB/s"));
            rows.push(MetricRow::new(p99, s.p99_us, "us"));
        }
    }
    rows
}

/// Runs the experiment, writes `BENCH_FAULTS.json`, renders the report.
pub fn run() -> String {
    let m = measured();

    let mut fn_table = Table::new(vec![
        "policy",
        "rate",
        "MB/s",
        "p99 µs",
        "faults",
        "resubmits",
        "fallbacks",
    ]);
    for c in &m.cells {
        fn_table.row(vec![
            c.policy.to_string(),
            format!("{:.2}", c.rate),
            format!("{:.1}", c.mb_per_s),
            format!("{:.0}", c.p99_us),
            c.page_faults.to_string(),
            c.resubmissions.to_string(),
            c.fallbacks.to_string(),
        ]);
    }

    let mut sys_table = Table::new(vec![
        "policy",
        "injected",
        "GB/s",
        "p99 µs",
        "page faults",
        "CSB errors",
        "retries",
    ]);
    for s in &m.sys {
        sys_table.row(vec![
            s.policy.to_string(),
            format!("{:.2}", s.injected),
            format!("{:.2}", s.gbps),
            format!("{:.0}", s.p99_us),
            s.faults.to_string(),
            s.csb_errors.to_string(),
            s.retries.to_string(),
        ]);
    }

    let json = render_sweep_json(m);
    let json_note = match std::fs::write(JSON_PATH, &json) {
        Ok(()) => format!("full sweep written to `{JSON_PATH}`"),
        Err(err) => format!("could not write `{JSON_PATH}`: {err}"),
    };

    format!(
        "## E18 — {TITLE}\n\nPart A: {REQUESTS} × {} KiB gzip requests per cell through \
         `Nx::with_faults`; every response verified byte-identical to the clean \
         reference. `retry` resubmits from the faulting offset with only that page \
         made resident; `ahead` touches 16 pages past the fault. Quiet-plan overhead \
         vs an uninstrumented handle: {:+.2}% (bar: ≤ 5%).\n\n{}\nPart B: simulator, \
         POWER9 chip, 96 × 4 MiB saturating compress requests; ERAT page-fault \
         probability {:.2} per page, with injected CSB-error pressure on top \
         (retried with capped exponential backoff).\n\n{}\n{json_note}\n",
        REQ_BYTES >> 10,
        m.rate0_overhead * 100.0,
        fn_table.render(),
        SIM_PAGE_FAULT_P,
        sys_table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulted_cell_recovers_byte_identical_answers() {
        // One small cell at a heavy fault rate: run_cell asserts
        // byte-identity internally; this checks injection actually
        // fired and recovery did real work.
        let ins = Inputs::build(4, 256 << 10);
        let cell = run_cell(&ins, "retry", 0.4, RecoveryPolicy::default());
        assert!(cell.page_faults > 0, "no page faults injected at rate 0.4");
        assert!(cell.resubmissions > 0, "faults must force resubmissions");
    }

    #[test]
    fn metric_names_are_unique() {
        let mut names: Vec<&str> = Vec::new();
        for policy in ["retry", "ahead"] {
            for pm in [0, 20, 50, 100, 200, 500] {
                let (a, b) = cell_metric_names(policy, pm).unwrap();
                names.push(a);
                names.push(b);
            }
        }
        names.extend([
            "rate0_overhead_pct",
            "sim_retry_i300_gbps",
            "sim_retry_i300_p99_us",
            "sim_ahead_i300_gbps",
            "sim_ahead_i300_p99_us",
            "sim_touchfirst_i300_gbps",
            "sim_touchfirst_i300_p99_us",
        ]);
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn p99_picks_the_tail() {
        let mut lat: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(p99(&mut lat), 99.0);
        let mut one = vec![7.0];
        assert_eq!(p99(&mut one), 7.0);
        assert_eq!(p99(&mut []), 0.0);
    }

    #[test]
    fn sweep_json_is_well_formed() {
        let m = Measured {
            rate0_overhead: 0.01,
            cells: vec![FnCell {
                policy: "retry",
                rate: 0.1,
                mb_per_s: 100.0,
                p99_us: 5000.0,
                compress_mb_per_s: 40.0,
                page_faults: 12,
                retries: 3,
                resubmissions: 12,
                fallbacks: 0,
            }],
            sys: vec![SysCell {
                policy: "ahead",
                injected: 0.3,
                gbps: 10.0,
                p99_us: 900.0,
                faults: 40,
                csb_errors: 20,
                retries: 25,
            }],
        };
        let json = render_sweep_json(&m);
        assert!(json.starts_with("[\n") && json.ends_with("]\n"));
        assert_eq!(json.matches("{\"section\"").count(), 3);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
