//! E2 — Decompression throughput vs request size.
//!
//! Paper shape reproduced: decompression output rate rises with request
//! size and with the compression ratio of the payload (each decoded
//! symbol expands through the wide copy datapath).

use crate::{fmt_bytes, Table, SEED};
use nx_accel::{AccelConfig, Accelerator};

/// One-line experiment title shown by `tables list`.
pub const TITLE: &str = "Decompression throughput vs request size (POWER9 & z15)";

/// Runs the experiment and renders its report.
pub fn run() -> String {
    let mut table = Table::new(vec![
        "uncompressed size",
        "POWER9 GB/s (out)",
        "z15 GB/s (out)",
        "stream ratio",
    ]);
    let mut p9 = Accelerator::new(AccelConfig::power9());
    let mut z15 = Accelerator::new(AccelConfig::z15());
    for &size in &super::e1::SIZES {
        let data = nx_corpus::mixed(SEED, size);
        let (stream, cr) = p9.compress(&data);
        let (_, d9) = p9.decompress(&stream).expect("own stream");
        let (_, d15) = z15.decompress(&stream).expect("own stream");
        table.row(vec![
            fmt_bytes(size as u64),
            format!("{:.2}", d9.throughput_gbps()),
            format!("{:.2}", d15.throughput_gbps()),
            format!("{:.2}", cr.ratio()),
        ]);
    }
    format!(
        "## E2 — {TITLE}\n\nStreams produced by the POWER9 engine on the mixed corpus; \
         throughput is output-side.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decompression_scales_with_ratio() {
        let mut p9 = Accelerator::new(AccelConfig::power9());
        let redundant = nx_corpus::CorpusKind::Redundant.generate(SEED, 1 << 20);
        let text = nx_corpus::CorpusKind::Text.generate(SEED, 1 << 20);
        let (sr, _) = p9.compress(&redundant);
        let (st, _) = p9.compress(&text);
        let (_, dr) = p9.decompress(&sr).unwrap();
        let (_, dt) = p9.decompress(&st).unwrap();
        assert!(dr.throughput_gbps() > dt.throughput_gbps());
    }
}
