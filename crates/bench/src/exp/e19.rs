//! E19 — Telemetry overhead: the instrumented request path vs the no-op
//! sink, plus a determinism pin on the span traces.
//!
//! The observability layer (`nx-telemetry`) promises two things at once:
//! that a disabled sink costs essentially nothing on the hot path, and
//! that an enabled sink's span traces are *deterministic* — pure
//! functions of the workload and fault seed, never of thread scheduling
//! or wall clock. This experiment measures the first claim and pins the
//! second.
//!
//! Part A drives the same decompression request set through two `Nx`
//! handles — one with the default disabled sink, one with a live
//! registry, histograms and span ring — interleaved best-of-4 so
//! scheduler noise hits both sides evenly (the e18 pattern). The
//! acceptance bar is ≤ 5% overhead. Part B runs one faulted workload
//! twice from the same seed on two fresh instrumented handles and
//! asserts the Chrome-trace dumps are byte-identical; the trace of the
//! first run lands in `BENCH_TRACE.json` and all three exporters
//! (Prometheus, JSON snapshot, Chrome trace) are exercised on live data.
//!
//! `run()` emits `BENCH_OBS.json` with per-workload overheads and the
//! determinism verdict; `tables --json` gets the curated scalars.

use super::MetricRow;
use crate::{Table, SEED};
use nx_accel::AccelConfig;
use nx_core::fault::{FaultPlan, FaultRates, RecoveryPolicy};
use nx_core::{Format, Nx};
use nx_corpus::CorpusKind;
use nx_deflate::CompressionLevel;
use nx_telemetry::{to_chrome_trace, to_json, to_prometheus, MetricsRegistry, TelemetrySink};
use std::sync::OnceLock;
use std::time::Instant;

/// One-line experiment title shown by `tables list`.
pub const TITLE: &str = "Telemetry overhead: instrumented vs no-op sink, trace determinism";

/// Where the machine-readable overhead rows land (workspace root under
/// `cargo run`).
pub const JSON_PATH: &str = "BENCH_OBS.json";

/// Where the Chrome trace-event dump of the pinned run lands.
pub const TRACE_PATH: &str = "BENCH_TRACE.json";

/// Modeled core cycles per microsecond for the Chrome export (the
/// 2.5 GHz POWER9 core clock the span domain is priced in).
const CYCLES_PER_US: f64 = 2500.0;

/// Per-workload request count and size. 32 × 256 KiB keeps each timed
/// pass around the e18 scale: long enough to swamp timer noise, short
/// enough that best-of-4 × 2 sides × 3 workloads stays quick.
const REQUESTS: usize = 32;
const REQ_BYTES: usize = 256 << 10;

/// Corpus kinds swept (the E10 executor mix: text-ish, structured, binary).
const WORKLOADS: [(&str, CorpusKind); 3] = [
    ("text", CorpusKind::Text),
    ("json", CorpusKind::Json),
    ("binary", CorpusKind::Binary),
];

/// One overhead cell.
struct Cell {
    workload: &'static str,
    baseline_mb_per_s: f64,
    instrumented_mb_per_s: f64,
    /// Fractional slowdown (0.03 = 3%).
    overhead: f64,
}

struct Measured {
    cells: Vec<Cell>,
    /// Both faulted replays produced byte-identical Chrome traces.
    trace_deterministic: bool,
    /// Spans recorded by the pinned run.
    trace_spans: usize,
    /// The pinned run's Chrome trace (written to [`TRACE_PATH`]).
    chrome: String,
    /// Prometheus text exposition length (exporter smoke evidence).
    prometheus_bytes: usize,
    /// JSON snapshot length (exporter smoke evidence).
    json_bytes: usize,
}

/// Builds one workload's gzip request set.
fn workload(kind: CorpusKind) -> Vec<Vec<u8>> {
    let level = CompressionLevel::default();
    let data = kind.generate(SEED, REQUESTS * REQ_BYTES);
    data.chunks(REQ_BYTES)
        .map(|c| nx_core::software::compress(c, level, Format::Gzip))
        .collect()
}

/// Wall-clock seconds to decompress the request set on `nx`, returning
/// the produced byte count alongside.
fn decompress_pass(nx: &Nx, gz: &[Vec<u8>]) -> (f64, usize) {
    let mut out_bytes = 0usize;
    let t0 = Instant::now();
    for g in gz {
        let out = nx.decompress(g, Format::Gzip).expect("valid stream");
        out_bytes += out.bytes.len();
        std::hint::black_box(out.bytes.len());
    }
    (t0.elapsed().as_secs_f64(), out_bytes)
}

/// An instrumented handle: live registry, histograms, span ring.
fn instrumented_nx() -> Nx {
    Nx::power9().with_telemetry(TelemetrySink::enabled(MetricsRegistry::new()))
}

/// A faulted + instrumented handle from a fixed seed (the determinism
/// pin re-runs this exact construction).
fn pinned_nx() -> Nx {
    let plan = FaultPlan::seeded(SEED, FaultRates::sweep(0.1));
    Nx::with_faults(AccelConfig::power9(), plan, RecoveryPolicy::touch_ahead(8))
        .with_telemetry(TelemetrySink::enabled(MetricsRegistry::new()))
}

/// Runs the faulted workload once on a fresh pinned handle and returns
/// its Chrome trace plus span count and registry exports.
fn pinned_trace(gz: &[Vec<u8>]) -> (String, usize, String, String) {
    let nx = pinned_nx();
    for g in gz {
        let out = nx.decompress(g, Format::Gzip).expect("recovery exhausted");
        std::hint::black_box(out.bytes.len());
    }
    let spans = nx.telemetry().trace();
    let chrome = to_chrome_trace(&spans, CYCLES_PER_US);
    let snap = nx
        .telemetry()
        .registry()
        .expect("enabled sink has a registry")
        .snapshot();
    (chrome, spans.len(), to_prometheus(&snap), to_json(&snap))
}

/// Runs the sweep once per process; `run()` and [`metrics`] share it.
fn measured() -> &'static Measured {
    static CELL: OnceLock<Measured> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut cells = Vec::new();
        for (name, kind) in WORKLOADS {
            let gz = workload(kind);
            let plain = Nx::power9();
            let traced = instrumented_nx();
            // Interleave best-of-4 so scheduler noise hits both sides.
            let (mut base, mut inst) = (f64::INFINITY, f64::INFINITY);
            let mut out_bytes = 0usize;
            for _ in 0..4 {
                let (b, ob) = decompress_pass(&plain, &gz);
                base = base.min(b);
                out_bytes = ob;
                let (t, _) = decompress_pass(&traced, &gz);
                inst = inst.min(t);
            }
            cells.push(Cell {
                workload: name,
                baseline_mb_per_s: out_bytes as f64 / base / 1e6,
                instrumented_mb_per_s: out_bytes as f64 / inst / 1e6,
                overhead: inst / base - 1.0,
            });
        }

        // Part B: the determinism pin. Two fresh handles, same fault
        // seed, same workload → byte-identical Chrome traces.
        let gz = workload(CorpusKind::Logs);
        let (chrome_a, spans, prometheus, json) = pinned_trace(&gz);
        let (chrome_b, _, _, _) = pinned_trace(&gz);

        Measured {
            cells,
            trace_deterministic: chrome_a == chrome_b,
            trace_spans: spans,
            chrome: chrome_a,
            prometheus_bytes: prometheus.len(),
            json_bytes: json.len(),
        }
    })
}

/// Worst overhead across the sweep, as a fraction.
fn max_overhead(m: &Measured) -> f64 {
    m.cells.iter().map(|c| c.overhead).fold(0.0, f64::max)
}

/// Renders the machine-readable overhead rows ([`JSON_PATH`]).
fn render_obs_json(m: &Measured) -> String {
    let mut rows: Vec<String> = m
        .cells
        .iter()
        .map(|c| {
            format!(
                "  {{\"section\": \"overhead\", \"workload\": \"{}\", \
                 \"baseline_mb_per_s\": {:.3}, \"instrumented_mb_per_s\": {:.3}, \
                 \"overhead_pct\": {:.3}}}",
                c.workload,
                c.baseline_mb_per_s,
                c.instrumented_mb_per_s,
                c.overhead * 100.0
            )
        })
        .collect();
    rows.push(format!(
        "  {{\"section\": \"summary\", \"max_overhead_pct\": {:.3}, \"bar_pct\": 5.0}}",
        max_overhead(m) * 100.0
    ));
    rows.push(format!(
        "  {{\"section\": \"determinism\", \"trace_deterministic\": {}, \
         \"trace_spans\": {}, \"prometheus_bytes\": {}, \"json_bytes\": {}}}",
        m.trace_deterministic, m.trace_spans, m.prometheus_bytes, m.json_bytes
    ));
    format!("[\n{}\n]\n", rows.join(",\n"))
}

/// Machine-readable rows for `tables --json`.
pub fn metrics() -> Vec<MetricRow> {
    let m = measured();
    let mut rows = Vec::new();
    for c in &m.cells {
        let name: &'static str = match c.workload {
            "text" => "overhead_text_pct",
            "json" => "overhead_json_pct",
            _ => "overhead_binary_pct",
        };
        rows.push(MetricRow::new(name, c.overhead * 100.0, "percent"));
    }
    rows.push(MetricRow::new(
        "max_overhead_pct",
        max_overhead(m) * 100.0,
        "percent",
    ));
    rows.push(MetricRow::new(
        "trace_deterministic",
        f64::from(u8::from(m.trace_deterministic)),
        "bool",
    ));
    rows.push(MetricRow::new("trace_spans", m.trace_spans as f64, "count"));
    rows
}

/// Runs the experiment, writes [`JSON_PATH`] and [`TRACE_PATH`],
/// renders the report.
pub fn run() -> String {
    let m = measured();

    let mut table = Table::new(vec!["workload", "baseline MB/s", "traced MB/s", "overhead"]);
    for c in &m.cells {
        table.row(vec![
            c.workload.to_string(),
            format!("{:.1}", c.baseline_mb_per_s),
            format!("{:.1}", c.instrumented_mb_per_s),
            format!("{:+.2}%", c.overhead * 100.0),
        ]);
    }

    let obs = render_obs_json(m);
    let obs_note = match std::fs::write(JSON_PATH, &obs) {
        Ok(()) => format!("overhead rows written to `{JSON_PATH}`"),
        Err(err) => format!("could not write `{JSON_PATH}`: {err}"),
    };
    let trace_note = match std::fs::write(TRACE_PATH, &m.chrome) {
        Ok(()) => format!(
            "Chrome trace ({} spans) written to `{TRACE_PATH}`",
            m.trace_spans
        ),
        Err(err) => format!("could not write `{TRACE_PATH}`: {err}"),
    };

    format!(
        "## E19 — {TITLE}\n\nPart A: {REQUESTS} × {} KiB gzip decompressions per workload, \
         interleaved best-of-4, no-op sink vs live registry + span ring. \
         Worst overhead {:+.2}% (bar: ≤ 5%).\n\n{}\nPart B: one faulted workload replayed \
         from the same seed on two fresh instrumented handles — Chrome traces \
         byte-identical: {}. Exporters exercised on the live registry: Prometheus \
         {} B, JSON snapshot {} B.\n\n{obs_note}\n{trace_note}\n",
        REQ_BYTES >> 10,
        max_overhead(m) * 100.0,
        table.render(),
        m.trace_deterministic,
        m.prometheus_bytes,
        m.json_bytes
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_traces_are_byte_identical() {
        // The core determinism claim, on a small workload so the test
        // stays fast: same seed + same requests → same Chrome trace.
        let gz: Vec<Vec<u8>> = workload(CorpusKind::Logs).into_iter().take(4).collect();
        let (a, spans, prometheus, json) = pinned_trace(&gz);
        let (b, _, _, _) = pinned_trace(&gz);
        assert_eq!(a, b, "trace dumps must not depend on the run");
        assert!(spans > 0, "faulted requests must leave spans");
        assert!(prometheus.contains("nx_request_latency_cycles"));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    }

    #[test]
    fn obs_json_is_well_formed() {
        let m = Measured {
            cells: vec![Cell {
                workload: "text",
                baseline_mb_per_s: 500.0,
                instrumented_mb_per_s: 495.0,
                overhead: 0.0101,
            }],
            trace_deterministic: true,
            trace_spans: 42,
            chrome: String::new(),
            prometheus_bytes: 10,
            json_bytes: 20,
        };
        let json = render_obs_json(&m);
        assert!(json.starts_with("[\n") && json.ends_with("]\n"));
        assert_eq!(json.matches("{\"section\"").count(), 3);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"max_overhead_pct\": 1.010"));
        assert!(json.contains("\"trace_deterministic\": true"));
    }
}
