//! E15 — Submission models: POWER9 asynchronous (paste/CSB) vs z15
//! synchronous (`DFLTCC`).
//!
//! The two shipped generations integrate the same class of engine behind
//! very different software contracts. POWER9's asynchronous CRB path adds
//! submission/notification latency but frees the core while the engine
//! runs; z15's synchronous instruction has near-zero issue overhead but
//! occupies the issuing core for the whole request (and cores of one chip
//! serialize on the shared engine). This experiment quantifies both edges
//! of that trade-off.

use crate::{fmt_bytes, Table, SEED};
use nx_accel::AccelConfig;
use nx_corpus::CorpusKind;
use nx_sim::SimTime;
use nx_sys::crb::Function;
use nx_sys::erat::FaultPolicy;
use nx_sys::zsync::ZsyncPath;
use nx_sys::{CompletionMode, CostModel, RequestStream, SystemSim, Topology};

/// One-line experiment title shown by `tables list`.
pub const TITLE: &str = "Submission models: POWER9 async paste/CSB vs z15 sync DFLTCC";

/// Request sizes swept.
pub const SIZES: [u64; 4] = [4 << 10, 64 << 10, 1 << 20, 16 << 20];

/// Async-path latency and CPU cycles for one idle-system request.
fn async_request(size: u64, mode: CompletionMode) -> (f64, u64) {
    let mut sim = SystemSim::new(
        &Topology::power9_chip(),
        mode,
        FaultPolicy::RetryOnFault {
            fault_probability: 0.0,
        },
        SEED,
    );
    let stream = RequestStream::saturating(SEED, 1, size, &[CorpusKind::Json], Function::Compress);
    let mut res = sim.run(&stream);
    (res.p99_latency_us(), res.cpu_cycles)
}

/// Sync-path latency and CPU cycles for one idle-engine request.
fn sync_request(size: u64) -> (f64, u64) {
    let cost = CostModel::calibrate(&AccelConfig::z15(), SEED);
    let mut path = ZsyncPath::new(cost, 5.2);
    let o = path.issue(SimTime::ZERO, Function::Compress, CorpusKind::Json, size);
    (o.core_busy.as_us_f64(), o.cpu_cycles)
}

/// Runs the experiment and renders its report.
pub fn run() -> String {
    let mut table = Table::new(vec![
        "size",
        "P9 async poll lat (us)",
        "P9 async intr lat (us)",
        "z15 sync lat (us)",
        "P9 intr CPU cyc",
        "z15 sync CPU cyc",
    ]);
    for &size in &SIZES {
        let (poll_lat, _) = async_request(size, CompletionMode::Poll);
        let (intr_lat, intr_cpu) = async_request(size, CompletionMode::Interrupt);
        let (sync_lat, sync_cpu) = sync_request(size);
        table.row(vec![
            fmt_bytes(size),
            format!("{poll_lat:.1}"),
            format!("{intr_lat:.1}"),
            format!("{sync_lat:.1}"),
            intr_cpu.to_string(),
            sync_cpu.to_string(),
        ]);
    }
    format!(
        "## E15 — {TITLE}\n\nIdle system, JSON-class payload. The sync path wins on \
         latency (no paste/notification) and the z15 engine is 2x faster, but its \
         issuing core is busy for the whole request; the async interrupt path costs \
         microseconds of latency and nearly zero CPU.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_beats_async_on_small_request_latency() {
        let (intr_lat, _) = async_request(4 << 10, CompletionMode::Interrupt);
        let (sync_lat, _) = sync_request(4 << 10);
        assert!(
            sync_lat < intr_lat,
            "sync {sync_lat} vs async-intr {intr_lat}"
        );
    }

    #[test]
    fn async_interrupt_beats_sync_on_cpu_for_large_requests() {
        let (_, intr_cpu) = async_request(16 << 20, CompletionMode::Interrupt);
        let (_, sync_cpu) = sync_request(16 << 20);
        assert!(
            sync_cpu > 20 * intr_cpu,
            "sync {sync_cpu} vs async-intr {intr_cpu} CPU cycles"
        );
    }
}
