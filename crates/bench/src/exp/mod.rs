//! The experiment registry: one module per table/figure of the paper's
//! evaluation (identifiers E1–E26; see DESIGN.md for the mapping and the
//! source-text caveat on numbering).

pub mod e1;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e13;
pub mod e14;
pub mod e15;
pub mod e16;
pub mod e17;
pub mod e18;
pub mod e19;
pub mod e2;
pub mod e20;
pub mod e21;
pub mod e22;
pub mod e23;
pub mod e24;
pub mod e25;
pub mod e26;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod e9;

/// One machine-readable metric row for `tables --json`.
#[derive(Debug, Clone, Copy)]
pub struct MetricRow {
    /// Stable metric identifier (snake_case, unique within the run).
    pub name: &'static str,
    /// The measured value.
    pub value: f64,
    /// Unit of `value` (`"MB/s"`, `"us"`, `"percent"`, `"ratio"`,
    /// `"bytes"`, `"count"`, `"bool"`).
    pub unit: &'static str,
}

impl MetricRow {
    /// Builds one row.
    pub fn new(name: &'static str, value: f64, unit: &'static str) -> Self {
        Self { name, value, unit }
    }
}

/// Machine-readable metric rows an experiment can expose for
/// `tables --json`.
pub type MetricFn = fn() -> Vec<MetricRow>;

/// An experiment entry: id, one-line description, runner.
pub struct Experiment {
    /// Identifier (`"e1"` …).
    pub id: &'static str,
    /// What the experiment reproduces.
    pub title: &'static str,
    /// Runs the experiment, returning the rendered report.
    pub run: fn() -> String,
    /// Machine-readable `(metric, value)` rows for `tables --json`,
    /// when the experiment exposes them.
    pub metrics: Option<MetricFn>,
}

/// All experiments, in order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "e1",
            title: e1::TITLE,
            run: e1::run,
            metrics: None,
        },
        Experiment {
            id: "e2",
            title: e2::TITLE,
            run: e2::run,
            metrics: None,
        },
        Experiment {
            id: "e3",
            title: e3::TITLE,
            run: e3::run,
            metrics: None,
        },
        Experiment {
            id: "e4",
            title: e4::TITLE,
            run: e4::run,
            metrics: None,
        },
        Experiment {
            id: "e5",
            title: e5::TITLE,
            run: e5::run,
            metrics: None,
        },
        Experiment {
            id: "e6",
            title: e6::TITLE,
            run: e6::run,
            metrics: None,
        },
        Experiment {
            id: "e7",
            title: e7::TITLE,
            run: e7::run,
            metrics: None,
        },
        Experiment {
            id: "e8",
            title: e8::TITLE,
            run: e8::run,
            metrics: None,
        },
        Experiment {
            id: "e9",
            title: e9::TITLE,
            run: e9::run,
            metrics: None,
        },
        Experiment {
            id: "e10",
            title: e10::TITLE,
            run: e10::run,
            metrics: None,
        },
        Experiment {
            id: "e11",
            title: e11::TITLE,
            run: e11::run,
            metrics: None,
        },
        Experiment {
            id: "e12",
            title: e12::TITLE,
            run: e12::run,
            metrics: None,
        },
        Experiment {
            id: "e13",
            title: e13::TITLE,
            run: e13::run,
            metrics: None,
        },
        Experiment {
            id: "e14",
            title: e14::TITLE,
            run: e14::run,
            metrics: None,
        },
        Experiment {
            id: "e15",
            title: e15::TITLE,
            run: e15::run,
            metrics: None,
        },
        Experiment {
            id: "e16",
            title: e16::TITLE,
            run: e16::run,
            metrics: None,
        },
        Experiment {
            id: "e17",
            title: e17::TITLE,
            run: e17::run,
            metrics: Some(e17::metrics),
        },
        Experiment {
            id: "e18",
            title: e18::TITLE,
            run: e18::run,
            metrics: Some(e18::metrics),
        },
        Experiment {
            id: "e19",
            title: e19::TITLE,
            run: e19::run,
            metrics: Some(e19::metrics),
        },
        Experiment {
            id: "e20",
            title: e20::TITLE,
            run: e20::run,
            metrics: Some(e20::metrics),
        },
        Experiment {
            id: "e21",
            title: e21::TITLE,
            run: e21::run,
            metrics: Some(e21::metrics),
        },
        Experiment {
            id: "e22",
            title: e22::TITLE,
            run: e22::run,
            metrics: Some(e22::metrics),
        },
        Experiment {
            id: "e23",
            title: e23::TITLE,
            run: e23::run,
            metrics: Some(e23::metrics),
        },
        Experiment {
            id: "e24",
            title: e24::TITLE,
            run: e24::run,
            metrics: Some(e24::metrics),
        },
        Experiment {
            id: "e25",
            title: e25::TITLE,
            run: e25::run,
            metrics: Some(e25::metrics),
        },
        Experiment {
            id: "e26",
            title: e26::TITLE,
            run: e26::run,
            metrics: Some(e26::metrics),
        },
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn registry_is_complete_and_unique() {
        let all = super::all();
        assert_eq!(all.len(), 26);
        let mut ids: Vec<&str> = all.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 26);
    }
}
