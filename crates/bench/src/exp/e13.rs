//! E13 — Area and energy.
//!
//! Area cannot be measured in a software model: the first table restates
//! the **paper's reported constants** (labeled as such); the second
//! derives energy-per-byte from the parametric model in
//! `nx_accel::energy` on an actual modeled request, against a software
//! core's power over its measured wall time.

use crate::{Table, SEED};
use nx_accel::energy::{paper_claims, EnergyModel};
use nx_accel::{AccelConfig, Accelerator};
use nx_deflate::CompressionLevel;
use nx_sys::SoftwareBaseline;

/// One-line experiment title shown by `tables list`.
pub const TITLE: &str = "Area (paper constants) and energy per byte (model)";

/// Runs the experiment and renders its report.
pub fn run() -> String {
    let claims = paper_claims();
    let mut area = Table::new(vec!["quantity", "value", "source"]);
    area.row(vec![
        "accelerator area fraction of POWER9 die".to_string(),
        format!("< {:.1}%", claims.p9_area_fraction * 100.0),
        "paper abstract (not measured here)".to_string(),
    ]);
    area.row(vec![
        "implied area per accelerator".to_string(),
        format!("≈ {:.1} mm²", claims.p9_area_fraction * claims.p9_die_mm2),
        "derived from published die size".to_string(),
    ]);
    area.row(vec![
        "speedup vs 1 core / vs 24-core chip".to_string(),
        format!(
            "{:.0}x / {:.0}x",
            claims.p9_single_core_speedup, claims.p9_chip_speedup
        ),
        "paper abstract (cf. E3/E4)".to_string(),
    ]);

    let em = EnergyModel::default();
    let data = nx_corpus::mixed(SEED, 16 << 20);
    let mut a = Accelerator::new(AccelConfig::power9());
    let (_, report) = a.compress(&data);
    let accel_j = em.accel_compress_energy_j(&report);
    let accel_nj_b = em.accel_nj_per_byte(&report);

    let per_core =
        SoftwareBaseline::measure_per_core_bps(CompressionLevel::default(), &data[..4 << 20]);
    let sw_secs = data.len() as f64 / per_core;
    let sw_j = em.software_energy_j(sw_secs);
    let sw_nj_b = sw_j * 1e9 / data.len() as f64;

    let mut energy = Table::new(vec!["path", "energy (J, 16 MiB)", "nJ/byte", "vs accel"]);
    energy.row(vec![
        "NX accelerator (model)".to_string(),
        format!("{accel_j:.4}"),
        format!("{accel_nj_b:.3}"),
        "1.0x".to_string(),
    ]);
    energy.row(vec![
        "software core (measured time x core power)".to_string(),
        format!("{sw_j:.3}"),
        format!("{sw_nj_b:.2}"),
        format!("{:.0}x", sw_j / accel_j),
    ]);

    format!(
        "## E13 — {TITLE}\n\n### Area (paper-reported)\n\n{}\n### Energy (parametric model)\n\n{}",
        area.render(),
        energy.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_advantage_is_large() {
        let em = EnergyModel::default();
        let data = nx_corpus::mixed(SEED, 4 << 20);
        let (_, report) = Accelerator::new(AccelConfig::power9()).compress(&data);
        let accel = em.accel_compress_energy_j(&report);
        // Software at a conservative 100 MB/s, 5 W core.
        let sw = em.software_energy_j(data.len() as f64 / 100e6);
        assert!(
            sw / accel > 20.0,
            "energy advantage only {:.1}x",
            sw / accel
        );
    }
}
