//! E6 — End-to-end request latency vs size, poll vs interrupt completion.
//!
//! Paper shape reproduced: small requests are dominated by the fixed
//! submission/completion path (paste + CSB + notification); polling keeps
//! sub-10 µs latency for 4 KB requests while interrupts add the kernel
//! wake-up; large requests converge to the engine's streaming rate either
//! way.

use crate::{fmt_bytes, Table, SEED};
use nx_corpus::CorpusKind;
use nx_sys::crb::Function;
use nx_sys::erat::FaultPolicy;
use nx_sys::{CompletionMode, RequestStream, SystemSim, Topology};

/// One-line experiment title shown by `tables list`.
pub const TITLE: &str = "Request latency vs size: poll vs interrupt completion";

/// Sizes swept.
pub const SIZES: [u64; 6] = [4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20];

fn latency_us(size: u64, mode: CompletionMode) -> f64 {
    let topo = Topology::power9_chip();
    let mut sim = sim(&topo, mode);
    let stream = RequestStream::saturating(SEED, 1, size, &[CorpusKind::Json], Function::Compress);
    let mut res = sim.run(&stream);
    res.p99_latency_us()
}

fn sim(topo: &Topology, mode: CompletionMode) -> SystemSim {
    SystemSim::new(
        topo,
        mode,
        FaultPolicy::RetryOnFault {
            fault_probability: 0.0,
        },
        SEED,
    )
}

/// Runs the experiment and renders its report.
pub fn run() -> String {
    let mut table = Table::new(vec!["size", "poll latency (us)", "interrupt latency (us)"]);
    for &size in &SIZES {
        table.row(vec![
            fmt_bytes(size),
            format!("{:.1}", latency_us(size, CompletionMode::Poll)),
            format!("{:.1}", latency_us(size, CompletionMode::Interrupt)),
        ]);
    }
    format!(
        "## E6 — {TITLE}\n\nSingle idle POWER9 NX unit, JSON-class payload; latency is \
         paste → observed completion.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interrupt_penalty_shows_at_small_sizes_only() {
        let small_poll = latency_us(4 << 10, CompletionMode::Poll);
        let small_intr = latency_us(4 << 10, CompletionMode::Interrupt);
        assert!(
            small_intr > small_poll * 1.5,
            "{small_poll} vs {small_intr}"
        );
        let big_poll = latency_us(4 << 20, CompletionMode::Poll);
        let big_intr = latency_us(4 << 20, CompletionMode::Interrupt);
        assert!(big_intr < big_poll * 1.2, "{big_poll} vs {big_intr}");
    }
}
