//! E20 — Inflate superloop kernels: merged-entry fast path vs the careful
//! reference decoder, per-corpus deflate/inflate throughput, and
//! scratch-reuse gain.
//!
//! PR 4 rebuilt the inflate hot loop around pre-merged Huffman entries
//! (one packed u32 lookup yields base + extra-bit count + code length),
//! a local bit accumulator refilled once per iteration, and wide 8-byte
//! match copies, with a careful per-symbol loop guarding the last 274
//! bytes of input/output. This experiment prices that work four ways:
//!
//! * **Part A** times the fast decoder on the level-6 mixed corpus — the
//!   exact workload PR 1 recorded at 366 MB/s — and the acceptance bar
//!   is ≥ 1.5× that documented baseline.
//! * **Part B** sweeps every corpus class at level 6 and times the fast
//!   decoder, the careful reference (`disable_fast_path`), and the
//!   encoder, interleaved best-of-3 so scheduler noise hits both sides
//!   evenly. Note the careful path *also* profits from the merged
//!   tables, so fast/careful understates the full PR delta; outputs
//!   must be byte-identical on every class.
//! * **Part C** reads the process-wide fast/careful byte counters around
//!   the fast passes — the numbers `nx-telemetry` exports as
//!   `nx_inflate_fast_path_bytes_total` — to report what fraction of
//!   decoded bytes the superloop actually produced.
//! * **Part D** times `inflate_into` with a reused `InflateScratch` +
//!   output buffer against the allocating one-shot on a repeated mixed
//!   payload, isolating what the zero-allocation plumbing buys.
//!
//! `run()` writes `BENCH_KERNELS.json`; `scripts/ci.sh` gates on the
//! summary row's `inflate_mb_per_s` against the committed baseline.

use super::MetricRow;
use crate::{Table, SEED};
use nx_corpus::CorpusKind;
use nx_deflate::decoder::inflate_careful;
use nx_deflate::{
    decode_path_counters, deflate, inflate, inflate_into, CompressionLevel, InflateScratch,
};
use std::sync::OnceLock;
use std::time::Instant;

/// One-line experiment title shown by `tables list`.
pub const TITLE: &str = "Inflate superloop: fast vs careful decoder, scratch reuse";

/// Where the machine-readable kernel rows land (workspace root under
/// `cargo run`). The CI gate parses the summary row of this file.
pub const JSON_PATH: &str = "BENCH_KERNELS.json";

/// Bytes generated per corpus class. 2 MiB is long enough that a timed
/// inflate pass (~3 ms on the fast path) swamps timer noise, short
/// enough that ten classes × best-of-3 × three kernels stays quick.
const PER_KIND: usize = 2 << 20;

/// Mixed-corpus length for the headline Part A measurement (the PR 1
/// baseline workload shape, sized so a pass runs ~10 ms).
const MIXED_LEN: usize = 8 << 20;

/// Mixed-corpus inflate throughput recorded by PR 1 on this container
/// class (CHANGES.md: "inflate 227→366 MiB/s"). The headline speedup is
/// measured against this documented pre-superloop number.
const PR1_BASELINE_MB_PER_S: f64 = 366.0;

/// Timed passes per kernel; the minimum is reported (e18/e19 pattern).
const PASSES: usize = 3;

/// Repetitions of the Part D payload per timed pass, so allocator
/// behaviour (freshly mapped pages vs warm reused capacity) dominates.
const REUSE_REPS: usize = 512;

/// Part D payload length. Small on purpose: per-call fixed costs — the
/// output vector and decode-table allocations the scratch path elides —
/// are a measurable share of a 16 KiB decode but vanish into the body of
/// a 1 MiB one, which left the old measurement at the mercy of timer
/// noise (it once reported a *negative* gain).
const REUSE_LEN: usize = 16 << 10;

/// Part D interleaved passes; more than [`PASSES`] because the gain is a
/// small difference of two close timings and the min needs more samples
/// to stabilise.
const REUSE_PASSES: usize = 7;

/// Acceptance bar: mixed-corpus fast throughput over the PR 1 baseline.
const BAR_SPEEDUP: f64 = 1.5;

/// One corpus class's kernel row.
struct Cell {
    corpus: &'static str,
    /// compressed/plain size ratio at level 6.
    ratio: f64,
    fast_mb_per_s: f64,
    careful_mb_per_s: f64,
    deflate_mb_per_s: f64,
    /// Fast and careful decoders produced byte-identical output.
    identical: bool,
}

struct Measured {
    cells: Vec<Cell>,
    /// Part A: mixed-corpus fast throughput (the PR 1 baseline workload).
    mixed_mb_per_s: f64,
    /// Aggregate (total plain bytes / total minimum time) throughputs
    /// across the corpus sweep.
    fast_mb_per_s: f64,
    careful_mb_per_s: f64,
    deflate_mb_per_s: f64,
    /// Fraction of decoded bytes the superloop produced (0..=1),
    /// measured across the fast timed passes only.
    fast_path_share: f64,
    /// Fractional throughput gain of scratch reuse over the allocating
    /// one-shot (0.10 = reuse is 10% faster).
    reuse_gain: f64,
    all_identical: bool,
}

/// Wall-clock seconds of one call to `f`.
fn timed<F: FnMut()>(mut f: F) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

/// Part D: reuse vs one-shot on a repeated mixed payload, interleaved
/// best-of-[`REUSE_PASSES`] so cache warmth hits both sides evenly.
fn reuse_gain() -> f64 {
    let data = nx_corpus::mixed(SEED, REUSE_LEN);
    let comp = deflate(&data, CompressionLevel::default());
    let mut scratch = InflateScratch::default();
    let mut out = Vec::new();
    // Prime the scratch tables and output capacity once.
    inflate_into(&comp, &mut scratch, &mut out).expect("valid stream");
    let (mut reuse, mut fresh) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..REUSE_PASSES {
        reuse = reuse.min(timed(|| {
            for _ in 0..REUSE_REPS {
                inflate_into(&comp, &mut scratch, &mut out).expect("valid stream");
                std::hint::black_box(out.len());
            }
        }));
        fresh = fresh.min(timed(|| {
            for _ in 0..REUSE_REPS {
                std::hint::black_box(inflate(&comp).expect("valid stream").len());
            }
        }));
    }
    fresh / reuse - 1.0
}

/// Part A: best-of-[`PASSES`] fast inflate on the PR 1 mixed workload.
fn mixed_throughput() -> f64 {
    let data = nx_corpus::mixed(SEED, MIXED_LEN);
    let comp = deflate(&data, CompressionLevel::new(6).expect("level 6 is valid"));
    let mut best = f64::INFINITY;
    for _ in 0..PASSES {
        best = best.min(timed(|| {
            std::hint::black_box(inflate(&comp).expect("valid stream").len());
        }));
    }
    data.len() as f64 / best / 1e6
}

/// Runs the sweep once per process; `run()` and [`metrics`] share it.
fn measured() -> &'static Measured {
    static CELL: OnceLock<Measured> = OnceLock::new();
    CELL.get_or_init(|| {
        let level = CompressionLevel::new(6).expect("level 6 is valid");
        let mut cells = Vec::new();
        let (mut fast_t, mut careful_t, mut deflate_t) = (0.0f64, 0.0f64, 0.0f64);
        let mut plain_total = 0usize;
        let (mut fast_bytes, mut careful_bytes) = (0u64, 0u64);
        let mut all_identical = true;

        for &kind in CorpusKind::all() {
            let data = kind.generate(SEED, PER_KIND);
            let comp = deflate(&data, level);

            // Interleave the three kernels so cache/scheduler noise is
            // shared instead of biasing whichever ran last.
            let (mut ft, mut ct, mut dt) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            let (f0, c0) = decode_path_counters();
            for _ in 0..PASSES {
                ft = ft.min(timed(|| {
                    std::hint::black_box(inflate(&comp).expect("valid stream").len());
                }));
                ct = ct.min(timed(|| {
                    std::hint::black_box(inflate_careful(&comp).expect("valid stream").len());
                }));
                dt = dt.min(timed(|| {
                    std::hint::black_box(deflate(&data, level).len());
                }));
            }
            let (f1, c1) = decode_path_counters();
            // The careful passes also bump the careful counter; subtract
            // their known contribution to isolate the fast passes' mix.
            let careful_pass_bytes = (PASSES * data.len()) as u64;
            let delta_c = (c1 - c0).saturating_sub(careful_pass_bytes);
            fast_bytes += f1 - f0;
            careful_bytes += delta_c;

            let identical = inflate(&comp).expect("valid stream")
                == inflate_careful(&comp).expect("valid stream");
            all_identical &= identical;
            fast_t += ft;
            careful_t += ct;
            deflate_t += dt;
            plain_total += data.len();

            cells.push(Cell {
                corpus: kind.name(),
                ratio: comp.len() as f64 / data.len() as f64,
                fast_mb_per_s: data.len() as f64 / ft / 1e6,
                careful_mb_per_s: data.len() as f64 / ct / 1e6,
                deflate_mb_per_s: data.len() as f64 / dt / 1e6,
                identical,
            });
        }

        let decoded = (fast_bytes + careful_bytes).max(1);
        Measured {
            cells,
            mixed_mb_per_s: mixed_throughput(),
            fast_mb_per_s: plain_total as f64 / fast_t / 1e6,
            careful_mb_per_s: plain_total as f64 / careful_t / 1e6,
            deflate_mb_per_s: plain_total as f64 / deflate_t / 1e6,
            fast_path_share: fast_bytes as f64 / decoded as f64,
            reuse_gain: reuse_gain(),
            all_identical,
        }
    })
}

/// Headline speedup: mixed-corpus fast decode vs the PR 1 baseline.
fn speedup_vs_pr1(m: &Measured) -> f64 {
    m.mixed_mb_per_s / PR1_BASELINE_MB_PER_S
}

/// Renders the machine-readable kernel rows ([`JSON_PATH`]).
fn render_kernels_json(m: &Measured) -> String {
    let mut rows: Vec<String> = m
        .cells
        .iter()
        .map(|c| {
            format!(
                "  {{\"section\": \"kernel\", \"corpus\": \"{}\", \"ratio\": {:.4}, \
                 \"inflate_mb_per_s\": {:.3}, \"careful_mb_per_s\": {:.3}, \
                 \"speedup\": {:.3}, \"deflate_mb_per_s\": {:.3}, \"identical\": {}}}",
                c.corpus,
                c.ratio,
                c.fast_mb_per_s,
                c.careful_mb_per_s,
                c.fast_mb_per_s / c.careful_mb_per_s,
                c.deflate_mb_per_s,
                c.identical
            )
        })
        .collect();
    rows.push(format!(
        "  {{\"section\": \"summary\", \"inflate_mb_per_s\": {:.3}, \
         \"careful_mb_per_s\": {:.3}, \"deflate_mb_per_s\": {:.3}, \
         \"mixed_mb_per_s\": {:.3}, \"pr1_baseline_mb_per_s\": {PR1_BASELINE_MB_PER_S}, \
         \"speedup_vs_pr1\": {:.3}, \"fast_path_pct\": {:.2}, \
         \"reuse_gain_pct\": {:.2}, \"all_identical\": {}, \"bar_speedup\": {BAR_SPEEDUP}}}",
        m.fast_mb_per_s,
        m.careful_mb_per_s,
        m.deflate_mb_per_s,
        m.mixed_mb_per_s,
        speedup_vs_pr1(m),
        m.fast_path_share * 100.0,
        m.reuse_gain * 100.0,
        m.all_identical
    ));
    format!("[\n{}\n]\n", rows.join(",\n"))
}

/// Machine-readable rows for `tables --json`.
pub fn metrics() -> Vec<MetricRow> {
    let m = measured();
    vec![
        MetricRow::new("mixed_mb_per_s", m.mixed_mb_per_s, "MB/s"),
        MetricRow::new("speedup_vs_pr1", speedup_vs_pr1(m), "ratio"),
        MetricRow::new("inflate_mb_per_s", m.fast_mb_per_s, "MB/s"),
        MetricRow::new("careful_mb_per_s", m.careful_mb_per_s, "MB/s"),
        MetricRow::new("deflate_mb_per_s", m.deflate_mb_per_s, "MB/s"),
        MetricRow::new("fast_path_pct", m.fast_path_share * 100.0, "percent"),
        MetricRow::new("reuse_gain_pct", m.reuse_gain * 100.0, "percent"),
        MetricRow::new(
            "outputs_identical",
            f64::from(u8::from(m.all_identical)),
            "bool",
        ),
    ]
}

/// Runs the experiment, writes [`JSON_PATH`], renders the report.
pub fn run() -> String {
    let m = measured();

    let mut table = Table::new(vec![
        "corpus",
        "ratio",
        "inflate MB/s",
        "careful MB/s",
        "speedup",
        "deflate MB/s",
        "identical",
    ]);
    for c in &m.cells {
        table.row(vec![
            c.corpus.to_string(),
            format!("{:.3}", c.ratio),
            format!("{:.1}", c.fast_mb_per_s),
            format!("{:.1}", c.careful_mb_per_s),
            format!("{:.2}x", c.fast_mb_per_s / c.careful_mb_per_s),
            format!("{:.1}", c.deflate_mb_per_s),
            c.identical.to_string(),
        ]);
    }

    let json = render_kernels_json(m);
    let json_note = match std::fs::write(JSON_PATH, &json) {
        Ok(()) => format!("kernel rows written to `{JSON_PATH}`"),
        Err(err) => format!("could not write `{JSON_PATH}`: {err}"),
    };

    format!(
        "## E20 — {TITLE}\n\nHeadline: {} MiB level-6 mixed corpus inflates at {:.1} MB/s — \
         {:.2}x the {PR1_BASELINE_MB_PER_S} MB/s PR 1 baseline (bar: ≥ {BAR_SPEEDUP}x).\n\n\
         Sweep: {} corpus classes × {} MiB, interleaved best-of-{PASSES} per kernel. \
         Aggregate inflate {:.1} MB/s fast vs {:.1} MB/s careful (the careful reference \
         also profits from the merged tables, so this ratio understates the PR delta); \
         outputs byte-identical: {}.\n\n{}\n\
         Superloop produced {:.1}% of decoded bytes during the fast passes \
         (process counters, exported as `nx_inflate_fast_path_bytes_total`). \
         Scratch reuse (`inflate_into`, {REUSE_REPS}x 16 KiB mixed payload) runs \
         {:+.1}% vs the allocating one-shot.\n\n{json_note}\n",
        MIXED_LEN >> 20,
        m.mixed_mb_per_s,
        speedup_vs_pr1(m),
        m.cells.len(),
        PER_KIND >> 20,
        m.fast_mb_per_s,
        m.careful_mb_per_s,
        m.all_identical,
        table.render(),
        m.fast_path_share * 100.0,
        m.reuse_gain * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_and_careful_agree_per_corpus() {
        // Small per-kind slices keep this quick; the full-size identity
        // check rides along inside measured() when the experiment runs.
        for &kind in CorpusKind::all() {
            let data = kind.generate(SEED, 64 << 10);
            let comp = deflate(&data, CompressionLevel::new(6).expect("valid"));
            let fast = inflate(&comp).expect("fast decode");
            let careful = inflate_careful(&comp).expect("careful decode");
            assert_eq!(fast, careful, "decoder divergence on {}", kind.name());
            assert_eq!(fast, data, "roundtrip mismatch on {}", kind.name());
        }
    }

    #[test]
    fn scratch_reuse_matches_one_shot() {
        let data = nx_corpus::mixed(SEED, 256 << 10);
        let comp = deflate(&data, CompressionLevel::default());
        let mut scratch = InflateScratch::default();
        let mut out = Vec::new();
        for _ in 0..3 {
            inflate_into(&comp, &mut scratch, &mut out).expect("valid stream");
            assert_eq!(out, data);
        }
    }

    #[test]
    fn kernels_json_is_well_formed() {
        let m = Measured {
            cells: vec![Cell {
                corpus: "text",
                ratio: 0.35,
                fast_mb_per_s: 700.0,
                careful_mb_per_s: 350.0,
                deflate_mb_per_s: 40.0,
                identical: true,
            }],
            mixed_mb_per_s: 732.0,
            fast_mb_per_s: 700.0,
            careful_mb_per_s: 350.0,
            deflate_mb_per_s: 40.0,
            fast_path_share: 0.97,
            reuse_gain: 0.08,
            all_identical: true,
        };
        let json = render_kernels_json(&m);
        assert!(json.starts_with("[\n") && json.ends_with("]\n"));
        assert_eq!(json.matches("{\"section\"").count(), 2);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"inflate_mb_per_s\": 700.000"));
        assert!(json.contains("\"speedup_vs_pr1\": 2.000"));
        assert!(json.contains("\"fast_path_pct\": 97.00"));
        assert!(json.contains("\"all_identical\": true"));
    }
}
