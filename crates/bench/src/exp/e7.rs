//! E7 — Shared-accelerator scaling: throughput and tail latency vs
//! concurrent users.
//!
//! Paper shape reproduced: one NX unit serves many user-mode windows;
//! throughput grows with offered load until the engine saturates, after
//! which p99 latency climbs steeply (the queueing knee).

use crate::{Table, SEED};
use nx_corpus::CorpusKind;
use nx_sys::crb::Function;
use nx_sys::erat::FaultPolicy;
use nx_sys::workload::SizeDistribution;
use nx_sys::{CompletionMode, RequestStream, SystemSim, Topology};

/// One-line experiment title shown by `tables list`.
pub const TITLE: &str = "Shared-accelerator scaling: users vs throughput and p99 latency";

/// User counts swept.
pub const USERS: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Per-user request rate (requests/second of 256 KiB buffers ⇒ each user
/// offers ≈ 0.5 GB/s).
pub const PER_USER_HZ: f64 = 2_000.0;

/// Runs the experiment and renders its report.
pub fn run() -> String {
    let topo = Topology::power9_chip();
    let mix = [CorpusKind::Json, CorpusKind::Logs, CorpusKind::Columnar];
    let mut table = Table::new(vec![
        "users",
        "offered GB/s",
        "achieved GB/s",
        "mean lat (us)",
        "p99 lat (us)",
    ]);
    for &users in &USERS {
        let stream = RequestStream::open_loop(
            SEED,
            users,
            PER_USER_HZ,
            3_000,
            SizeDistribution::Fixed(256 << 10),
            &mix,
            Function::Compress,
        );
        let offered = stream.total_bytes() as f64
            / stream
                .requests()
                .last()
                .expect("nonempty")
                .arrival
                .as_secs_f64()
            / 1e9;
        let mut sim = SystemSim::new(
            &topo,
            CompletionMode::Poll,
            FaultPolicy::RetryOnFault {
                fault_probability: 0.0,
            },
            SEED,
        );
        let mut res = sim.run(&stream);
        table.row(vec![
            users.to_string(),
            format!("{offered:.2}"),
            format!("{:.2}", res.throughput_gbps()),
            format!("{:.1}", res.mean_latency_us()),
            format!("{:.1}", res.p99_latency_us()),
        ]);
    }
    format!(
        "## E7 — {TITLE}\n\nOne POWER9 NX unit; open-loop Poisson users, 256 KiB \
         requests at {PER_USER_HZ} req/s each.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_knee_appears() {
        let topo = Topology::power9_chip();
        let mix = [CorpusKind::Json];
        let run_users = |users: u32| {
            let stream = RequestStream::open_loop(
                SEED,
                users,
                PER_USER_HZ,
                1_500,
                SizeDistribution::Fixed(256 << 10),
                &mix,
                Function::Compress,
            );
            let mut sim = SystemSim::new(
                &topo,
                CompletionMode::Poll,
                FaultPolicy::RetryOnFault {
                    fault_probability: 0.0,
                },
                SEED,
            );
            let mut res = sim.run(&stream);
            (res.throughput_gbps(), res.p99_latency_us())
        };
        let (t2, l2) = run_users(2);
        let (t64, l64) = run_users(64);
        // Throughput grows toward saturation, latency explodes past it.
        assert!(t64 > 3.0 * t2, "throughput {t2} -> {t64}");
        assert!(l64 > 10.0 * l2, "latency {l2} -> {l64}");
    }
}
