//! E4 — Accelerator vs the entire chip of cores.
//!
//! Paper claim: **13× speedup over the entire chip of cores** (24 SMT
//! cores running zlib in parallel). The software chip rate is the
//! measured single-core rate × 24 cores × a parallel efficiency of 0.85
//! (shared cache/memory bandwidth); the accelerator side is one NX unit's
//! modeled effective rate.

use crate::{Table, SEED};
use nx_accel::{AccelConfig, Accelerator};
use nx_deflate::CompressionLevel;
use nx_sys::SoftwareBaseline;

/// One-line experiment title shown by `tables list`.
pub const TITLE: &str = "One accelerator vs a 24-core chip running software zlib";

/// POWER9 SMT cores per chip.
pub const CHIP_CORES: usize = 24;

/// Parallel efficiency of chip-wide software compression.
pub const MT_EFFICIENCY: f64 = 0.85;

/// Runs the experiment and renders its report.
pub fn run() -> String {
    let sample = nx_corpus::mixed(SEED, 8 << 20);
    let per_core = SoftwareBaseline::measure_per_core_bps(CompressionLevel::default(), &sample);
    let sw = SoftwareBaseline::new(CHIP_CORES, per_core, MT_EFFICIENCY, 2.5);

    let data = nx_corpus::mixed(SEED, 32 << 20);
    let mut p9 = Accelerator::new(AccelConfig::power9());
    let (_, report) = p9.compress(&data);
    let accel_bps = data.len() as f64 / report.latency_secs();

    let mut table = Table::new(vec![
        "configuration",
        "rate GB/s",
        "vs 1 core",
        "vs 24-core chip",
    ]);
    table.row(vec![
        "1 core, zlib-6 (measured)".to_string(),
        format!("{:.3}", per_core / 1e9),
        "1.0x".to_string(),
        format!("{:.2}x", per_core / sw.chip_rate_bps()),
    ]);
    table.row(vec![
        format!("{CHIP_CORES} cores, zlib-6 (eff {MT_EFFICIENCY})"),
        format!("{:.3}", sw.chip_rate_bps() / 1e9),
        format!("{:.1}x", sw.chip_rate_bps() / per_core),
        "1.0x".to_string(),
    ]);
    table.row(vec![
        "1 NX accelerator (model)".to_string(),
        format!("{:.2}", accel_bps / 1e9),
        format!("{:.0}x", accel_bps / per_core),
        format!("{:.1}x", accel_bps / sw.chip_rate_bps()),
    ]);
    format!(
        "## E4 — {TITLE}\n\nPaper: 388x vs one core, 13x vs the whole chip. The chip \
         column's magnitude tracks the host's measured software rate.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_speedup_is_single_core_over_effective_cores() {
        let sw = SoftwareBaseline::new(CHIP_CORES, 50e6, MT_EFFICIENCY, 2.5);
        // If the accel is 388x one core, it is 388/(24*0.85) ≈ 19x the chip.
        let accel_bps = 388.0 * 50e6;
        let vs_chip = accel_bps / sw.chip_rate_bps();
        assert!((vs_chip - 388.0 / (24.0 * 0.85)).abs() < 1e-9);
        assert!((10.0..25.0).contains(&vs_chip));
    }
}
