//! E12 — Microarchitecture ablations: the trade-offs that made the
//! on-chip implementation possible.
//!
//! The paper's discussion sections motivate each major design choice;
//! this experiment quantifies them on the model: lane width (throughput),
//! history size (ratio), speculative vs greedy cover resolution (ratio at
//! equal throughput), dynamic vs fixed Huffman (ratio vs latency), and
//! hash associativity.

use crate::{Table, SEED};
use nx_accel::{AccelConfig, Accelerator, HuffmanMode, Resolution};

/// One-line experiment title shown by `tables list`.
pub const TITLE: &str = "Microarchitecture ablations (ratio and rate vs design choices)";

/// Sample size for each configuration run.
pub const BYTES: usize = 4 << 20;

struct Probe {
    label: String,
    cfg: AccelConfig,
}

fn probes() -> Vec<Probe> {
    let base = AccelConfig::power9;
    let mut v = Vec::new();
    v.push(Probe {
        label: "baseline POWER9 (8 lanes, 32K, spec, DHT)".into(),
        cfg: base(),
    });
    for lanes in [4usize, 16] {
        let mut c = base();
        c.lanes = lanes;
        v.push(Probe {
            label: format!("lanes = {lanes}"),
            cfg: c,
        });
    }
    for hist in [8 * 1024usize, 16 * 1024] {
        let mut c = base();
        c.history_bytes = hist;
        v.push(Probe {
            label: format!("history = {} KiB", hist / 1024),
            cfg: c,
        });
    }
    let mut greedy = base();
    greedy.resolution = Resolution::Greedy;
    v.push(Probe {
        label: "greedy resolution".into(),
        cfg: greedy,
    });
    let mut fht = base();
    fht.huffman = HuffmanMode::Fixed;
    v.push(Probe {
        label: "fixed Huffman (FHT)".into(),
        cfg: fht,
    });
    let mut canned = base();
    canned.huffman = HuffmanMode::Canned;
    v.push(Probe {
        label: "canned Huffman (preloaded DHT)".into(),
        cfg: canned,
    });
    for ways in [1usize, 2, 8] {
        let mut c = base();
        c.hash_ways = ways;
        v.push(Probe {
            label: format!("hash ways = {ways}"),
            cfg: c,
        });
    }
    v
}

/// Runs the experiment and renders its report.
pub fn run() -> String {
    let data = nx_corpus::mixed(SEED, BYTES);
    let mut table = Table::new(vec![
        "configuration",
        "ratio",
        "B/cycle",
        "GB/s",
        "latency (us)",
    ]);
    for p in probes() {
        let mut a = Accelerator::new(p.cfg);
        let (_, r) = a.compress(&data);
        table.row(vec![
            p.label,
            format!("{:.3}", r.ratio()),
            format!("{:.2}", r.bytes_per_cycle()),
            format!("{:.2}", r.throughput_gbps()),
            format!("{:.1}", r.latency_secs() * 1e6),
        ]);
    }
    format!(
        "## E12 — {TITLE}\n\n4 MiB mixed corpus; every row is functionally bit-exact \
         DEFLATE.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ratio_and_rate(cfg: AccelConfig) -> (f64, f64) {
        let data = nx_corpus::mixed(SEED, 1 << 20);
        let (_, r) = Accelerator::new(cfg).compress(&data);
        (r.ratio(), r.bytes_per_cycle())
    }

    #[test]
    fn wider_lanes_raise_throughput() {
        let mut narrow = AccelConfig::power9();
        narrow.lanes = 4;
        let (_, r4) = ratio_and_rate(narrow);
        let (_, r8) = ratio_and_rate(AccelConfig::power9());
        assert!(r8 > 1.5 * r4, "lanes 4→8: {r4:.2} → {r8:.2} B/cycle");
    }

    #[test]
    fn smaller_history_costs_ratio_not_rate() {
        let mut small = AccelConfig::power9();
        small.history_bytes = 8 * 1024;
        let (ratio_small, rate_small) = ratio_and_rate(small);
        let (ratio_full, rate_full) = ratio_and_rate(AccelConfig::power9());
        assert!(
            ratio_full >= ratio_small * 0.995,
            "{ratio_small} vs {ratio_full}"
        );
        let rate_rel = (rate_small / rate_full - 1.0).abs();
        assert!(rate_rel < 0.1, "history changed rate by {rate_rel:.2}");
    }

    #[test]
    fn fixed_huffman_costs_ratio() {
        let mut fht = AccelConfig::power9();
        fht.huffman = HuffmanMode::Fixed;
        let (ratio_fht, _) = ratio_and_rate(fht);
        let (ratio_dht, _) = ratio_and_rate(AccelConfig::power9());
        assert!(ratio_dht > ratio_fht, "{ratio_dht} !> {ratio_fht}");
    }

    #[test]
    fn fewer_hash_ways_cost_ratio() {
        let mut one = AccelConfig::power9();
        one.hash_ways = 1;
        let (ratio_1, _) = ratio_and_rate(one);
        let (ratio_4, _) = ratio_and_rate(AccelConfig::power9());
        assert!(ratio_4 >= ratio_1, "{ratio_4} vs {ratio_1}");
    }
}
