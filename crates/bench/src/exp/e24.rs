//! E24 — Request-tracing overhead: sampled span emission on the service
//! path, gated against the tracing-off baseline.
//!
//! PR 8's tracing layer threads a `TraceContext` through admission,
//! scheduling, coalesced dispatch and engine execution. Its stated cost
//! contract: always-sample tracing adds ≤ 5% to service throughput, and
//! 1-in-256 sampling ≤ 1% — because sampling gates only span-ring
//! pushes, never the seq/cycle bookkeeping or the histograms, so the
//! modeled latency arithmetic is identical on every side.
//!
//! The harness compresses one request set on three `Nx` handles that
//! differ only in the sink's [`Sampler`]: `Never` (baseline — registry
//! and histograms live, span ring idle), `Always`, and `OneIn(256)`.
//! The timed side is the direct engine path — single-threaded, so the
//! 1% bar measures span emission rather than service-thread scheduling
//! jitter — and the sides interleave at *request* granularity: each
//! request is compressed on all three handles back-to-back before the
//! next, so host frequency drift lands on every side equally instead of
//! skewing whole passes (tighter than the e18/e19 pass-level pattern;
//! a 1% bar needs it). Best-of-6 rounds. An untimed service pass per
//! side then proves the plumbing end to end: full admission-to-
//! completion chains on the always side, and latency buckets whose
//! trace-id exemplars resolve to spans in the ring.
//!
//! `run()` emits `BENCH_TRACING.json`; `tables --json` gets the scalars
//! the CI gate reads.

use super::MetricRow;
use crate::Table;
use nx_core::{Format, Nx, QosClass, ServiceConfig, TenantSpec};
use nx_corpus::CorpusKind;
use nx_telemetry::{MetricsRegistry, Sampler, TelemetrySink};
use std::sync::OnceLock;
use std::time::Instant;

/// One-line experiment title shown by `tables list`.
pub const TITLE: &str = "Tracing overhead: always-on and 1-in-256 sampling vs tracing off";

/// Where the machine-readable rows land (workspace root under
/// `cargo run`).
pub const JSON_PATH: &str = "BENCH_TRACING.json";

/// Requests per timed pass and payload size. 48 × 64 KiB keeps one pass
/// in the tens of milliseconds — long enough to swamp timer noise at
/// the 1% bar, short enough for best-of-6 × 3 sides.
const REQUESTS: usize = 48;
const REQ_BYTES: usize = 64 << 10;

/// The three sampling sides swept.
const SIDES: [(&str, Sampler); 3] = [
    ("off", Sampler::Never),
    ("always", Sampler::Always),
    ("one_in_256", Sampler::OneIn(256)),
];

struct Measured {
    /// Seconds per side, best-of-6, indexed like [`SIDES`].
    secs: [f64; 3],
    /// Spans left in the ring per side after one extra evidence pass.
    spans: [usize; 3],
    /// Latency-histogram buckets carrying a trace-id exemplar on the
    /// always side.
    exemplar_buckets: usize,
    /// Every exemplar trace id also appears in the span ring.
    exemplars_resolve: bool,
    /// Bytes pushed through per pass (throughput denominator).
    in_bytes: usize,
}

/// One timed round, request-interleaved: every payload is compressed on
/// all handles back-to-back (each request mints a root trace; the
/// sampler decides span emission). `best[i][r]` keeps the fastest
/// observation of request `r` on handle `i` across rounds — summing the
/// per-request floors discards interrupt/scheduler spikes that a whole-
/// pass minimum would keep on whichever side they happened to hit. The
/// per-request timer cost (~tens of ns) is noise-floor against multi-ms
/// compressions.
fn interleaved_round(handles: &[Nx], payloads: &[Vec<u8>], best: &mut [Vec<f64>]) {
    for (r, p) in payloads.iter().enumerate() {
        for (i, nx) in handles.iter().enumerate() {
            let t0 = Instant::now();
            let out = nx.compress(p, Format::Gzip).expect("compress");
            let dt = t0.elapsed().as_secs_f64();
            best[i][r] = best[i][r].min(dt);
            std::hint::black_box(out.bytes.len());
        }
    }
}

/// One evidence pass through the service: submit the whole request set,
/// wait for every ticket (untimed — spans and exemplars, not seconds).
fn service_pass(nx: &Nx, payloads: &[Vec<u8>]) -> f64 {
    let svc = nx.service(ServiceConfig::default());
    let tenant = svc.open_window(TenantSpec::new("rpc", QosClass::Latency, 64));
    let t0 = Instant::now();
    let tickets: Vec<_> = payloads
        .iter()
        .map(|p| tenant.submit(p.clone(), Format::Gzip).expect("admit"))
        .collect();
    for t in tickets {
        std::hint::black_box(t.wait().expect("complete").latency_cycles);
    }
    let dt = t0.elapsed().as_secs_f64();
    svc.close();
    dt
}

/// A service handle with the given sampling side.
fn side_nx(sampler: Sampler) -> Nx {
    Nx::power9()
        .with_telemetry(TelemetrySink::enabled(MetricsRegistry::new()).with_sampler(sampler))
}

/// Runs the sweep once per process; `run()` and [`metrics`] share it.
fn measured() -> &'static Measured {
    static CELL: OnceLock<Measured> = OnceLock::new();
    CELL.get_or_init(|| {
        let data = CorpusKind::Json.generate(crate::SEED, REQUESTS * REQ_BYTES);
        let payloads: Vec<Vec<u8>> = data.chunks(REQ_BYTES).map(<[u8]>::to_vec).collect();
        let in_bytes: usize = payloads.iter().map(Vec::len).sum();

        let handles: Vec<Nx> = SIDES.iter().map(|(_, s)| side_nx(*s)).collect();
        let mut best = vec![vec![f64::INFINITY; payloads.len()]; handles.len()];
        for _ in 0..6 {
            interleaved_round(&handles, &payloads, &mut best);
        }
        let mut secs = [0.0f64; 3];
        for (s, per_request) in secs.iter_mut().zip(&best) {
            *s = per_request.iter().sum();
        }

        // Evidence pass on fresh handles so span counts reflect exactly
        // one request set per side.
        let mut spans = [0usize; 3];
        let mut exemplar_buckets = 0;
        let mut exemplars_resolve = true;
        for (i, (_, sampler)) in SIDES.iter().enumerate() {
            let nx = side_nx(*sampler);
            service_pass(&nx, &payloads);
            let ring = nx.telemetry().trace();
            spans[i] = ring.len();
            if matches!(sampler, Sampler::Always) {
                let snap = nx.telemetry().registry().expect("enabled sink").snapshot();
                let exemplars: Vec<u64> = snap
                    .iter()
                    .find(|(name, _)| name == "nx_request_latency_cycles")
                    .and_then(|(_, v)| match v {
                        nx_telemetry::MetricValue::Histogram(h) => Some(h),
                        _ => None,
                    })
                    .map(|h| h.buckets.iter().filter_map(|b| b.exemplar).collect())
                    .unwrap_or_default();
                exemplar_buckets = exemplars.len();
                exemplars_resolve = !exemplars.is_empty()
                    && exemplars
                        .iter()
                        .all(|id| ring.iter().any(|s| s.request == *id));
            }
        }

        Measured {
            secs,
            spans,
            exemplar_buckets,
            exemplars_resolve,
            in_bytes,
        }
    })
}

/// Fractional overhead of side `i` against the tracing-off baseline.
fn overhead(m: &Measured, i: usize) -> f64 {
    m.secs[i] / m.secs[0] - 1.0
}

/// Renders the machine-readable rows ([`JSON_PATH`]).
fn render_json(m: &Measured) -> String {
    let mut rows: Vec<String> = SIDES
        .iter()
        .enumerate()
        .map(|(i, (name, _))| {
            format!(
                "  {{\"section\": \"side\", \"sampler\": \"{}\", \"mb_per_s\": {:.3}, \
                 \"overhead_pct\": {:.3}, \"spans\": {}}}",
                name,
                m.in_bytes as f64 / m.secs[i] / 1e6,
                overhead(m, i) * 100.0,
                m.spans[i]
            )
        })
        .collect();
    rows.push(format!(
        "  {{\"section\": \"summary\", \"always_overhead_pct\": {:.3}, \
         \"sampled_overhead_pct\": {:.3}, \"always_bar_pct\": 5.0, \"sampled_bar_pct\": 1.0, \
         \"exemplar_buckets\": {}, \"exemplars_resolve\": {}}}",
        overhead(m, 1) * 100.0,
        overhead(m, 2) * 100.0,
        m.exemplar_buckets,
        m.exemplars_resolve
    ));
    format!("[\n{}\n]\n", rows.join(",\n"))
}

/// Machine-readable rows for `tables --json` (the CI gate reads these).
pub fn metrics() -> Vec<MetricRow> {
    let m = measured();
    vec![
        MetricRow::new("always_overhead_pct", overhead(m, 1) * 100.0, "percent"),
        MetricRow::new("sampled_overhead_pct", overhead(m, 2) * 100.0, "percent"),
        MetricRow::new("always_spans", m.spans[1] as f64, "count"),
        MetricRow::new("sampled_spans", m.spans[2] as f64, "count"),
        MetricRow::new("exemplar_buckets", m.exemplar_buckets as f64, "count"),
        MetricRow::new(
            "exemplars_resolve",
            f64::from(u8::from(m.exemplars_resolve)),
            "bool",
        ),
    ]
}

/// Runs the experiment, writes [`JSON_PATH`], renders the report.
pub fn run() -> String {
    let m = measured();

    let mut table = Table::new(vec!["sampler", "MB/s", "overhead", "spans"]);
    for (i, (name, _)) in SIDES.iter().enumerate() {
        table.row(vec![
            (*name).to_string(),
            format!("{:.1}", m.in_bytes as f64 / m.secs[i] / 1e6),
            format!("{:+.2}%", overhead(m, i) * 100.0),
            m.spans[i].to_string(),
        ]);
    }

    let json = render_json(m);
    let note = match std::fs::write(JSON_PATH, &json) {
        Ok(()) => format!("rows written to `{JSON_PATH}`"),
        Err(err) => format!("could not write `{JSON_PATH}`: {err}"),
    };

    format!(
        "## E24 — {TITLE}\n\n{REQUESTS} × {} KiB gzip compressions per timed pass, \
         interleaved best-of-6 across three sampler sides, plus an untimed service pass \
         per side for span/exemplar evidence. Always-sample overhead {:+.2}% (bar ≤ 5%), \
         1-in-256 {:+.2}% (bar ≤ 1%): sampling gates only span-ring pushes, so the \
         deterministic latency arithmetic is shared by all sides.\n\n{}\nExemplars: {} \
         latency buckets carry a trace id on the always side; every exemplar resolves to \
         a span in the ring: {}.\n\n{note}\n",
        REQ_BYTES >> 10,
        overhead(m, 1) * 100.0,
        overhead(m, 2) * 100.0,
        table.render(),
        m.exemplar_buckets,
        m.exemplars_resolve
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_sides_agree_on_latency_and_disagree_on_spans() {
        // A small request set: the always side must leave far more spans
        // than 1-in-256, while modeled per-request latencies agree.
        let data = CorpusKind::Json.generate(7, 8 * 4096);
        let payloads: Vec<Vec<u8>> = data.chunks(4096).map(<[u8]>::to_vec).collect();
        let run_side = |s: Sampler| {
            let nx = side_nx(s);
            service_pass(&nx, &payloads);
            nx.telemetry().trace().len()
        };
        let always = run_side(Sampler::Always);
        let sampled = run_side(Sampler::OneIn(256));
        let off = run_side(Sampler::Never);
        assert!(always >= payloads.len() * 5, "full chains on always side");
        assert!(sampled < always, "sampling must shed spans");
        assert_eq!(off, 0, "Never side leaves the ring empty");
    }

    #[test]
    fn json_is_well_formed() {
        let m = Measured {
            secs: [1.0, 1.02, 1.002],
            spans: [0, 288, 6],
            exemplar_buckets: 3,
            exemplars_resolve: true,
            in_bytes: 1 << 20,
        };
        let json = render_json(&m);
        assert!(json.starts_with("[\n") && json.ends_with("]\n"));
        assert_eq!(json.matches("{\"section\"").count(), 4);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"always_overhead_pct\": 2.000"));
        assert!(json.contains("\"sampled_overhead_pct\": 0.200"));
    }
}
