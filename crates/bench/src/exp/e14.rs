//! E14 — Page-fault handling and the 842 engine.
//!
//! Two POWER9-specific mechanisms the paper describes:
//!
//! 1. **Translation faults**: the NX aborts at the first non-resident
//!    page with partial progress; software touches and resubmits. The
//!    sweep shows effective throughput vs fault probability and the
//!    touch-first mitigation's flat profile.
//! 2. **The 842 engine**: lower-latency, weaker-ratio compression for
//!    memory expansion, compared against DEFLATE per corpus.

use crate::{Table, SEED};
use nx_corpus::CorpusKind;
use nx_sys::crb::Function;
use nx_sys::erat::FaultPolicy;
use nx_sys::{CompletionMode, RequestStream, SystemSim, Topology};

/// One-line experiment title shown by `tables list`.
pub const TITLE: &str = "Page-fault handling sweep; 842 vs DEFLATE";

/// Fault probabilities swept (per 64 KiB page).
pub const FAULT_PROBS: [f64; 6] = [0.0, 0.001, 0.005, 0.01, 0.02, 0.05];

/// One measurement: (throughput GB/s, faults, mean latency µs).
fn measure(policy: FaultPolicy, open_loop: bool) -> (f64, u64, f64) {
    let stream = if open_loop {
        // Moderate load: the per-request fault penalty is visible in
        // latency rather than hidden by queue overlap.
        nx_sys::workload::RequestStream::open_loop(
            SEED,
            4,
            400.0,
            600,
            nx_sys::workload::SizeDistribution::Fixed(4 << 20),
            &[CorpusKind::Json, CorpusKind::Logs],
            Function::Compress,
        )
    } else {
        RequestStream::saturating(
            SEED,
            48,
            4 << 20,
            &[CorpusKind::Json, CorpusKind::Logs],
            Function::Compress,
        )
    };
    let mut sim = SystemSim::new(
        &Topology::power9_chip(),
        CompletionMode::Interrupt,
        policy,
        SEED,
    );
    let res = sim.run(&stream);
    (res.throughput_gbps(), res.faults, res.mean_latency_us())
}

/// Runs the experiment and renders its report.
pub fn run() -> String {
    let mut faults = Table::new(vec![
        "fault prob/page",
        "retry GB/s",
        "retry mean lat (us)",
        "faults taken",
        "touch-first GB/s",
        "touch mean lat (us)",
    ]);
    for &p in &FAULT_PROBS {
        let retry = FaultPolicy::RetryOnFault {
            fault_probability: p,
        };
        let touch = FaultPolicy::TouchFirst {
            fault_probability: p,
        };
        let (retry_gbps, nfaults, _) = measure(retry, false);
        let (_, _, retry_lat) = measure(retry, true);
        let (touch_gbps, _, _) = measure(touch, false);
        let (_, _, touch_lat) = measure(touch, true);
        faults.row(vec![
            format!("{:.1}%", p * 100.0),
            format!("{retry_gbps:.2}"),
            format!("{retry_lat:.0}"),
            nfaults.to_string(),
            format!("{touch_gbps:.2}"),
            format!("{touch_lat:.0}"),
        ]);
    }

    let mut p842 = Table::new(vec![
        "corpus",
        "842 ratio",
        "DEFLATE(NX) ratio",
        "842 GB/s",
        "842 zero-chunks %",
    ]);
    let cost = nx_sys::CostModel::calibrate(&nx_accel::AccelConfig::power9(), SEED);
    for &kind in CorpusKind::all() {
        let data = kind.generate(SEED, 1 << 20);
        let (out, stats) = nx_842::compress_with_stats(&data);
        p842.row(vec![
            kind.name().to_string(),
            format!("{:.3}", data.len() as f64 / out.len() as f64),
            format!("{:.3}", cost.ratio(kind)),
            format!("{:.2}", cost.compress_rate_842_bps(kind) / 1e9),
            format!(
                "{:.1}",
                100.0 * stats.zero_chunks as f64 / stats.chunks.max(1) as f64
            ),
        ]);
    }

    format!(
        "## E14 — {TITLE}\n\n### Fault sweep (48 x 4 MiB requests, one NX unit)\n\n{}\n\
         ### 842 vs DEFLATE ratio (1 MiB per corpus)\n\n{}",
        faults.render(),
        p842.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_and_latency_degrade_with_faults() {
        let (t0, _, l0) = measure(
            FaultPolicy::RetryOnFault {
                fault_probability: 0.0,
            },
            false,
        );
        let (t5, f5, _) = measure(
            FaultPolicy::RetryOnFault {
                fault_probability: 0.05,
            },
            false,
        );
        assert!(t0 >= t5, "{t0} vs {t5}");
        assert!(f5 > 0);
        // Open-loop latency shows the per-request penalty clearly.
        let (_, _, l5) = measure(
            FaultPolicy::RetryOnFault {
                fault_probability: 0.05,
            },
            true,
        );
        let (_, _, l0o) = measure(
            FaultPolicy::RetryOnFault {
                fault_probability: 0.0,
            },
            true,
        );
        assert!(l5 > l0o * 1.02, "latency {l0o} -> {l5}");
        let _ = l0;
    }

    #[test]
    fn touch_first_is_flat_across_fault_rates() {
        let (a, _, _) = measure(
            FaultPolicy::TouchFirst {
                fault_probability: 0.0,
            },
            false,
        );
        let (b, _, _) = measure(
            FaultPolicy::TouchFirst {
                fault_probability: 0.05,
            },
            false,
        );
        let rel = (a / b - 1.0).abs();
        assert!(rel < 0.02, "touch-first varied by {rel:.3}");
    }
}
