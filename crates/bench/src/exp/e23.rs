//! E23 — Multi-tenant service storm: fairness, QoS tails, credit admission.
//!
//! Drives the `nx_core::service` front end (credit-based admission
//! mirroring VAS receive-window credits, deficit-weighted round-robin
//! over QoS classes, small-payload coalescing) with the deterministic
//! open-loop storm generator:
//!
//! * **Storm** — a ≥4-tenant mixed-QoS mix (two Latency tenants, one
//!   Throughput hog offering ~3× the engine's capacity, one Background
//!   scanner) on the virtual cycle clock. Reported per tenant:
//!   p50/p99 latency, queue-depth histogram, credit stalls, goodput;
//!   in aggregate: the Jain fairness index, coalescing counters and the
//!   credit-conservation check (must be zero violations at drain).
//! * **Isolation** — the same seed replayed without the hog. Per-tenant
//!   arrival streams are a pure function of `(seed, name)`, so the only
//!   difference is the hog's presence; the victim's p99 inflation factor
//!   is the isolation number.
//! * **Chaos** — the same storm with the PR 2 fault injector threaded
//!   through the engine model (`FaultRates::sweep`): retries, software
//!   fallbacks and worker deaths must degrade latency, never drop
//!   admitted work or leak credits.
//! * **Coalescing identity** — small payloads through the *threaded*
//!   service (where batches share one engine submission) checked
//!   byte-identical against individual submissions on a fresh handle.
//!
//! The virtual clock makes every storm number deterministic from the
//! seed; only the coalescing-identity pass touches real threads, and it
//! checks bytes, not time. `run()` emits `BENCH_SERVICE.json`, which
//! `scripts/ci.sh` gates on fairness, QoS priority, tail latency and
//! credit conservation.

use super::MetricRow;
use crate::{Table, SEED};
use nx_accel::AccelConfig;
use nx_core::fault::{FaultPlan, FaultRates, RecoveryPolicy};
use nx_core::service::loadgen::{self, PayloadDist, StormConfig, StormReport, TenantLoad};
use nx_core::service::{QosClass, ServiceConfig, TenantSpec};
use nx_core::{FaultInjector, Format, Nx};
use nx_corpus::CorpusKind;
use std::sync::OnceLock;

/// One-line experiment title shown by `tables list`.
pub const TITLE: &str = "Multi-tenant service: fairness, QoS tails, credit admission";

/// Where the machine-readable report lands (workspace root under
/// `cargo run`).
pub const JSON_PATH: &str = "BENCH_SERVICE.json";

/// Injected fault pressure for the chaos replay.
const CHAOS_RATE: f64 = 0.08;

/// The saturating mixed-QoS storm: every tenant stays active for the
/// whole ~6M-cycle window, so DWRR weighting — not idle capacity —
/// decides who waits.
fn storm_loads() -> Vec<TenantLoad> {
    vec![
        TenantLoad::new(
            TenantSpec::new("rpc", QosClass::Latency, 16),
            30_000.0,
            PayloadDist::new(CorpusKind::Json, 256, 4096, 1.2),
            200,
        ),
        TenantLoad::new(
            TenantSpec::new("logs", QosClass::Latency, 16),
            45_000.0,
            PayloadDist::new(CorpusKind::Logs, 512, 4096, 1.2),
            130,
        ),
        TenantLoad::new(
            TenantSpec::new("hog", QosClass::Throughput, 12),
            4_000.0,
            PayloadDist::new(CorpusKind::Logs, 24 << 10, 48 << 10, 1.3),
            1_200,
        ),
        TenantLoad::new(
            TenantSpec::new("scan", QosClass::Background, 4),
            150_000.0,
            PayloadDist::new(CorpusKind::Text, 32 << 10, 96 << 10, 1.3),
            40,
        ),
    ]
}

/// The storm with the hog removed — the isolation baseline.
fn victim_loads() -> Vec<TenantLoad> {
    storm_loads()
        .into_iter()
        .filter(|l| l.spec.name != "hog")
        .collect()
}

struct Measured {
    /// Nest clock used for cycle→µs conversion.
    freq_ghz: f64,
    /// The main mixed-QoS storm.
    storm: StormReport,
    /// Victim ("rpc") p99 with the hog absent, cycles.
    victim_p99_alone: u64,
    /// Victim p99 inflation factor caused by the hog.
    isolation_factor: f64,
    /// The same storm under injected faults.
    chaos: StormReport,
    /// Threaded-service coalescing produced byte-identical outputs.
    coalesce_identical: bool,
    /// Coalesced engine submissions observed in the threaded pass.
    threaded_coalesced_batches: u64,
}

impl Measured {
    fn us(&self, cycles: u64) -> f64 {
        StormReport::cycles_to_us(cycles, self.freq_ghz)
    }

    /// Worst p99 across Latency-class tenants, cycles.
    fn latency_p99_cycles(&self) -> u64 {
        self.storm
            .tenants
            .iter()
            .filter(|t| t.class == QosClass::Latency)
            .map(|t| t.p99_cycles())
            .max()
            .unwrap_or(0)
    }

    /// Best p50 across Background-class tenants, cycles.
    fn background_p50_cycles(&self) -> u64 {
        self.storm
            .tenants
            .iter()
            .filter(|t| t.class == QosClass::Background)
            .map(|t| t.p50_cycles())
            .min()
            .unwrap_or(0)
    }

    /// The QoS inversion check: Latency p99 strictly under Background p50.
    fn qos_priority_holds(&self) -> bool {
        let p99 = self.latency_p99_cycles();
        let p50 = self.background_p50_cycles();
        p99 > 0 && p50 > 0 && p99 < p50
    }

    fn engine_utilization(&self) -> f64 {
        if self.storm.makespan_cycles == 0 {
            0.0
        } else {
            self.storm.engine_busy_cycles as f64 / self.storm.makespan_cycles as f64
        }
    }
}

/// Small payloads through the threaded service (coalescing on), checked
/// byte-identical against individual submissions on a fresh handle.
fn coalesce_identity_check() -> (bool, u64) {
    let nx = Nx::power9();
    let service = nx.service(ServiceConfig::default());
    let w = service.open_window(TenantSpec::new("rpc", QosClass::Latency, 32));
    let payloads: Vec<Vec<u8>> = (0..24u64)
        .map(|i| CorpusKind::Json.generate(SEED ^ i, 1200 + (i as usize * 131) % 2400))
        .collect();
    let tickets: Vec<_> = payloads
        .iter()
        .filter_map(|p| w.submit(p.clone(), Format::Gzip).ok())
        .collect();
    let reference = Nx::power9();
    let mut identical = tickets.len() == payloads.len();
    for (p, t) in payloads.iter().zip(tickets) {
        match (t.wait(), reference.compress(p, Format::Gzip)) {
            (Ok(served), Ok(solo)) => identical &= served.compressed.bytes == solo.bytes,
            _ => identical = false,
        }
    }
    let batches = service.stats().coalesced_batches();
    service.close();
    (identical && batches > 0, batches)
}

/// Runs the storms once per process; `run()` and [`metrics`] share it.
fn measured() -> &'static Measured {
    static CELL: OnceLock<Measured> = OnceLock::new();
    CELL.get_or_init(|| {
        let cfg = StormConfig::default();
        let freq_ghz = AccelConfig::power9().freq_ghz;
        let storm = loadgen::run_storm(SEED, &storm_loads(), &cfg);
        let alone = loadgen::run_storm(SEED, &victim_loads(), &cfg);
        let victim_p99_alone = alone.tenant("rpc").map(|t| t.p99_cycles()).unwrap_or(0);
        let victim_p99_contended = storm.tenant("rpc").map(|t| t.p99_cycles()).unwrap_or(0);
        let isolation_factor = if victim_p99_alone == 0 {
            0.0
        } else {
            victim_p99_contended as f64 / victim_p99_alone as f64
        };

        let inj = FaultInjector::new(
            FaultPlan::seeded(SEED ^ 23, FaultRates::sweep(CHAOS_RATE)),
            RecoveryPolicy::default(),
        );
        let chaos = loadgen::run_storm_faulted(SEED, &storm_loads(), &cfg, &inj);

        let (coalesce_identical, threaded_coalesced_batches) = coalesce_identity_check();

        Measured {
            freq_ghz,
            storm,
            victim_p99_alone,
            isolation_factor,
            chaos,
            coalesce_identical,
            threaded_coalesced_batches,
        }
    })
}

/// Renders the report as a JSON array: per-tenant rows, the summary row
/// the CI gate reads, the isolation row and the chaos row.
fn render_json(m: &Measured) -> String {
    let mut rows = Vec::new();
    for t in &m.storm.tenants {
        let buckets: Vec<String> = t
            .depth
            .buckets
            .iter()
            .map(|b| format!("{{\"le\": {}, \"count\": {}}}", b.le, b.count))
            .collect();
        rows.push(format!(
            "  {{\"section\": \"tenant\", \"name\": \"{}\", \"class\": \"{}\", \
             \"generated\": {}, \"admitted\": {}, \"completed\": {}, \
             \"rejected_credit\": {}, \"rejected_depth\": {}, \"credit_stalls\": {}, \
             \"coalesced_requests\": {}, \"p50_us\": {:.3}, \"p99_us\": {:.3}, \
             \"goodput\": {:.4}, \"depth_p50\": {}, \"depth_p99\": {}, \"depth_max\": {}, \
             \"depth_buckets\": [{}]}}",
            t.name,
            t.class.name(),
            t.generated,
            t.admitted,
            t.completed,
            t.rejected_no_credit,
            t.rejected_queue_full,
            t.credit_stalls,
            t.coalesced_requests,
            m.us(t.p50_cycles()),
            m.us(t.p99_cycles()),
            t.goodput(),
            t.depth.p50,
            t.depth.p99,
            t.depth.max,
            buckets.join(", ")
        ));
    }
    rows.push(format!(
        "  {{\"section\": \"summary\", \"tenants\": {}, \"jain_fairness\": {:.4}, \
         \"latency_p99_us\": {:.3}, \"background_p50_us\": {:.3}, \
         \"qos_priority_holds\": {}, \"credit_violations\": {}, \
         \"chaos_credit_violations\": {}, \"batches\": {}, \"coalesced_batches\": {}, \
         \"coalesced_requests\": {}, \"coalesce_identical\": {}, \
         \"isolation_factor\": {:.3}, \"makespan_us\": {:.1}, \
         \"engine_utilization\": {:.4}}}",
        m.storm.tenants.len(),
        m.storm.jain_fairness,
        m.us(m.latency_p99_cycles()),
        m.us(m.background_p50_cycles()),
        m.qos_priority_holds(),
        m.storm.credit_violations,
        m.chaos.credit_violations,
        m.storm.batches,
        m.storm.coalesced_batches,
        m.storm.coalesced_requests,
        m.coalesce_identical,
        m.isolation_factor,
        m.us(m.storm.makespan_cycles),
        m.engine_utilization()
    ));
    rows.push(format!(
        "  {{\"section\": \"isolation\", \"victim\": \"rpc\", \
         \"p99_alone_us\": {:.3}, \"p99_contended_us\": {:.3}, \"factor\": {:.3}}}",
        m.us(m.victim_p99_alone),
        m.us(m.storm.tenant("rpc").map(|t| t.p99_cycles()).unwrap_or(0)),
        m.isolation_factor
    ));
    rows.push(format!(
        "  {{\"section\": \"chaos\", \"rate\": {CHAOS_RATE}, \"retries\": {}, \
         \"fallbacks\": {}, \"worker_deaths\": {}, \"jain_fairness\": {:.4}, \
         \"credit_violations\": {}, \"makespan_us\": {:.1}}}",
        m.chaos.retries,
        m.chaos.fallbacks,
        m.chaos.worker_deaths,
        m.chaos.jain_fairness,
        m.chaos.credit_violations,
        m.us(m.chaos.makespan_cycles)
    ));
    format!("[\n{}\n]\n", rows.join(",\n"))
}

/// Machine-readable rows for `tables --json`.
pub fn metrics() -> Vec<MetricRow> {
    let m = measured();
    vec![
        MetricRow::new("service_jain_fairness", m.storm.jain_fairness, "ratio"),
        MetricRow::new("service_latency_p99_us", m.us(m.latency_p99_cycles()), "us"),
        MetricRow::new(
            "service_background_p50_us",
            m.us(m.background_p50_cycles()),
            "us",
        ),
        MetricRow::new(
            "service_qos_priority_holds",
            f64::from(u8::from(m.qos_priority_holds())),
            "bool",
        ),
        MetricRow::new(
            "service_credit_violations",
            m.storm.credit_violations as f64,
            "count",
        ),
        MetricRow::new("service_isolation_factor", m.isolation_factor, "ratio"),
        MetricRow::new(
            "service_coalesced_requests",
            m.storm.coalesced_requests as f64,
            "count",
        ),
        MetricRow::new(
            "service_coalesce_identical",
            f64::from(u8::from(m.coalesce_identical)),
            "bool",
        ),
        MetricRow::new("service_chaos_jain", m.chaos.jain_fairness, "ratio"),
        MetricRow::new("service_chaos_fallbacks", m.chaos.fallbacks as f64, "count"),
    ]
}

/// Runs the experiment, writes `BENCH_SERVICE.json`, renders the report.
pub fn run() -> String {
    let m = measured();

    let mut tenant_table = Table::new(vec![
        "tenant",
        "class",
        "offered",
        "done",
        "no-credit",
        "stalls",
        "p50 µs",
        "p99 µs",
        "goodput",
    ]);
    for t in &m.storm.tenants {
        tenant_table.row(vec![
            t.name.clone(),
            t.class.name().to_string(),
            t.generated.to_string(),
            t.completed.to_string(),
            t.rejected_no_credit.to_string(),
            t.credit_stalls.to_string(),
            format!("{:.1}", m.us(t.p50_cycles())),
            format!("{:.1}", m.us(t.p99_cycles())),
            format!("{:.2}", t.goodput()),
        ]);
    }

    let mut chaos_table = Table::new(vec!["tenant", "done", "p99 µs", "goodput"]);
    for t in &m.chaos.tenants {
        chaos_table.row(vec![
            t.name.clone(),
            t.completed.to_string(),
            format!("{:.1}", m.us(t.p99_cycles())),
            format!("{:.2}", t.goodput()),
        ]);
    }

    let json = render_json(m);
    let json_note = match std::fs::write(JSON_PATH, &json) {
        Ok(()) => format!("full report written to `{JSON_PATH}`"),
        Err(err) => format!("could not write `{JSON_PATH}`: {err}"),
    };

    format!(
        "## E23 — {TITLE}\n\nMixed-QoS storm on the virtual cycle clock: two Latency \
         tenants, a Throughput hog offering ~3× engine capacity against a 12-credit \
         window, one Background scanner; credit admission + DWRR (weights 16/4/1) + \
         ≤4 KiB coalescing. Jain fairness {:.3} (bar ≥ 0.8), engine utilization \
         {:.0}%, {} engine batches ({} coalesced carrying {} requests).\n\n{}\n\
         QoS: worst Latency-class p99 {:.1} µs vs best Background-class p50 {:.1} µs \
         — priority {}. Hog isolation: victim p99 {:.1} µs alone → {:.1} µs contended \
         ({:.2}×). Threaded coalescing byte-identical: {} ({} coalesced batches).\n\n\
         Chaos replay at injected rate {CHAOS_RATE}: {} retries, {} software \
         fallbacks, {} worker deaths absorbed; Jain {:.3}, credit violations {}.\n\n{}\n\
         {json_note}\n",
        m.storm.jain_fairness,
        m.engine_utilization() * 100.0,
        m.storm.batches,
        m.storm.coalesced_batches,
        m.storm.coalesced_requests,
        tenant_table.render(),
        m.us(m.latency_p99_cycles()),
        m.us(m.background_p50_cycles()),
        if m.qos_priority_holds() {
            "holds"
        } else {
            "INVERTED"
        },
        m.us(m.victim_p99_alone),
        m.us(m.storm.tenant("rpc").map(|t| t.p99_cycles()).unwrap_or(0)),
        m.isolation_factor,
        m.coalesce_identical,
        m.threaded_coalesced_batches,
        m.chaos.retries,
        m.chaos.fallbacks,
        m.chaos.worker_deaths,
        m.chaos.jain_fairness,
        m.chaos.credit_violations,
        chaos_table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_summary_meets_the_gates() {
        // The same invariants ci.sh greps out of BENCH_SERVICE.json,
        // checked at the source so a regression fails in `cargo test`
        // before it fails in the gate.
        let m = measured();
        assert_eq!(m.storm.credit_violations, 0);
        assert_eq!(m.chaos.credit_violations, 0);
        assert!(
            m.storm.jain_fairness >= 0.8,
            "fairness {} under the 0.8 bar",
            m.storm.jain_fairness
        );
        assert!(
            m.qos_priority_holds(),
            "Latency p99 not under Background p50"
        );
        assert!(m.coalesce_identical, "coalesced outputs diverged");
        assert!(m.storm.coalesced_batches > 0, "storm never coalesced");
        assert!(
            m.isolation_factor > 0.0 && m.isolation_factor <= 8.0,
            "hog isolation factor {} out of range",
            m.isolation_factor
        );
        assert!(m.chaos.retries + m.chaos.fallbacks + m.chaos.worker_deaths > 0);
    }

    #[test]
    fn storm_is_deterministic() {
        let cfg = StormConfig::default();
        let a = loadgen::run_storm(SEED, &storm_loads(), &cfg);
        let b = loadgen::run_storm(SEED, &storm_loads(), &cfg);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.jain_fairness.to_bits(), b.jain_fairness.to_bits());
    }

    #[test]
    fn report_json_is_well_formed() {
        let m = measured();
        let json = render_json(m);
        assert!(json.starts_with("[\n") && json.ends_with("]\n"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(
            json.matches("\"section\": \"tenant\"").count(),
            m.storm.tenants.len()
        );
        assert_eq!(json.matches("\"section\": \"summary\"").count(), 1);
        assert_eq!(json.matches("\"section\": \"chaos\"").count(), 1);
    }

    #[test]
    fn metric_names_are_unique() {
        let rows = metrics();
        let mut names: Vec<&str> = rows.iter().map(|r| r.name).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }
}
