//! E5 — Compression ratio: accelerator vs zlib levels across corpora.
//!
//! Paper shape reproduced: the hardware's dynamic-Huffman mode lands
//! within a few percent of `zlib -6` while its fixed-Huffman mode and the
//! window-constrained parse trail further; `zlib -9` is the ratio
//! ceiling; incompressible data ties at ~1.0; 842's small window loses to
//! every DEFLATE mode on structured data.

use crate::{Table, SEED};
use nx_accel::{AccelConfig, Accelerator, HuffmanMode};
use nx_corpus::CorpusKind;
use nx_deflate::{deflate, CompressionLevel};

/// One-line experiment title shown by `tables list`.
pub const TITLE: &str = "Compression ratio by corpus: zlib levels vs accelerator modes vs 842";

/// Sample size per corpus.
pub const BYTES: usize = 1 << 20;

/// Runs the experiment and renders its report.
pub fn run() -> String {
    let mut fixed_cfg = AccelConfig::power9();
    fixed_cfg.huffman = HuffmanMode::Fixed;
    let mut canned_cfg = AccelConfig::power9();
    canned_cfg.huffman = HuffmanMode::Canned;
    let mut accel_dyn = Accelerator::new(AccelConfig::power9());
    let mut accel_fix = Accelerator::new(fixed_cfg);
    let mut accel_can = Accelerator::new(canned_cfg);

    let mut table = Table::new(vec![
        "corpus",
        "zlib-1",
        "zlib-6",
        "zlib-9",
        "NX dyn",
        "NX canned",
        "NX fixed",
        "842",
    ]);
    for &kind in CorpusKind::all() {
        let data = kind.generate(SEED, BYTES);
        let ratio = |out_len: usize| data.len() as f64 / out_len as f64;
        let l1 = deflate(&data, CompressionLevel::new(1).unwrap()).len();
        let l6 = deflate(&data, CompressionLevel::new(6).unwrap()).len();
        let l9 = deflate(&data, CompressionLevel::new(9).unwrap()).len();
        let nd = accel_dyn.compress(&data).0.len();
        let nf = accel_fix.compress(&data).0.len();
        let nc = accel_can.compress(&data).0.len();
        let e842 = nx_842::compress(&data).len();
        table.row(vec![
            kind.name().to_string(),
            format!("{:.3}", ratio(l1)),
            format!("{:.3}", ratio(l6)),
            format!("{:.3}", ratio(l9)),
            format!("{:.3}", ratio(nd)),
            format!("{:.3}", ratio(nc)),
            format!("{:.3}", ratio(nf)),
            format!("{:.3}", ratio(e842)),
        ]);
    }
    format!(
        "## E5 — {TITLE}\n\n1 MiB per corpus, ratio = input/output (higher is better).\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orderings_hold_on_text() {
        let data = CorpusKind::Text.generate(SEED, 256 << 10);
        let l1 = deflate(&data, CompressionLevel::new(1).unwrap()).len();
        let l9 = deflate(&data, CompressionLevel::new(9).unwrap()).len();
        let nd = Accelerator::new(AccelConfig::power9())
            .compress(&data)
            .0
            .len();
        let mut fixed_cfg = AccelConfig::power9();
        fixed_cfg.huffman = HuffmanMode::Fixed;
        let nf = Accelerator::new(fixed_cfg).compress(&data).0.len();
        let e842 = nx_842::compress(&data).len();
        assert!(l9 <= nd, "zlib-9 must be the ceiling");
        assert!(nd < nf, "dynamic must beat fixed");
        // The PR 5 hash4 encoder's fastest rung edges the modeled dynamic
        // mode by a hair on text, so "at least match" carries 2% slack —
        // the paper's shape (hardware ~ fast software levels) still holds.
        assert!(
            nd as f64 <= l1 as f64 * 1.02,
            "NX dyn should stay within 2% of zlib-1 on text"
        );
        assert!(e842 > l1, "842 must trail DEFLATE on text");
    }
}
