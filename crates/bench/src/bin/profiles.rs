//! The offline profiler CLI: trains canned Huffman profiles + preset
//! dictionaries from the synthetic corpus and manages the serialized
//! [`ProfileRegistry`] a service loads at startup.
//!
//! ```text
//! cargo run --release -p nx-bench --bin profiles -- train profiles.nxpr
//! cargo run --release -p nx-bench --bin profiles -- train profiles.nxpr --level 9
//! cargo run --release -p nx-bench --bin profiles -- show profiles.nxpr
//! ```
//!
//! `train` derives one profile per shipped content class (the same
//! procedure [`nx_core::profiles::default_registry`] runs in-process)
//! and writes the versioned `NXPR` wire format; `show` loads a registry
//! file, re-validates it, and prints the per-profile shape.

use nx_bench::Table;
use nx_core::profiles;
use nx_core::ProfileRegistry;
use nx_deflate::CompressionLevel;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  profiles train <path> [--level N]   derive + serialize the registry\n  \
         profiles show <path>                load, validate and print a registry"
    );
    ExitCode::FAILURE
}

fn train(path: &str, level: u32) -> ExitCode {
    let level = match CompressionLevel::new(level) {
        Ok(l) => l,
        Err(_) => {
            eprintln!("invalid level {level} (0..=9)");
            return ExitCode::FAILURE;
        }
    };
    let reg = profiles::train_registry(level);
    let bytes = reg.to_bytes();
    if let Err(err) = std::fs::write(path, &bytes) {
        eprintln!("could not write {path}: {err}");
        return ExitCode::FAILURE;
    }
    println!(
        "trained {} profiles at level {} -> {path} ({} bytes)",
        reg.len(),
        level.get(),
        bytes.len()
    );
    show_registry(&reg);
    ExitCode::SUCCESS
}

fn show(path: &str) -> ExitCode {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(err) => {
            eprintln!("could not read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    match ProfileRegistry::from_bytes(&bytes) {
        Ok(reg) => {
            println!("{path}: {} profiles, {} bytes", reg.len(), bytes.len());
            show_registry(&reg);
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("{path}: invalid registry: {err}");
            ExitCode::FAILURE
        }
    }
}

fn show_registry(reg: &ProfileRegistry) {
    let mut table = Table::new(vec![
        "id",
        "name",
        "level",
        "dict B",
        "dictid",
        "header bits",
    ]);
    for (id, p) in reg.iter() {
        table.row(vec![
            id.get().to_string(),
            p.name().to_string(),
            p.level().get().to_string(),
            p.dict().len().to_string(),
            format!("{:08x}", p.dict_id()),
            p.header_bits().to_string(),
        ]);
    }
    print!("{}", table.render());
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("train") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let level = match args.iter().position(|a| a == "--level") {
                Some(i) => match args.get(i + 1).and_then(|v| v.parse().ok()) {
                    Some(l) => l,
                    None => return usage(),
                },
                None => 6,
            };
            train(path, level)
        }
        Some("show") => match args.get(1) {
            Some(path) => show(path),
            None => usage(),
        },
        _ => usage(),
    }
}
