//! Regenerates the paper's evaluation tables/figures.
//!
//! ```text
//! cargo run --release -p nx-bench --bin tables -- all
//! cargo run --release -p nx-bench --bin tables -- e1 e5 e10
//! cargo run --release -p nx-bench --bin tables -- list
//! ```

use nx_bench::exp;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = exp::all();

    if args.is_empty() || args[0] == "list" {
        println!("available experiments:");
        for e in &registry {
            println!("  {:>4}  {}", e.id, e.title);
        }
        println!("\nusage: tables all | <id> [<id> ...]");
        return ExitCode::SUCCESS;
    }

    let selected: Vec<&exp::Experiment> = if args.iter().any(|a| a == "all") {
        registry.iter().collect()
    } else {
        let mut sel = Vec::new();
        for a in &args {
            match registry.iter().find(|e| e.id == a.to_lowercase()) {
                Some(e) => sel.push(e),
                None => {
                    eprintln!("unknown experiment '{a}' (try: tables list)");
                    return ExitCode::FAILURE;
                }
            }
        }
        sel
    };

    for e in selected {
        let t0 = std::time::Instant::now();
        let report = (e.run)();
        println!("{report}");
        eprintln!("[{} finished in {:.1}s]\n", e.id, t0.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}
