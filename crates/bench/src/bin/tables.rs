//! Regenerates the paper's evaluation tables/figures.
//!
//! ```text
//! cargo run --release -p nx-bench --bin tables -- all
//! cargo run --release -p nx-bench --bin tables -- e1 e5 e10
//! cargo run --release -p nx-bench --bin tables -- e17 --json out.json
//! cargo run --release -p nx-bench --bin tables -- list
//! ```
//!
//! `--json <path>` additionally writes the machine-readable metrics of
//! every selected experiment that exposes them, as a JSON array of
//! `{"experiment": id, "title": t, "metric": name, "value": v,
//! "unit": u}` rows.

use nx_bench::exp;
use std::process::ExitCode;

/// One emitted JSON row: experiment id, experiment title, metric row.
struct JsonRow<'a> {
    experiment: &'a str,
    title: &'a str,
    row: exp::MetricRow,
}

/// Minimal JSON string escape (quotes, backslashes, control chars) so
/// titles and units can carry arbitrary text without a JSON dependency.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders metric rows as a JSON array — hand-rolled so the harness
/// stays dependency-free.
fn render_json(rows: &[JsonRow<'_>]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "  {{\"experiment\": \"{}\", \"title\": \"{}\", \"metric\": \"{}\", \
             \"value\": {}, \"unit\": \"{}\"}}{sep}\n",
            escape(r.experiment),
            escape(r.title),
            escape(r.row.name),
            r.row.value,
            escape(r.row.unit)
        ));
    }
    out.push_str("]\n");
    out
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    let json_path = match args.iter().position(|a| a == "--json") {
        Some(i) => {
            if i + 1 >= args.len() {
                eprintln!("--json requires a path argument");
                return ExitCode::FAILURE;
            }
            let path = args.remove(i + 1);
            args.remove(i);
            Some(path)
        }
        None => None,
    };

    let registry = exp::all();

    if args.is_empty() || args[0] == "list" {
        println!("available experiments:");
        for e in &registry {
            println!("  {:>4}  {}", e.id, e.title);
        }
        println!("\nusage: tables all | <id> [<id> ...] [--json <path>]");
        return ExitCode::SUCCESS;
    }

    let selected: Vec<&exp::Experiment> = if args.iter().any(|a| a == "all") {
        registry.iter().collect()
    } else {
        let mut sel = Vec::new();
        for a in &args {
            match registry.iter().find(|e| e.id == a.to_lowercase()) {
                Some(e) => sel.push(e),
                None => {
                    eprintln!("unknown experiment '{a}' (try: tables list)");
                    return ExitCode::FAILURE;
                }
            }
        }
        sel
    };

    let mut json_rows: Vec<JsonRow<'_>> = Vec::new();
    for e in &selected {
        let t0 = std::time::Instant::now();
        let report = (e.run)();
        println!("{report}");
        eprintln!(
            "[{} finished in {:.1}s]\n",
            e.id,
            t0.elapsed().as_secs_f64()
        );
        if let Some(metrics) = e.metrics {
            for row in metrics() {
                json_rows.push(JsonRow {
                    experiment: e.id,
                    title: e.title,
                    row,
                });
            }
        }
    }

    if let Some(path) = json_path {
        if let Err(err) = std::fs::write(&path, render_json(&json_rows)) {
            eprintln!("failed to write {path}: {err}");
            return ExitCode::FAILURE;
        }
        eprintln!("[wrote {} metric row(s) to {path}]", json_rows.len());
    }
    ExitCode::SUCCESS
}
