#![warn(missing_docs)]

//! `nx-bench` — the experiment harness of the `nxsim` reproduction.
//!
//! Every table and figure of the paper's evaluation has an experiment
//! module `exp::e1` … `exp::e14` (see DESIGN.md for the full index) and a
//! row in the `tables` binary:
//!
//! ```text
//! cargo run --release -p nx-bench --bin tables -- all
//! cargo run --release -p nx-bench --bin tables -- e5 e10
//! ```
//!
//! The Criterion benches (`cargo bench -p nx-bench`) provide the
//! wall-clock timing counterparts for the compute-bound experiments.

pub mod exp;

/// The standard seed all experiments use (determinism across runs).
pub const SEED: u64 = 0x5EED_2020;

/// Formats a byte count compactly (KB/MB/GB, power-of-two units).
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{} GiB", b >> 30)
    } else if b >= 1 << 20 {
        format!("{} MiB", b >> 20)
    } else if b >= 1 << 10 {
        format!("{} KiB", b >> 10)
    } else {
        format!("{b} B")
    }
}

/// A markdown table writer: fixed column layout, pipe-separated.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as aligned markdown.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = width[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(width) {
                line.push_str(&format!(" {:>w$} |", c, w = w));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('|');
        for w in &width {
            out.push_str(&format!("{:-<w$}|", "", w = w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(4096), "4 KiB");
        assert_eq!(fmt_bytes(64 << 20), "64 MiB");
        assert_eq!(fmt_bytes(2 << 30), "2 GiB");
    }

    #[test]
    fn table_renders_aligned_markdown() {
        let mut t = Table::new(vec!["size", "GB/s"]);
        t.row(vec!["4 KiB", "1.25"]);
        t.row(vec!["64 MiB", "13.60"]);
        let r = t.render();
        assert!(r.starts_with('|'));
        assert_eq!(r.lines().count(), 4);
        for line in r.lines() {
            assert_eq!(line.matches('|').count(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }
}
