//! Quick deflate throughput sanity check across the level ladder.
use std::time::Instant;
fn main() {
    let data = nx_corpus::mixed(42, 4 << 20);
    let data = &data[..];
    for (name, lvl) in [
        ("fastest", 1u32),
        ("fast", 3),
        ("default", 6),
        ("high", 8),
        ("best", 9),
    ] {
        let level = match nx_deflate::CompressionLevel::new(lvl) {
            Ok(l) => l,
            Err(e) => panic!("bad level: {e}"),
        };
        let mut out = Vec::new();
        let t = Instant::now();
        let mut reps = 0u32;
        while t.elapsed().as_millis() < 600 {
            out = nx_deflate::deflate(data, level);
            reps += 1;
        }
        let secs = t.elapsed().as_secs_f64() / f64::from(reps);
        let mbs = data.len() as f64 / 1e6 / secs;
        let back = match nx_deflate::inflate(&out) {
            Ok(b) => b,
            Err(e) => panic!("inflate failed: {e}"),
        };
        assert_eq!(back, data);
        println!(
            "{name:8} lvl{lvl}: {mbs:.1} MB/s  ratio {:.3}",
            data.len() as f64 / out.len() as f64
        );
    }
}
