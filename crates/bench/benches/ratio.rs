//! Criterion counterpart of E5: software DEFLATE wall-clock per level and
//! corpus (the baseline side of the ratio/speed trade-off), plus the 842
//! codec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nx_bench::SEED;
use nx_corpus::CorpusKind;
use nx_deflate::{deflate, CompressionLevel};

fn software_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("software_deflate");
    let size = 1usize << 20;
    for kind in [CorpusKind::Text, CorpusKind::Json, CorpusKind::Random] {
        let data = kind.generate(SEED, size);
        group.throughput(Throughput::Bytes(size as u64));
        for level in [1u32, 6, 9] {
            group.bench_with_input(
                BenchmarkId::new(format!("{kind}"), format!("l{level}")),
                &data,
                |b, d| {
                    let lvl = CompressionLevel::new(level).unwrap();
                    b.iter(|| deflate(d, lvl).len())
                },
            );
        }
    }
    group.finish();
}

fn p842(c: &mut Criterion) {
    let mut group = c.benchmark_group("p842");
    let size = 1usize << 20;
    for kind in [CorpusKind::Redundant, CorpusKind::Columnar] {
        let data = kind.generate(SEED, size);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(
            BenchmarkId::new("compress", format!("{kind}")),
            &data,
            |b, d| b.iter(|| nx_842::compress(d).len()),
        );
        let compressed = nx_842::compress(&data);
        group.bench_with_input(
            BenchmarkId::new("decompress", format!("{kind}")),
            &compressed,
            |b, d| b.iter(|| nx_842::decompress(d).unwrap().len()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = software_levels, p842
}
criterion_main!(benches);
