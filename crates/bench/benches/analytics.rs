//! Criterion counterpart of E10: execution speed of the analytics
//! simulator under each codec (codec construction, i.e. cost-model
//! calibration, is hoisted out).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nx_analytics::{tpcds, Cluster, Codec};
use nx_bench::SEED;

fn analytics(c: &mut Criterion) {
    let mut group = c.benchmark_group("analytics");
    let jobs = tpcds::query_mix(SEED);
    let cluster = Cluster::new(24, 1);
    let codecs = [
        ("none", Codec::none()),
        ("software", Codec::software_default()),
        ("nx", Codec::nx_offload_default()),
    ];
    for (name, codec) in &codecs {
        group.bench_with_input(BenchmarkId::new("mix", name), codec, |b, codec| {
            b.iter(|| cluster.run(&jobs, codec).makespan)
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = analytics
}
criterion_main!(benches);
