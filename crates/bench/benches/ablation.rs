//! Criterion counterpart of E12: model execution speed across ablation
//! configurations (the matcher dominates, so this tracks how design
//! points change simulation cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nx_accel::{AccelConfig, Accelerator, HuffmanMode, Resolution};
use nx_bench::SEED;

fn ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    let size = 1usize << 20;
    let data = nx_corpus::mixed(SEED, size);
    group.throughput(Throughput::Bytes(size as u64));

    let configs: Vec<(&str, AccelConfig)> = vec![
        ("baseline", AccelConfig::power9()),
        ("greedy", {
            let mut c = AccelConfig::power9();
            c.resolution = Resolution::Greedy;
            c
        }),
        ("fht", {
            let mut c = AccelConfig::power9();
            c.huffman = HuffmanMode::Fixed;
            c
        }),
        ("ways1", {
            let mut c = AccelConfig::power9();
            c.hash_ways = 1;
            c
        }),
    ];
    for (name, cfg) in configs {
        group.bench_with_input(BenchmarkId::new("compress", name), &data, |b, d| {
            let mut a = Accelerator::new(cfg.clone());
            b.iter(|| a.compress(d).0.len())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablations
}
criterion_main!(benches);
