//! Benchmarks for the PR 4 inflate superloop and the zero-allocation
//! scratch plumbing.
//!
//! `inflate_kernel` times the merged-entry fast decoder against the
//! careful per-symbol reference (`disable_fast_path`) on the same level-6
//! mixed corpus — the gap is exactly what the superloop buys. `scratch`
//! compares the allocating one-shot `inflate` with `inflate_into`
//! reusing an `InflateScratch` + output buffer, and a pooled
//! `ScratchSession` against the stateless software path, which is the
//! steady-state request shape the `nx-core` facade serves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nx_core::{Format, Nx};
use nx_deflate::decoder::inflate_careful;
use nx_deflate::{deflate, inflate, inflate_into, CompressionLevel, InflateScratch};

const CORPUS_LEN: usize = 4 << 20;

fn corpus() -> Vec<u8> {
    nx_corpus::mixed(nx_bench::SEED, CORPUS_LEN)
}

fn bench_inflate_kernel(c: &mut Criterion) {
    let data = corpus();
    let comp = deflate(&data, CompressionLevel::new(6).unwrap());
    let mut group = c.benchmark_group("inflate_kernel");
    group.throughput(Throughput::Bytes(data.len() as u64));

    group.bench_with_input(BenchmarkId::new("fast", 6), &comp, |b, d| {
        b.iter(|| inflate(d).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("careful", 6), &comp, |b, d| {
        b.iter(|| inflate_careful(d).unwrap())
    });
    group.finish();
}

fn bench_scratch(c: &mut Criterion) {
    let data = corpus();
    let comp = deflate(&data, CompressionLevel::new(6).unwrap());
    let mut group = c.benchmark_group("scratch");
    group.throughput(Throughput::Bytes(data.len() as u64));

    group.bench_with_input(BenchmarkId::new("fresh_alloc", 6), &comp, |b, d| {
        b.iter(|| inflate(d).unwrap().len())
    });
    let mut scratch = InflateScratch::default();
    let mut out = Vec::new();
    group.bench_with_input(BenchmarkId::new("reused", 6), &comp, |b, d| {
        b.iter(|| {
            inflate_into(d, &mut scratch, &mut out).unwrap();
            out.len()
        })
    });

    let nx = Nx::power9();
    let gz = nx_core::software::compress(&data, CompressionLevel::new(6).unwrap(), Format::Gzip);
    group.bench_with_input(BenchmarkId::new("facade_oneshot", 6), &gz, |b, d| {
        b.iter(|| nx.decompress(d, Format::Gzip).unwrap().bytes.len())
    });
    let mut session = nx.scratch_session(6).unwrap();
    let mut plain = Vec::new();
    group.bench_with_input(BenchmarkId::new("facade_session", 6), &gz, |b, d| {
        b.iter(|| {
            session
                .decompress_into(d, Format::Gzip, &mut plain)
                .unwrap();
            plain.len()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_inflate_kernel, bench_scratch
}
criterion_main!(benches);
