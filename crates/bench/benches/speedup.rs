//! Criterion counterpart of E3/E4: the software baseline's wall-clock on
//! this host (the denominator of the speedup claims) at each level, on
//! the exact mixed corpus E3 uses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nx_bench::SEED;
use nx_deflate::{deflate, inflate, CompressionLevel};

fn software_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("speedup_baseline");
    let size = 4usize << 20;
    let data = nx_corpus::mixed(SEED, size);
    group.throughput(Throughput::Bytes(size as u64));
    for level in [1u32, 6, 9] {
        group.bench_with_input(BenchmarkId::new("compress", level), &data, |b, d| {
            let lvl = CompressionLevel::new(level).unwrap();
            b.iter(|| deflate(d, lvl).len())
        });
    }
    let compressed = deflate(&data, CompressionLevel::default());
    group.bench_with_input(BenchmarkId::new("inflate", 6), &compressed, |b, d| {
        b.iter(|| inflate(d).unwrap().len())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = software_baseline
}
criterion_main!(benches);
