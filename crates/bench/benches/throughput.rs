//! Criterion counterpart of E1/E2: wall-clock of the accelerator model's
//! compression and decompression across request sizes, with Criterion
//! `Throughput` so results read in GB/s of *model execution* speed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nx_accel::{AccelConfig, Accelerator};
use nx_bench::SEED;

fn compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("accel_compress");
    for &size in &[64usize << 10, 1 << 20, 8 << 20] {
        let data = nx_corpus::mixed(SEED, size);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("power9", size), &data, |b, d| {
            let mut a = Accelerator::new(AccelConfig::power9());
            b.iter(|| a.compress(d).0.len())
        });
        group.bench_with_input(BenchmarkId::new("z15", size), &data, |b, d| {
            let mut a = Accelerator::new(AccelConfig::z15());
            b.iter(|| a.compress(d).0.len())
        });
    }
    group.finish();
}

fn decompression(c: &mut Criterion) {
    let mut group = c.benchmark_group("accel_decompress");
    for &size in &[1usize << 20, 8 << 20] {
        let data = nx_corpus::mixed(SEED, size);
        let (stream, _) = Accelerator::new(AccelConfig::power9()).compress(&data);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("power9", size), &stream, |b, s| {
            let mut a = Accelerator::new(AccelConfig::power9());
            b.iter(|| a.decompress(s).expect("valid").0.len())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = compression, decompression
}
criterion_main!(benches);
