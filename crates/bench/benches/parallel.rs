//! Benchmarks for the sharded parallel engine and the single-thread
//! DEFLATE hot paths it multiplies.
//!
//! `parallel_compress` compares `nx_core::software::compress` (one
//! thread) against the `ParallelEngine` at increasing worker counts on
//! the same 16 MiB mixed corpus — the acceptance target is ≥ 2.5× at
//! 4 workers. `hotpath` times the single-thread encoder and the
//! `inflate` decoder, which gate both the serial baseline and the
//! per-worker shard throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nx_core::parallel::{ParallelEngine, ParallelOptions};
use nx_core::Format;
use nx_deflate::CompressionLevel;

const CORPUS_LEN: usize = 16 << 20;

fn corpus() -> Vec<u8> {
    nx_corpus::mixed(nx_bench::SEED, CORPUS_LEN)
}

fn bench_parallel_compress(c: &mut Criterion) {
    let data = corpus();
    let level = CompressionLevel::new(6).unwrap();
    let mut group = c.benchmark_group("parallel_compress");
    group.throughput(Throughput::Bytes(data.len() as u64));

    group.bench_with_input(BenchmarkId::new("serial", 0), &data, |b, d| {
        b.iter(|| nx_core::software::compress(d, level, Format::Gzip))
    });
    for workers in [1usize, 2, 4, 8] {
        let engine = ParallelEngine::new(ParallelOptions {
            workers,
            ..ParallelOptions::default()
        });
        group.bench_with_input(BenchmarkId::new("sharded", workers), &data, |b, d| {
            b.iter(|| engine.compress(d, 6, Format::Gzip).unwrap())
        });
    }
    group.finish();
}

fn bench_hotpath(c: &mut Criterion) {
    let data = corpus();
    let mut group = c.benchmark_group("hotpath");
    group.throughput(Throughput::Bytes(data.len() as u64));

    for level in [1u32, 6] {
        group.bench_with_input(BenchmarkId::new("deflate", level), &data, |b, d| {
            b.iter(|| nx_deflate::deflate(d, nx_deflate::CompressionLevel::new(level).unwrap()))
        });
    }
    let compressed = nx_deflate::deflate(&data, nx_deflate::CompressionLevel::new(6).unwrap());
    group.bench_with_input(BenchmarkId::new("inflate", 6), &compressed, |b, d| {
        b.iter(|| nx_deflate::inflate(d).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parallel_compress, bench_hotpath
}
criterion_main!(benches);
