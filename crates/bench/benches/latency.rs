//! Criterion counterpart of E6/E7: execution speed of the system-level
//! queueing simulation itself (events/second), so regressions in the
//! simulator are caught.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nx_bench::SEED;
use nx_corpus::CorpusKind;
use nx_sys::crb::Function;
use nx_sys::erat::FaultPolicy;
use nx_sys::workload::SizeDistribution;
use nx_sys::{CompletionMode, RequestStream, SystemSim, Topology};

fn system_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("system_sim");
    let topo = Topology::power9_chip();
    for &nreq in &[1_000usize, 10_000] {
        let stream = RequestStream::open_loop(
            SEED,
            8,
            2_000.0,
            nreq,
            SizeDistribution::Fixed(256 << 10),
            &[CorpusKind::Json],
            Function::Compress,
        );
        group.bench_with_input(BenchmarkId::new("open_loop", nreq), &stream, |b, s| {
            // Calibration is hoisted out of the measured loop.
            let mut sim = SystemSim::new(
                &topo,
                CompletionMode::Poll,
                FaultPolicy::RetryOnFault {
                    fault_probability: 0.0,
                },
                SEED,
            );
            b.iter(|| sim.run(s).completed)
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = system_sim
}
criterion_main!(benches);
