//! Property tests for the histogram: quantile error bounds and merge
//! equivalence over arbitrary inputs, the two guarantees the module docs
//! promise.

use nx_telemetry::{LogHistogram, SUB_BUCKETS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `value_at_quantile` stays within one sub-bucket of the exact
    /// order statistic: relative error ≤ 1/SUB_BUCKETS at any magnitude.
    #[test]
    fn quantile_error_is_bounded(
        values in proptest::collection::vec(0u64..(1u64 << 48), 1..300),
        q_permille in 0u64..=1000,
    ) {
        let q = q_permille as f64 / 1000.0;
        let h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        // The histogram's own rank convention: ceil(q·n) clamped to [1, n].
        let n = sorted.len() as u64;
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let exact = sorted[(rank - 1) as usize];
        let got = h.value_at_quantile(q).expect("non-empty");
        let bound = exact / SUB_BUCKETS + 1;
        prop_assert!(
            got.abs_diff(exact) <= bound,
            "q={q} exact={exact} got={got} bound={bound}"
        );
        // Always inside the observed range.
        prop_assert!((sorted[0]..=sorted[sorted.len() - 1]).contains(&got));
    }

    /// Merging two histograms is exactly equivalent to recording every
    /// observation into one (identical snapshot, hence identical
    /// quantiles, buckets, and exports).
    #[test]
    fn merge_equals_single_histogram(
        left in proptest::collection::vec(0u64..(1u64 << 52), 0..200),
        right in proptest::collection::vec(0u64..(1u64 << 52), 0..200),
    ) {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        let one = LogHistogram::new();
        for &v in &left {
            a.record(v);
            one.record(v);
        }
        for &v in &right {
            b.record(v);
            one.record(v);
        }
        a.merge(&b);
        prop_assert_eq!(a.snapshot(), one.snapshot());
    }

    /// `record_n(v, n)` is indistinguishable from `n` single records.
    #[test]
    fn record_n_equals_repeats(v in 0u64..(1u64 << 40), n in 1u64..50) {
        let bulk = LogHistogram::new();
        let singles = LogHistogram::new();
        bulk.record_n(v, n);
        for _ in 0..n {
            singles.record(v);
        }
        prop_assert_eq!(bulk.snapshot(), singles.snapshot());
    }
}
