//! Property tests for the histogram (quantile error bounds, merge
//! equivalence) and for trace propagation: parent/child span relations
//! stay well-formed across a coalescing fan-out.

use nx_telemetry::{
    LogHistogram, MetricsRegistry, Stage, TelemetrySink, TraceContext, NO_PARENT, SUB_BUCKETS,
};
use proptest::prelude::*;

/// Replays the service's coalescing shape through a sink: each request
/// emits admit/queue-wait/dispatch on its root context, then a child
/// context (hung under the dispatch span) emits the engine-side spans —
/// exactly how the engine loop fans a batch out.
fn fan_out(sink: &TelemetrySink, admission_durs: &[u64; 3], engine_durs: &[u64]) -> TraceContext {
    let mut ctx = sink.begin_trace();
    for (i, &dur) in admission_durs.iter().enumerate() {
        let stage = [Stage::Admit, Stage::QueueWait, Stage::Dispatch][i];
        sink.emit(
            ctx.trace_id,
            ctx.child_seq,
            NO_PARENT,
            stage,
            0,
            ctx.at_cycles,
            dur,
            0,
            0,
        );
        ctx.child_seq += 1;
        ctx.at_cycles += dur;
    }
    let dispatch_seq = ctx.child_seq - 1;
    let mut child = ctx.child(dispatch_seq, ctx.child_seq, ctx.at_cycles);
    for &dur in engine_durs {
        sink.emit(
            child.trace_id,
            child.child_seq,
            child.parent_span,
            Stage::Engine,
            0,
            child.at_cycles,
            dur,
            0,
            0,
        );
        child.child_seq += 1;
        child.at_cycles += dur;
    }
    ctx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `value_at_quantile` stays within one sub-bucket of the exact
    /// order statistic: relative error ≤ 1/SUB_BUCKETS at any magnitude.
    #[test]
    fn quantile_error_is_bounded(
        values in proptest::collection::vec(0u64..(1u64 << 48), 1..300),
        q_permille in 0u64..=1000,
    ) {
        let q = q_permille as f64 / 1000.0;
        let h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        // The histogram's own rank convention: ceil(q·n) clamped to [1, n].
        let n = sorted.len() as u64;
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let exact = sorted[(rank - 1) as usize];
        let got = h.value_at_quantile(q).expect("non-empty");
        let bound = exact / SUB_BUCKETS + 1;
        prop_assert!(
            got.abs_diff(exact) <= bound,
            "q={q} exact={exact} got={got} bound={bound}"
        );
        // Always inside the observed range.
        prop_assert!((sorted[0]..=sorted[sorted.len() - 1]).contains(&got));
    }

    /// Merging two histograms is exactly equivalent to recording every
    /// observation into one (identical snapshot, hence identical
    /// quantiles, buckets, and exports).
    #[test]
    fn merge_equals_single_histogram(
        left in proptest::collection::vec(0u64..(1u64 << 52), 0..200),
        right in proptest::collection::vec(0u64..(1u64 << 52), 0..200),
    ) {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        let one = LogHistogram::new();
        for &v in &left {
            a.record(v);
            one.record(v);
        }
        for &v in &right {
            b.record(v);
            one.record(v);
        }
        a.merge(&b);
        prop_assert_eq!(a.snapshot(), one.snapshot());
    }

    /// `record_n(v, n)` is indistinguishable from `n` single records.
    #[test]
    fn record_n_equals_repeats(v in 0u64..(1u64 << 40), n in 1u64..50) {
        let bulk = LogHistogram::new();
        let singles = LogHistogram::new();
        bulk.record_n(v, n);
        for _ in 0..n {
            singles.record(v);
        }
        prop_assert_eq!(bulk.snapshot(), singles.snapshot());
    }

    /// Across an arbitrary coalesced fan-out, every trace stays
    /// well-formed: span seqs are unique and ascending on each request's
    /// private timeline, every non-root span's parent exists in the same
    /// trace with a smaller seq, and no child starts before its parent —
    /// regardless of batch size or stage durations.
    #[test]
    fn fan_out_spans_nest_under_their_parents(
        batches in proptest::collection::vec(
            (
                1u64..5_000,
                0u64..50_000,
                1u64..5_000,
                proptest::collection::vec(1u64..100_000, 1..6),
            ),
            1..8,
        ),
    ) {
        let sink = TelemetrySink::enabled(MetricsRegistry::new());
        let mut ids = Vec::new();
        for (admit, wait, dispatch, engine) in &batches {
            ids.push(fan_out(&sink, &[*admit, *wait, *dispatch], engine).trace_id);
        }
        // One distinct trace id per fanned-out request.
        let mut uniq = ids.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), batches.len());

        let spans = sink.trace();
        for &id in &ids {
            let mut tl: Vec<_> = spans.iter().filter(|s| s.request == id).collect();
            tl.sort_by_key(|s| s.seq);
            prop_assert!(!tl.is_empty());
            for pair in tl.windows(2) {
                prop_assert!(pair[1].seq > pair[0].seq, "duplicate seq in trace {id}");
                prop_assert!(pair[1].start_cycles >= pair[0].start_cycles);
            }
            for s in &tl {
                if s.parent == NO_PARENT {
                    continue;
                }
                let parent = tl
                    .iter()
                    .find(|p| p.seq == s.parent)
                    .expect("parent span present in the same trace");
                prop_assert!(parent.seq < s.seq, "parent precedes child in seq order");
                prop_assert!(
                    parent.start_cycles <= s.start_cycles,
                    "child {:?} starts before its parent {:?}",
                    s,
                    parent
                );
            }
        }
    }
}
