//! Deterministic telemetry for the NX compression stack.
//!
//! The paper's headline numbers — 16 GB/s sustained, 388×/13× speedups,
//! sub-microsecond queue submission — are *observability* claims, and
//! this crate is the layer that lets the repro make (and re-verify) such
//! claims: per-request span traces, log-bucketed latency histograms, and
//! a unified metrics registry, exportable as Prometheus text, a JSON
//! snapshot, or a Chrome trace-event file.
//!
//! Three properties shape the design:
//!
//! 1. **Determinism.** Timestamps are modeled cycles ([`CycleClock`]),
//!    never wall clock; each request's timeline is request-local (starts
//!    at cycle 0); dumps sort by `(request, seq, stage)`. Two runs with
//!    the same fault seed and worker count export byte-identical traces,
//!    so a p99 regression or retry storm replays exactly.
//! 2. **Hot-path cheapness.** Recording is an atomic add
//!    ([`LogHistogram`]) or a wait-free ring push ([`SpanRing`]); the
//!    [`TelemetrySink`] handle is an `Option<Arc<..>>`, so a disabled
//!    sink costs a null check (E19 gates enabled overhead at ≤ 5%).
//! 3. **Zero dependencies.** Only `std` — every crate in the workspace
//!    (and the shims' dependents) can adopt it without widening the
//!    third-party surface.

#![warn(missing_docs)]

pub mod buckets;
mod clock;
mod export;
mod flight;
mod histogram;
mod registry;
mod sink;
mod slo;
mod span;
mod trace;

pub use buckets::{bucket_high, bucket_index, bucket_low, BUCKETS, SUB_BUCKETS};
pub use clock::{duration_to_cycles, CycleClock};
pub use export::{to_chrome_trace, to_json, to_prometheus};
pub use flight::{
    install_flight_panic_hook, CounterNote, FlightRecorder, DEFAULT_FLIGHT_NOTES,
    DEFAULT_FLIGHT_SPANS,
};
pub use histogram::{BucketCount, HistogramSnapshot, LogHistogram};
pub use registry::{Counter, Gauge, MetricSource, MetricValue, MetricsRegistry};
pub use sink::{TelemetrySink, DEFAULT_TRACE_CAPACITY};
pub use slo::{SloEvent, SloEventKind, SloMonitor, SloSpec, SloStatus};
pub use span::{SpanEvent, SpanRing, Stage};
pub use trace::{Sampler, TraceContext, NO_PARENT};
