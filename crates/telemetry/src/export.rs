//! Exporters: Prometheus text, JSON snapshot, Chrome trace-event JSON.
//!
//! All three are deterministic functions of their input — the registry
//! snapshot is already name-sorted and the trace dump span-sorted, so two
//! identical runs export byte-identical text. Everything is hand-rolled
//! (the crate has no dependencies); only the tiny JSON subset actually
//! produced here is implemented.
//!
//! Metric names may carry baked-in Prometheus labels, e.g.
//! `nx_compress_bytes_total{format="deflate"}`; the Prometheus exporter
//! splits them back out when emitting histogram series so the `le` label
//! composes correctly.

use crate::histogram::HistogramSnapshot;
use crate::registry::MetricValue;
use crate::span::SpanEvent;

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Splits `name{label="v"}` into `(name, Some(label="v"))`.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match (name.find('{'), name.rfind('}')) {
        (Some(open), Some(close)) if close > open => (&name[..open], Some(&name[open + 1..close])),
        _ => (name, None),
    }
}

/// Joins base labels with an extra `le` label for histogram buckets.
fn bucket_series(base: &str, labels: Option<&str>, le: &str) -> String {
    match labels {
        Some(l) if !l.is_empty() => format!("{base}_bucket{{{l},le=\"{le}\"}}"),
        _ => format!("{base}_bucket{{le=\"{le}\"}}"),
    }
}

fn suffixed(base: &str, labels: Option<&str>, suffix: &str) -> String {
    match labels {
        Some(l) if !l.is_empty() => format!("{base}{suffix}{{{l}}}"),
        _ => format!("{base}{suffix}"),
    }
}

/// Renders a registry snapshot in the Prometheus text exposition format.
///
/// Counters and gauges emit one sample each; histograms emit cumulative
/// `_bucket{le=...}` series plus `_sum` and `_count`, ending with the
/// conventional `le="+Inf"` bucket.
pub fn to_prometheus(snapshot: &[(String, MetricValue)]) -> String {
    let mut out = String::new();
    for (name, value) in snapshot {
        let (base, labels) = split_labels(name);
        match value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {base} counter\n{name} {v}\n"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {base} gauge\n{name} {v}\n"));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!("# TYPE {base} histogram\n"));
                let mut cumulative = 0u64;
                for b in &h.buckets {
                    cumulative += b.count;
                    // OpenMetrics-style exemplar: the bucket's most
                    // recent trace id, linking the series to a span
                    // breakdown. No timestamp — output stays
                    // deterministic.
                    let exemplar = match b.exemplar {
                        Some(id) => {
                            format!(" # {{trace_id=\"{id:016x}\"}} {}", b.le)
                        }
                        None => String::new(),
                    };
                    out.push_str(&format!(
                        "{} {}{}\n",
                        bucket_series(base, labels, &b.le.to_string()),
                        cumulative,
                        exemplar
                    ));
                }
                out.push_str(&format!(
                    "{} {}\n",
                    bucket_series(base, labels, "+Inf"),
                    h.count
                ));
                out.push_str(&format!("{} {}\n", suffixed(base, labels, "_sum"), h.sum));
                out.push_str(&format!(
                    "{} {}\n",
                    suffixed(base, labels, "_count"),
                    h.count
                ));
            }
        }
    }
    out
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let buckets: Vec<String> = h
        .buckets
        .iter()
        .map(|b| match b.exemplar {
            Some(id) => format!(
                "{{\"le\":{},\"count\":{},\"exemplar\":\"{id:016x}\"}}",
                b.le, b.count
            ),
            None => format!("{{\"le\":{},\"count\":{}}}", b.le, b.count),
        })
        .collect();
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"buckets\":[{}]}}",
        h.count,
        h.sum,
        h.min,
        h.max,
        h.p50,
        h.p90,
        h.p99,
        h.p999,
        buckets.join(",")
    )
}

/// Renders a registry snapshot as one JSON object keyed by metric name.
///
/// Counters/gauges map to numbers; histograms map to objects with count,
/// sum, min/max, the four pinned percentiles, and non-empty buckets.
pub fn to_json(snapshot: &[(String, MetricValue)]) -> String {
    let entries: Vec<String> = snapshot
        .iter()
        .map(|(name, value)| {
            let v = match value {
                MetricValue::Counter(v) => v.to_string(),
                MetricValue::Gauge(v) => v.to_string(),
                MetricValue::Histogram(h) => histogram_json(h),
            };
            format!("\"{}\":{}", json_escape(name), v)
        })
        .collect();
    format!("{{{}}}", entries.join(","))
}

/// Renders a span dump as Chrome trace-event JSON
/// (`chrome://tracing` / Perfetto loadable).
///
/// Each span becomes a complete (`"ph":"X"`) event. Timestamps are
/// microseconds derived from modeled cycles at `cycles_per_us`; each
/// request renders as its own `tid` so per-request timelines sit side by
/// side. Pass the sink's sorted dump for byte-identical output across
/// runs.
pub fn to_chrome_trace(spans: &[SpanEvent], cycles_per_us: f64) -> String {
    let scale = if cycles_per_us > 0.0 {
        1.0 / cycles_per_us
    } else {
        1.0
    };
    let events: Vec<String> = spans
        .iter()
        .map(|s| {
            // Fixed-point µs (3 decimals) keeps output locale/float-format
            // independent and byte-stable.
            let ts = (s.start_cycles as f64 * scale * 1000.0).round() as u64;
            let dur = ((s.dur_cycles as f64 * scale * 1000.0).round() as u64).max(1);
            format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{}.{:03},\"dur\":{}.{:03},\"args\":{{\"seq\":{},\"parent\":{},\"worker\":{},\"bytes\":{},\"detail\":{}}}}}",
                s.stage.name(),
                s.request,
                ts / 1000,
                ts % 1000,
                dur / 1000,
                dur % 1000,
                s.seq,
                s.parent,
                s.worker,
                s.bytes,
                s.detail
            )
        })
        .collect();
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}",
        events.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::LogHistogram;
    use crate::registry::MetricsRegistry;
    use crate::span::{SpanEvent, Stage};

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("nx_requests_total").add(3);
        reg.gauge("nx_queue_inflight").set(-2);
        let h = reg.histogram("nx_latency_cycles{format=\"deflate\"}");
        h.record(10);
        h.record(10);
        h.record(5000);
        reg
    }

    #[test]
    fn prometheus_format_has_types_buckets_and_inf() {
        let text = to_prometheus(&sample_registry().snapshot());
        assert!(text.contains("# TYPE nx_requests_total counter"));
        assert!(text.contains("nx_requests_total 3"));
        assert!(text.contains("# TYPE nx_queue_inflight gauge"));
        assert!(text.contains("nx_queue_inflight -2"));
        assert!(text.contains("# TYPE nx_latency_cycles histogram"));
        // Buckets are cumulative and labels compose with le.
        assert!(text.contains("nx_latency_cycles_bucket{format=\"deflate\",le=\"10\"} 2"));
        assert!(text.contains("nx_latency_cycles_bucket{format=\"deflate\",le=\"+Inf\"} 3"));
        assert!(text.contains("nx_latency_cycles_sum{format=\"deflate\"} 5020"));
        assert!(text.contains("nx_latency_cycles_count{format=\"deflate\"} 3"));
    }

    #[test]
    fn json_snapshot_is_valid_and_complete() {
        let json = to_json(&sample_registry().snapshot());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"nx_requests_total\":3"));
        assert!(json.contains("\"nx_queue_inflight\":-2"));
        assert!(json.contains("\"count\":3"));
        assert!(json.contains("\"buckets\":[{\"le\":"));
        // The labeled name is escaped as a plain JSON key.
        assert!(json.contains("\"nx_latency_cycles{format=\\\"deflate\\\"}\":{"));
    }

    #[test]
    fn chrome_trace_events_are_complete_spans() {
        let spans = vec![
            SpanEvent {
                request: 2,
                seq: 0,
                parent: 0,
                worker: 1,
                stage: Stage::Submit,
                start_cycles: 0,
                dur_cycles: 2000,
                bytes: 4096,
                detail: 0,
            },
            SpanEvent {
                request: 2,
                seq: 1,
                parent: 0,
                worker: 1,
                stage: Stage::Engine,
                start_cycles: 2000,
                dur_cycles: 10_000,
                bytes: 4096,
                detail: 0,
            },
        ];
        let json = to_chrome_trace(&spans, 2000.0);
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"submit\""));
        assert!(json.contains("\"name\":\"engine\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"tid\":2"));
        // 2000 cycles at 2000 cycles/µs = 1 µs.
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":5.000"));
    }

    #[test]
    fn chrome_trace_duration_floor_is_visible() {
        let spans = vec![SpanEvent {
            request: 0,
            seq: 0,
            parent: 0,
            worker: 0,
            stage: Stage::Complete,
            start_cycles: 0,
            dur_cycles: 0,
            bytes: 0,
            detail: 0,
        }];
        let json = to_chrome_trace(&spans, 2000.0);
        assert!(json.contains("\"dur\":0.001"), "{json}");
    }

    #[test]
    fn prometheus_golden_with_exemplars() {
        // Golden file for the full exposition including OpenMetrics-style
        // exemplars: pins the exact bytes, not just substrings.
        let reg = MetricsRegistry::new();
        reg.counter("nx_requests_total").add(2);
        let h = reg.histogram("nx_latency_cycles{tenant=\"rpc\"}");
        h.record_traced(10, 7);
        h.record_traced(10, 8);
        h.record(5000);
        let text = to_prometheus(&reg.snapshot());
        assert_eq!(
            text,
            "# TYPE nx_latency_cycles histogram\n\
             nx_latency_cycles_bucket{tenant=\"rpc\",le=\"10\"} 2 # {trace_id=\"0000000000000008\"} 10\n\
             nx_latency_cycles_bucket{tenant=\"rpc\",le=\"5119\"} 3\n\
             nx_latency_cycles_bucket{tenant=\"rpc\",le=\"+Inf\"} 3\n\
             nx_latency_cycles_sum{tenant=\"rpc\"} 5020\n\
             nx_latency_cycles_count{tenant=\"rpc\"} 3\n\
             # TYPE nx_requests_total counter\n\
             nx_requests_total 2\n"
        );
    }

    #[test]
    fn json_golden_with_exemplars() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("nx_lat");
        h.record_traced(10, 255);
        let json = to_json(&reg.snapshot());
        assert_eq!(
            json,
            "{\"nx_lat\":{\"count\":1,\"sum\":10,\"min\":10,\"max\":10,\
             \"p50\":10,\"p90\":10,\"p99\":10,\"p999\":10,\
             \"buckets\":[{\"le\":10,\"count\":1,\"exemplar\":\"00000000000000ff\"}]}}"
        );
    }

    #[test]
    fn chrome_trace_golden_with_parent() {
        let spans = vec![SpanEvent {
            request: 3,
            seq: 2,
            parent: 1,
            worker: 4,
            stage: Stage::Dispatch,
            start_cycles: 2000,
            dur_cycles: 4000,
            bytes: 64,
            detail: 9,
        }];
        let json = to_chrome_trace(&spans, 2000.0);
        assert_eq!(
            json,
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\
             {\"name\":\"dispatch\",\"ph\":\"X\",\"pid\":1,\"tid\":3,\
             \"ts\":1.000,\"dur\":2.000,\
             \"args\":{\"seq\":2,\"parent\":1,\"worker\":4,\"bytes\":64,\"detail\":9}}]}"
        );
    }

    #[test]
    fn exports_are_deterministic() {
        let a = sample_registry();
        let b = sample_registry();
        assert_eq!(to_prometheus(&a.snapshot()), to_prometheus(&b.snapshot()));
        assert_eq!(to_json(&a.snapshot()), to_json(&b.snapshot()));
    }

    #[test]
    fn empty_inputs_render_cleanly() {
        assert_eq!(to_prometheus(&[]), "");
        assert_eq!(to_json(&[]), "{}");
        assert_eq!(
            to_chrome_trace(&[], 2000.0),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
        let h = LogHistogram::new();
        let snap = vec![("nx_empty".to_string(), MetricValue::Histogram(h.snapshot()))];
        let text = to_prometheus(&snap);
        assert!(text.contains("nx_empty_bucket{le=\"+Inf\"} 0"));
    }
}
