//! Service-level objectives with multi-window burn-rate evaluation.
//!
//! An [`SloSpec`] declares, per tenant / QoS class, what "good" means —
//! a request that completed OK within its latency objective — and what
//! fraction of requests must be good (`target`, e.g. 0.999). The
//! [`SloMonitor`] evaluates compliance over **two sliding windows in
//! virtual cycles** (a fast 5-minute-equivalent and a slow
//! 1-hour-equivalent), the classic multi-window multi-burn-rate scheme:
//! the *burn rate* is the observed bad fraction divided by the error
//! budget (`1 - target`), so burn 1.0 spends the budget exactly at the
//! sustainable pace and burn 14.4 exhausts a 30-day budget in ~2 days.
//! An alert fires only when **both** windows exceed their thresholds —
//! the slow window proves the problem is material, the fast window
//! proves it is still happening — and clears with hysteresis when the
//! fast window drops below half its threshold.
//!
//! Everything is integer-sliced and clock-driven by the caller (the
//! loadgen virtual clock or the service's modeled-cycle accumulator), so
//! the emitted [`SloEvent`] stream is deterministic: same request
//! stream, same events, byte-for-byte.

/// Number of slices each window is divided into. Finer slicing tracks
/// the nominal window more closely; 16 keeps the state tiny.
const SLICES: usize = 16;

/// Minimum observations before budget-exhaustion can fire (avoids
/// declaring the budget gone on the first bad request of a quiet SLO).
const MIN_BUDGET_COUNT: u64 = 32;

/// One service-level objective: who, what counts as good, how much must
/// be good, and the burn-rate alert windows/thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// SLO name — conventionally the tenant name (metric label).
    pub name: String,
    /// QoS class label (informational, carried into events).
    pub class: String,
    /// A request is *good* only if it completed OK within this many
    /// cycles end to end.
    pub latency_objective_cycles: u64,
    /// Target good fraction, in `(0, 1)` (e.g. 0.999 = "three nines").
    pub target: f64,
    /// Fast ("5-minute-equivalent") window, in virtual cycles.
    pub fast_window_cycles: u64,
    /// Slow ("1-hour-equivalent") window, in virtual cycles —
    /// conventionally 12× the fast window.
    pub slow_window_cycles: u64,
    /// Fast-window burn rate at/above which the alert condition holds.
    pub fast_burn_threshold: f64,
    /// Slow-window burn rate at/above which the alert condition holds.
    pub slow_burn_threshold: f64,
}

impl SloSpec {
    /// A spec with the conventional window pair and thresholds: slow
    /// window 12× the fast one, burn thresholds 14.4 (fast) / 6.0
    /// (slow) — the page-worthy tier of the SRE-workbook ladder.
    pub fn new(name: &str, class: &str, latency_objective_cycles: u64, target: f64) -> Self {
        // Default fast window: 5 virtual minutes at the modeled 2.5 GHz
        // would be 750 G cycles; storm runs cover milliseconds of
        // virtual time, so the default is sized to storm scale and
        // callers with real horizons override via `with_windows`.
        let fast = 2_000_000;
        Self {
            name: name.to_string(),
            class: class.to_string(),
            latency_objective_cycles: latency_objective_cycles.max(1),
            target: target.clamp(0.5, 1.0 - 1e-9),
            fast_window_cycles: fast,
            slow_window_cycles: fast * 12,
            fast_burn_threshold: 14.4,
            slow_burn_threshold: 6.0,
        }
    }

    /// Overrides the window pair (cycles). `slow` is clamped to ≥ `fast`.
    pub fn with_windows(mut self, fast_cycles: u64, slow_cycles: u64) -> Self {
        self.fast_window_cycles = fast_cycles.max(SLICES as u64);
        self.slow_window_cycles = slow_cycles.max(self.fast_window_cycles);
        self
    }

    /// Overrides the burn-rate thresholds.
    pub fn with_thresholds(mut self, fast: f64, slow: f64) -> Self {
        self.fast_burn_threshold = fast.max(0.0);
        self.slow_burn_threshold = slow.max(0.0);
        self
    }

    /// The error budget: allowed bad fraction (`1 - target`).
    pub fn error_budget(&self) -> f64 {
        1.0 - self.target
    }
}

/// What an [`SloEvent`] announces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloEventKind {
    /// Both windows crossed their burn thresholds: the budget is being
    /// spent fast enough to page.
    BurnAlert,
    /// A previously-alerting SLO recovered (fast burn fell below half
    /// its threshold).
    BurnClear,
    /// Cumulative bad requests exceeded the whole error budget over the
    /// observed population. Fires at most once per SLO.
    BudgetExhausted,
}

impl SloEventKind {
    /// Stable lowercase name (exporters and dumps key on it).
    pub fn name(self) -> &'static str {
        match self {
            SloEventKind::BurnAlert => "burn_alert",
            SloEventKind::BurnClear => "burn_clear",
            SloEventKind::BudgetExhausted => "budget_exhausted",
        }
    }
}

/// One typed SLO state transition.
#[derive(Debug, Clone, PartialEq)]
pub struct SloEvent {
    /// Virtual-cycle timestamp of the observation that triggered it.
    pub at_cycles: u64,
    /// SLO (tenant) name.
    pub slo: String,
    /// QoS class label.
    pub class: String,
    /// What happened.
    pub kind: SloEventKind,
    /// Fast-window burn rate at the transition.
    pub fast_burn: f64,
    /// Slow-window burn rate at the transition.
    pub slow_burn: f64,
}

/// Point-in-time SLO health, for dashboards (`nxtop`).
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// SLO (tenant) name.
    pub name: String,
    /// QoS class label.
    pub class: String,
    /// Current fast-window burn rate.
    pub fast_burn: f64,
    /// Current slow-window burn rate.
    pub slow_burn: f64,
    /// Whether the alert condition currently holds.
    pub alerting: bool,
    /// Total requests observed.
    pub observed: u64,
    /// Requests that missed the objective (error or too slow).
    pub bad: u64,
    /// Fraction of the cumulative error budget still unspent, in
    /// `[0, 1]` (1.0 = untouched).
    pub budget_remaining: f64,
}

/// A sliced sliding window of good/bad counts.
#[derive(Debug, Clone)]
struct Window {
    slice_cycles: u64,
    good: [u64; SLICES],
    bad: [u64; SLICES],
    /// Absolute index of the slice currently being filled.
    cur: u64,
}

impl Window {
    fn new(window_cycles: u64) -> Self {
        Self {
            slice_cycles: (window_cycles / SLICES as u64).max(1),
            good: [0; SLICES],
            bad: [0; SLICES],
            cur: 0,
        }
    }

    /// Rotates stale slices out, then counts one observation.
    fn observe(&mut self, now_cycles: u64, is_good: bool) {
        let idx = now_cycles / self.slice_cycles;
        if idx > self.cur {
            let steps = (idx - self.cur).min(SLICES as u64);
            for k in 1..=steps {
                let slot = ((self.cur + k) % SLICES as u64) as usize;
                self.good[slot] = 0;
                self.bad[slot] = 0;
            }
            self.cur = idx;
        }
        let slot = (self.cur % SLICES as u64) as usize;
        if is_good {
            self.good[slot] += 1;
        } else {
            self.bad[slot] += 1;
        }
    }

    fn burn_rate(&self, error_budget: f64) -> f64 {
        let good: u64 = self.good.iter().sum();
        let bad: u64 = self.bad.iter().sum();
        let total = good + bad;
        if total == 0 || error_budget <= 0.0 {
            return 0.0;
        }
        (bad as f64 / total as f64) / error_budget
    }
}

/// Per-SLO evaluation state.
#[derive(Debug)]
struct SloState {
    spec: SloSpec,
    fast: Window,
    slow: Window,
    alerting: bool,
    exhausted: bool,
    observed: u64,
    bad: u64,
}

/// Evaluates a set of SLOs against a deterministic virtual clock.
///
/// Not internally synchronized: the storm driver owns one outright and
/// the threaded service wraps one in its state mutex. All methods are
/// pure functions of the observation stream.
#[derive(Debug, Default)]
pub struct SloMonitor {
    slos: Vec<SloState>,
    events: Vec<SloEvent>,
}

impl SloMonitor {
    /// An empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an SLO; returns its index for [`observe`](Self::observe).
    pub fn add(&mut self, spec: SloSpec) -> usize {
        self.slos.push(SloState {
            fast: Window::new(spec.fast_window_cycles),
            slow: Window::new(spec.slow_window_cycles),
            alerting: false,
            exhausted: false,
            observed: 0,
            bad: 0,
            spec,
        });
        self.slos.len() - 1
    }

    /// Number of registered SLOs.
    pub fn len(&self) -> usize {
        self.slos.len()
    }

    /// True when no SLOs are registered.
    pub fn is_empty(&self) -> bool {
        self.slos.is_empty()
    }

    /// Feeds one completed request into SLO `idx`: `ok` is whether it
    /// completed without a typed error, `latency_cycles` its end-to-end
    /// latency, `now_cycles` the virtual-clock completion time. Returns
    /// the number of events this observation emitted.
    pub fn observe(&mut self, idx: usize, now_cycles: u64, latency_cycles: u64, ok: bool) -> usize {
        let Some(s) = self.slos.get_mut(idx) else {
            return 0;
        };
        let is_good = ok && latency_cycles <= s.spec.latency_objective_cycles;
        s.observed += 1;
        if !is_good {
            s.bad += 1;
        }
        s.fast.observe(now_cycles, is_good);
        s.slow.observe(now_cycles, is_good);

        let budget = s.spec.error_budget();
        let fast_burn = s.fast.burn_rate(budget);
        let slow_burn = s.slow.burn_rate(budget);
        let mut emitted = 0;
        let over =
            fast_burn >= s.spec.fast_burn_threshold && slow_burn >= s.spec.slow_burn_threshold;
        if over && !s.alerting {
            s.alerting = true;
            self.events.push(SloEvent {
                at_cycles: now_cycles,
                slo: s.spec.name.clone(),
                class: s.spec.class.clone(),
                kind: SloEventKind::BurnAlert,
                fast_burn,
                slow_burn,
            });
            emitted += 1;
        } else if s.alerting && fast_burn < s.spec.fast_burn_threshold * 0.5 {
            s.alerting = false;
            self.events.push(SloEvent {
                at_cycles: now_cycles,
                slo: s.spec.name.clone(),
                class: s.spec.class.clone(),
                kind: SloEventKind::BurnClear,
                fast_burn,
                slow_burn,
            });
            emitted += 1;
        }
        if !s.exhausted
            && s.observed >= MIN_BUDGET_COUNT
            && (s.bad as f64) > budget * s.observed as f64
        {
            s.exhausted = true;
            self.events.push(SloEvent {
                at_cycles: now_cycles,
                slo: s.spec.name.clone(),
                class: s.spec.class.clone(),
                kind: SloEventKind::BudgetExhausted,
                fast_burn,
                slow_burn,
            });
            emitted += 1;
        }
        emitted
    }

    /// Every event emitted so far, in emission order.
    pub fn events(&self) -> &[SloEvent] {
        &self.events
    }

    /// Removes and returns all pending events.
    pub fn drain_events(&mut self) -> Vec<SloEvent> {
        std::mem::take(&mut self.events)
    }

    /// Current health of every SLO, in registration order.
    pub fn statuses(&self) -> Vec<SloStatus> {
        self.slos
            .iter()
            .map(|s| {
                let budget = s.spec.error_budget();
                let allowed = budget * s.observed as f64;
                let budget_remaining = if s.observed == 0 || allowed <= 0.0 {
                    1.0
                } else {
                    (1.0 - s.bad as f64 / allowed).clamp(0.0, 1.0)
                };
                SloStatus {
                    name: s.spec.name.clone(),
                    class: s.spec.class.clone(),
                    fast_burn: s.fast.burn_rate(budget),
                    slow_burn: s.slow.burn_rate(budget),
                    alerting: s.alerting,
                    observed: s.observed,
                    bad: s.bad,
                    budget_remaining,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SloSpec {
        SloSpec::new("rpc", "latency", 10_000, 0.9)
            .with_windows(1_600, 19_200)
            .with_thresholds(2.0, 1.0)
    }

    #[test]
    fn healthy_traffic_emits_nothing() {
        let mut m = SloMonitor::new();
        let id = m.add(spec());
        for i in 0..1000u64 {
            m.observe(id, i * 10, 5_000, true);
        }
        assert!(m.events().is_empty());
        let st = &m.statuses()[0];
        assert!(!st.alerting);
        assert_eq!(st.bad, 0);
        assert!((st.budget_remaining - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sustained_badness_alerts_then_clears() {
        let mut m = SloMonitor::new();
        let id = m.add(spec());
        // Warm both windows with good traffic, then turn everything bad:
        // burn shoots past both thresholds and BurnAlert fires once.
        let mut t = 0u64;
        for _ in 0..200 {
            t += 10;
            m.observe(id, t, 1_000, true);
        }
        for _ in 0..400 {
            t += 10;
            m.observe(id, t, 50_000, true); // too slow = bad
        }
        let kinds: Vec<_> = m.events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&SloEventKind::BurnAlert), "{kinds:?}");
        assert_eq!(
            kinds
                .iter()
                .filter(|k| **k == SloEventKind::BurnAlert)
                .count(),
            1,
            "alert latched, not re-fired"
        );
        assert!(m.statuses()[0].alerting);
        // Recovery: good traffic rotates the fast window clean.
        for _ in 0..2000 {
            t += 10;
            m.observe(id, t, 1_000, true);
        }
        let kinds: Vec<_> = m.events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&SloEventKind::BurnClear), "{kinds:?}");
        assert!(!m.statuses()[0].alerting);
    }

    #[test]
    fn errors_exhaust_the_budget_once() {
        let mut m = SloMonitor::new();
        let id = m.add(spec());
        for i in 0..64u64 {
            // Half the traffic errors: way past a 10% budget.
            m.observe(id, i * 10, 1_000, i % 2 == 0);
        }
        let n = m
            .events()
            .iter()
            .filter(|e| e.kind == SloEventKind::BudgetExhausted)
            .count();
        assert_eq!(n, 1);
        let st = &m.statuses()[0];
        assert_eq!(st.observed, 64);
        assert_eq!(st.bad, 32);
        assert!(st.budget_remaining < 1e-12);
    }

    #[test]
    fn event_stream_is_deterministic() {
        let run = || {
            let mut m = SloMonitor::new();
            let id = m.add(spec());
            for i in 0..3000u64 {
                let bad_phase = (500..900).contains(&i);
                m.observe(id, i * 7, if bad_phase { 99_999 } else { 100 }, i % 97 != 0);
            }
            m.drain_events()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn window_rotation_forgets_old_slices() {
        let mut w = Window::new(1_600); // slice = 100 cycles
        for i in 0..SLICES as u64 {
            w.observe(i * 100, false);
        }
        assert!(w.burn_rate(0.1) > 9.0);
        // A long quiet gap then one good sample: everything bad rotated out.
        w.observe(1_000_000, true);
        assert_eq!(w.burn_rate(0.1), 0.0);
    }
}
