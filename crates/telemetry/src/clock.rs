//! The cycle-domain clock.
//!
//! Telemetry timestamps are **modeled engine cycles**, never wall clock:
//! every instrumented site advances the clock by a deterministic cycle
//! cost (an engine report, a modeled overhead constant, a backoff
//! converted at the configured frequency). Two runs of the same workload
//! under the same fault seed therefore produce *identical* timelines —
//! the property that makes a p99 regression replayable byte-for-byte.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone, shareable cycle counter.
///
/// `advance` both moves the clock and hands back the interval it covered,
/// so a caller can stamp a span with `(start, len)` in one step.
#[derive(Debug, Default)]
pub struct CycleClock {
    cycles: AtomicU64,
}

impl CycleClock {
    /// A clock at cycle zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current cycle count.
    #[inline]
    pub fn now(&self) -> u64 {
        self.cycles.load(Ordering::Relaxed)
    }

    /// Advances the clock by `cycles`, returning the start of the
    /// interval just consumed.
    #[inline]
    pub fn advance(&self, cycles: u64) -> u64 {
        self.cycles.fetch_add(cycles, Ordering::Relaxed)
    }
}

/// Converts a wall-clock duration into cycles at `freq_ghz` — used to
/// bring modeled real-time quantities (backoffs, fault-resolution
/// latency) into the cycle domain deterministically.
pub fn duration_to_cycles(d: std::time::Duration, freq_ghz: f64) -> u64 {
    (d.as_nanos() as f64 * freq_ghz) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn advance_is_monotone_and_returns_start() {
        let c = CycleClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(100), 0);
        assert_eq!(c.advance(50), 100);
        assert_eq!(c.now(), 150);
    }

    #[test]
    fn duration_conversion_uses_frequency() {
        assert_eq!(duration_to_cycles(Duration::from_nanos(100), 2.0), 200);
        assert_eq!(duration_to_cycles(Duration::from_micros(1), 2.5), 2500);
        assert_eq!(duration_to_cycles(Duration::ZERO, 3.0), 0);
    }
}
