//! Shared log-bucket geometry.
//!
//! One implementation of the HDR-style bucket math used everywhere a
//! value is binned by magnitude: the [`LogHistogram`](crate::LogHistogram)
//! hot path, its exemplar table, the SLO engine's latency accounting, and
//! any service-side code that wants to reason about bucket bounds without
//! owning a histogram. Values land in power-of-two octaves subdivided
//! into [`SUB_BUCKETS`] linear sub-buckets, bounding relative
//! quantization error by `1/SUB_BUCKETS` (≈ 3.1%) at any magnitude while
//! the whole `u64` range fits in a fixed [`BUCKETS`]-slot array.

/// Sub-bucket resolution: each power-of-two octave splits into this many
/// linear buckets. 32 bounds relative error at 1/32 ≈ 3.1%.
pub const SUB_BUCKETS: u64 = 32;

/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 5;

/// Total bucket count covering all of `u64`.
///
/// Values below `SUB_BUCKETS` index directly; above, each of the
/// remaining `64 - SUB_BITS` octaves contributes `SUB_BUCKETS` buckets.
pub const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB_BUCKETS as usize;

/// Bucket index for a value.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    // Top SUB_BITS+1 bits of v, in [SUB_BUCKETS, 2*SUB_BUCKETS).
    let top = v >> shift;
    ((u64::from(shift) + 1) * SUB_BUCKETS + (top - SUB_BUCKETS)) as usize
}

/// Smallest value mapping to bucket `i`.
pub fn bucket_low(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB_BUCKETS {
        return i;
    }
    let block = i / SUB_BUCKETS; // ≥ 1
    let off = i % SUB_BUCKETS;
    (SUB_BUCKETS + off) << (block - 1)
}

/// Largest value mapping to bucket `i` (saturating at `u64::MAX`).
pub fn bucket_high(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB_BUCKETS {
        return i;
    }
    let block = i / SUB_BUCKETS;
    let width = 1u64 << (block - 1);
    bucket_low(i as usize).saturating_add(width - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_the_range() {
        // Each bucket's low is the previous bucket's high + 1, and every
        // value maps into the bucket whose bounds contain it.
        for i in 1..BUCKETS - 1 {
            assert_eq!(bucket_low(i), bucket_high(i - 1) + 1, "bucket {i}");
        }
        for v in [0u64, 1, 31, 32, 33, 1000, 1 << 20, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_low(i) <= v && v <= bucket_high(i), "value {v}");
        }
    }

    #[test]
    fn small_values_index_directly() {
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_low(v as usize), v);
            assert_eq!(bucket_high(v as usize), v);
        }
    }

    #[test]
    fn relative_width_is_bounded() {
        // Above the linear range every bucket's width is ≤ low/SUB_BUCKETS,
        // which is what bounds quantile quantization error.
        for v in [100u64, 10_000, 1 << 30, u64::MAX / 3] {
            let i = bucket_index(v);
            let width = bucket_high(i) - bucket_low(i) + 1;
            assert!(
                width <= bucket_low(i) / SUB_BUCKETS + 1,
                "bucket {i} width {width}"
            );
        }
    }
}
