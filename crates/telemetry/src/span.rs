//! Per-request span tracing into a lock-free ring buffer.
//!
//! A [`SpanEvent`] is one stage of one request's life — submit, queue
//! wait, ERAT touch, engine occupancy, retry backoff, fallback, complete
//! — stamped in the **cycle domain** (see [`crate::CycleClock`]). Events
//! are tiny fixed-size records; writers claim a slot with one atomic
//! `fetch_add` and publish it with a sequence stamp, so recording never
//! takes a lock and never blocks another writer (the ring overwrites its
//! oldest entries under overflow, counting what it dropped).
//!
//! Timestamps are *request-local*: each request's timeline starts at
//! cycle 0 and stages accumulate deterministic modeled costs. The export
//! layer gives each request its own Chrome-trace `tid`, so timelines
//! render side by side, and dumps are sorted by `(request, seq)` — two
//! runs with the same fault seed and worker count produce byte-identical
//! dumps regardless of thread interleaving.

use std::sync::atomic::{AtomicU64, Ordering};

/// The stage of a request a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// CRB build + VAS paste.
    Submit = 0,
    /// Waiting in the submission queue for an engine.
    QueueWait = 1,
    /// Touching pages after a translation fault (ERAT resolution).
    EratTouch = 2,
    /// Engine occupancy (the compress/decompress itself).
    Engine = 3,
    /// Backoff before resubmitting after a transient fault.
    Retry = 4,
    /// Degradation to the software path (or serial pool fallback).
    Fallback = 5,
    /// CSB post + completion notification.
    Complete = 6,
    /// One parallel-pool shard's compression.
    Shard = 7,
    /// Service admission: credit acquire + receive-window accounting.
    Admit = 8,
    /// DWRR dequeue + (possibly coalesced) engine submission.
    Dispatch = 9,
}

impl Stage {
    /// Stable lowercase name (exporters key on it).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Submit => "submit",
            Stage::QueueWait => "queue_wait",
            Stage::EratTouch => "erat_touch",
            Stage::Engine => "engine",
            Stage::Retry => "retry",
            Stage::Fallback => "fallback",
            Stage::Complete => "complete",
            Stage::Shard => "shard",
            Stage::Admit => "admit",
            Stage::Dispatch => "dispatch",
        }
    }

    fn from_u64(v: u64) -> Stage {
        match v {
            0 => Stage::Submit,
            1 => Stage::QueueWait,
            2 => Stage::EratTouch,
            3 => Stage::Engine,
            4 => Stage::Retry,
            5 => Stage::Fallback,
            7 => Stage::Shard,
            8 => Stage::Admit,
            9 => Stage::Dispatch,
            _ => Stage::Complete,
        }
    }
}

/// One recorded span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Request index (the fault plan's request coordinate where one is
    /// active, else a per-sink monotone counter).
    pub request: u64,
    /// Span index within the request's timeline (deterministic: derived
    /// from attempt/shard numbering, not arrival order).
    pub seq: u32,
    /// `seq` of the span this one hangs under (0 for root-level spans);
    /// the trace-propagation layer threads it via
    /// [`TraceContext`](crate::TraceContext).
    pub parent: u32,
    /// Worker / engine / unit that executed the stage (0 when n/a).
    pub worker: u32,
    /// The stage covered.
    pub stage: Stage,
    /// Request-local start, in modeled cycles.
    pub start_cycles: u64,
    /// Duration, in modeled cycles.
    pub dur_cycles: u64,
    /// Bytes the stage operated on (0 when n/a).
    pub bytes: u64,
    /// Stage-specific detail: attempt number for retries, CSB code for
    /// errors, queue depth for queue waits.
    pub detail: u64,
}

/// Words per ring slot: seven payload words + the sequence stamp.
const PAYLOAD_WORDS: usize = 7;

struct Slot {
    /// Publication stamp: `2*index + 2` once the event for logical
    /// `index` is fully written; odd while a write is in flight.
    seq: AtomicU64,
    words: [AtomicU64; PAYLOAD_WORDS],
}

impl Slot {
    fn empty() -> Self {
        Self {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A bounded, lock-free multi-producer span ring.
///
/// Writers are wait-free (one `fetch_add` + eight relaxed stores + one
/// release store); the snapshot reader validates each slot's sequence
/// stamp before and after copying it, discarding records a concurrent
/// writer was overwriting. Overflow evicts the oldest events.
pub struct SpanRing {
    slots: Box<[Slot]>,
    mask: u64,
    head: AtomicU64,
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl SpanRing {
    /// A ring holding up to `capacity` events (rounded up to a power of
    /// two, minimum 8).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        Self {
            slots: (0..cap).map(|_| Slot::empty()).collect(),
            mask: cap as u64 - 1,
            head: AtomicU64::new(0),
        }
    }

    /// Capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (including any since evicted).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events evicted by overflow.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Records one event (wait-free).
    pub fn push(&self, ev: &SpanEvent) {
        let idx = self.head.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(idx & self.mask) as usize];
        // Mark the write in flight (odd stamp), fill, then publish the
        // even stamp for this logical index.
        slot.seq.store(2 * idx + 1, Ordering::Release);
        let w = &slot.words;
        w[0].store(ev.request, Ordering::Relaxed);
        w[1].store(
            (u64::from(ev.seq) << 32) | u64::from(ev.worker), // seq | worker
            Ordering::Relaxed,
        );
        w[2].store(
            (u64::from(ev.parent) << 32) | ev.stage as u64, // parent | stage
            Ordering::Relaxed,
        );
        w[3].store(ev.start_cycles, Ordering::Relaxed);
        w[4].store(ev.dur_cycles, Ordering::Relaxed);
        w[5].store(ev.bytes, Ordering::Relaxed);
        w[6].store(ev.detail, Ordering::Relaxed);
        slot.seq.store(2 * idx + 2, Ordering::Release);
    }

    /// Copies out every currently-readable event, oldest first by ring
    /// position. Records being overwritten concurrently are skipped.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for idx in start..head {
            let slot = &self.slots[(idx & self.mask) as usize];
            let stamp = 2 * idx + 2;
            if slot.seq.load(Ordering::Acquire) != stamp {
                continue;
            }
            let w = &slot.words;
            let words: [u64; PAYLOAD_WORDS] = std::array::from_fn(|i| w[i].load(Ordering::Relaxed));
            // Re-validate: if a writer lapped us mid-copy the stamp moved.
            if slot.seq.load(Ordering::Acquire) != stamp {
                continue;
            }
            out.push(SpanEvent {
                request: words[0],
                seq: (words[1] >> 32) as u32,
                worker: words[1] as u32,
                parent: (words[2] >> 32) as u32,
                stage: Stage::from_u64(words[2] & 0xffff_ffff),
                start_cycles: words[3],
                dur_cycles: words[4],
                bytes: words[5],
                detail: words[6],
            });
        }
        out
    }

    /// [`snapshot`](Self::snapshot) sorted by the deterministic dump
    /// order: `(request, seq, stage, start)`. Two runs that record the
    /// same event *set* export identically however their threads
    /// interleaved.
    pub fn sorted_snapshot(&self) -> Vec<SpanEvent> {
        let mut evs = self.snapshot();
        evs.sort_by_key(|e| (e.request, e.seq, e.stage, e.start_cycles, e.worker));
        evs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(request: u64, seq: u32) -> SpanEvent {
        SpanEvent {
            request,
            seq,
            parent: seq.wrapping_sub(1),
            worker: 3,
            stage: Stage::Engine,
            start_cycles: 10 * u64::from(seq),
            dur_cycles: 10,
            bytes: 4096,
            detail: 1,
        }
    }

    #[test]
    fn roundtrips_events() {
        let ring = SpanRing::new(16);
        for i in 0..5 {
            ring.push(&ev(7, i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 5);
        assert_eq!(snap[0], ev(7, 0));
        assert_eq!(snap[4], ev(7, 4));
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn overflow_keeps_newest_and_counts_drops() {
        let ring = SpanRing::new(8);
        for i in 0..20 {
            ring.push(&ev(1, i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 8);
        assert_eq!(snap[0].seq, 12); // oldest surviving
        assert_eq!(snap[7].seq, 19);
        assert_eq!(ring.dropped(), 12);
        assert_eq!(ring.recorded(), 20);
    }

    #[test]
    fn sorted_snapshot_orders_by_request_then_seq() {
        let ring = SpanRing::new(16);
        ring.push(&ev(9, 1));
        ring.push(&ev(2, 0));
        ring.push(&ev(9, 0));
        let s = ring.sorted_snapshot();
        assert_eq!(
            s.iter().map(|e| (e.request, e.seq)).collect::<Vec<_>>(),
            vec![(2, 0), (9, 0), (9, 1)]
        );
    }

    #[test]
    fn concurrent_pushes_are_all_recorded() {
        use std::sync::Arc;
        let ring = Arc::new(SpanRing::new(4096));
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let r = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..256u32 {
                        r.push(&ev(t, i));
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().expect("pusher");
        }
        let snap = ring.sorted_snapshot();
        assert_eq!(snap.len(), 4 * 256);
        // Every (request, seq) pair present exactly once.
        for t in 0..4u64 {
            for i in 0..256u32 {
                assert!(snap
                    .binary_search_by_key(&(t, i), |e| (e.request, e.seq))
                    .is_ok());
            }
        }
    }

    #[test]
    fn stage_names_are_stable() {
        for (stage, name) in [
            (Stage::Submit, "submit"),
            (Stage::QueueWait, "queue_wait"),
            (Stage::EratTouch, "erat_touch"),
            (Stage::Engine, "engine"),
            (Stage::Retry, "retry"),
            (Stage::Fallback, "fallback"),
            (Stage::Complete, "complete"),
            (Stage::Shard, "shard"),
            (Stage::Admit, "admit"),
            (Stage::Dispatch, "dispatch"),
        ] {
            assert_eq!(stage.name(), name);
            assert_eq!(Stage::from_u64(stage as u64), stage);
        }
    }
}
