//! The unified metrics registry.
//!
//! One named-metric namespace for the whole stack: `NxStats` per-codec
//! counters, `FaultStats`, async-queue depth/overflow, parallel-engine
//! per-worker counters, and the nx-sys runner/ERAT/CSB accounting all
//! register here and export through the same three formats. Names follow
//! Prometheus conventions — `nx_<subsystem>_<what>_<unit>` with
//! `snake_case` labels baked into the name (e.g.
//! `nx_core_compress_bytes_total{format="deflate"}`) — and the registry
//! iterates in deterministic (sorted) order so exports are reproducible.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::{HistogramSnapshot, LogHistogram};

/// A monotone counter handle (cloned handles share the underlying cell).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A free-standing counter (registered ones come from the registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Sets the absolute value (for mirroring an external counter).
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// A gauge handle: a signed instantaneous value (queue depth, in-flight).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A free-standing gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` (may be negative), returning the new value.
    #[inline]
    pub fn add(&self, n: i64) -> i64 {
        self.0.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<LogHistogram>),
}

/// A point-in-time value of one registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone counter reading.
    Counter(u64),
    /// Instantaneous gauge reading.
    Gauge(i64),
    /// Histogram snapshot.
    Histogram(HistogramSnapshot),
}

/// A source that contributes externally-owned metrics at snapshot time.
///
/// Existing stat blocks (`NxStats`, `FaultStats`, pool/runner counters)
/// implement this instead of migrating their storage: the registry pulls
/// their current readings into every snapshot under their own names.
pub trait MetricSource: Send + Sync {
    /// Appends `(name, value)` pairs for the current readings. Names must
    /// be stable and unique within the source.
    fn collect(&self, out: &mut Vec<(String, MetricValue)>);
}

#[derive(Default)]
struct Inner {
    metrics: BTreeMap<String, Metric>,
    sources: Vec<(String, Arc<dyn MetricSource>)>,
}

/// The registry: a deterministic name → metric map plus pull sources.
///
/// Cheap to clone (all handles share state). Registration is idempotent —
/// asking for an existing name returns the existing handle, so callers
/// don't coordinate.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Inner>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("MetricsRegistry")
            .field("metrics", &inner.metrics.len())
            .field("sources", &inner.sources.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Telemetry must never take the process down: recover a poisoned
        // lock rather than propagating a panic into the hot path.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns the counter named `name`, creating it if absent. If the
    /// name exists as another kind, a fresh unregistered handle is
    /// returned (the first registration wins; telemetry never panics).
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.lock();
        match inner
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => Counter::new(),
        }
    }

    /// Returns the gauge named `name`, creating it if absent.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.lock();
        match inner
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::new(),
        }
    }

    /// Returns the histogram named `name`, creating it if absent.
    pub fn histogram(&self, name: &str) -> Arc<LogHistogram> {
        let mut inner = self.lock();
        match inner
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(LogHistogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => Arc::new(LogHistogram::new()),
        }
    }

    /// Registers a pull source under a stable `id` (replacing any source
    /// previously registered under the same id).
    pub fn register_source(&self, id: &str, source: Arc<dyn MetricSource>) {
        let mut inner = self.lock();
        if let Some(slot) = inner.sources.iter_mut().find(|(sid, _)| sid == id) {
            slot.1 = source;
        } else {
            inner.sources.push((id.to_string(), source));
        }
    }

    /// A deterministic point-in-time reading of every metric: registered
    /// metrics first, then pull-source contributions, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let inner = self.lock();
        let mut out: Vec<(String, MetricValue)> = inner
            .metrics
            .iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), v)
            })
            .collect();
        for (_, src) in &inner.sources {
            src.collect(&mut out);
        }
        // Sources may interleave names anywhere in the namespace: sort the
        // union (stable on name collisions) so exports are reproducible.
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_and_registration_is_idempotent() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("nx_test_total");
        let b = reg.counter("nx_test_total");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);

        let g = reg.gauge("nx_test_depth");
        assert_eq!(g.add(3), 3);
        assert_eq!(g.add(-1), 2);
        assert_eq!(reg.gauge("nx_test_depth").get(), 2);

        let h = reg.histogram("nx_test_latency_cycles");
        h.record(100);
        assert_eq!(reg.histogram("nx_test_latency_cycles").count(), 1);
    }

    #[test]
    fn kind_mismatch_returns_detached_handle() {
        let reg = MetricsRegistry::new();
        reg.counter("nx_kind").inc();
        let g = reg.gauge("nx_kind"); // wrong kind: detached, no panic
        g.set(9);
        match &reg.snapshot()[..] {
            [(name, MetricValue::Counter(1))] => assert_eq!(name, "nx_kind"),
            other => panic!("unexpected snapshot {other:?}"),
        }
    }

    #[test]
    fn snapshot_is_sorted_and_includes_sources() {
        struct Src;
        impl MetricSource for Src {
            fn collect(&self, out: &mut Vec<(String, MetricValue)>) {
                out.push(("nx_a_pulled".into(), MetricValue::Counter(7)));
            }
        }
        let reg = MetricsRegistry::new();
        reg.counter("nx_z_total").inc();
        reg.register_source("src", Arc::new(Src));
        reg.register_source("src", Arc::new(Src)); // replace, not duplicate
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["nx_a_pulled", "nx_z_total"]);
    }
}
