//! Request-scoped trace propagation.
//!
//! A [`TraceContext`] is the tiny value handed across every stage
//! boundary of a request's life: service admission mints one, the
//! scheduler and engine front ends carry it, and every span the request
//! emits downstream shares its `trace_id` (the span ring's `request`
//! coordinate). The context also carries the **parent span id** — the
//! `seq` of the span that caused the handoff — so exporters and the
//! nesting proptest can reconstruct the fan-out tree, plus the
//! deterministic continuation state (`child_seq`, `at_cycles`) that keeps
//! a request's timeline request-local and byte-stable across runs.
//!
//! Sampling is decided once, at the root, by a [`Sampler`]: a pure
//! function of the trace id (no RNG, no clock), so the same request
//! stream samples the same requests on every run. An unsampled context
//! still flows through the stack — histograms and counters record
//! unconditionally; only span-ring pushes are skipped — which is what
//! keeps 1/256 sampling within the E24 ≤1% overhead gate.

/// Sampling decision policy for new traces.
///
/// Pure and deterministic: the decision is a function of the trace id
/// alone, so two runs over the same request stream sample identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sampler {
    /// Record spans for every request.
    #[default]
    Always,
    /// Record spans for no request (histograms/counters still record).
    Never,
    /// Record spans for one request in `n` (`trace_id % n == 0`).
    OneIn(u64),
}

impl Sampler {
    /// A 1-in-`n` sampler; `n ≤ 1` degenerates to [`Sampler::Always`].
    pub fn one_in(n: u64) -> Self {
        if n <= 1 {
            Sampler::Always
        } else {
            Sampler::OneIn(n)
        }
    }

    /// Whether a trace with this id records spans.
    #[inline]
    pub fn decide(self, trace_id: u64) -> bool {
        match self {
            Sampler::Always => true,
            Sampler::Never => false,
            Sampler::OneIn(n) => trace_id.is_multiple_of(n.max(1)),
        }
    }
}

/// Root span id: a root context's `parent_span` (no parent).
pub const NO_PARENT: u32 = 0;

/// The per-request trace context threaded through the stack.
///
/// `trace_id` keys every span of the request; `parent_span` is the `seq`
/// of the span the current stage hangs under; `sampled` gates span-ring
/// recording; `child_seq`/`at_cycles` are the deterministic continuation
/// point (first free span index and request-local cycle cursor) handed to
/// the next stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace id — the span ring's `request` coordinate.
    pub trace_id: u64,
    /// `seq` of the parent span ([`NO_PARENT`] at the root).
    pub parent_span: u32,
    /// Whether this trace records spans (histograms record regardless).
    pub sampled: bool,
    /// First span `seq` available to the receiving stage.
    pub child_seq: u32,
    /// Request-local cycle cursor at handoff.
    pub at_cycles: u64,
}

impl TraceContext {
    /// A new root context for `trace_id`, sampled per `sampler`.
    pub fn root(trace_id: u64, sampler: Sampler) -> Self {
        Self {
            trace_id,
            parent_span: NO_PARENT,
            sampled: sampler.decide(trace_id),
            child_seq: 0,
            at_cycles: 0,
        }
    }

    /// An unsampled context (spans suppressed, id still usable).
    pub fn unsampled(trace_id: u64) -> Self {
        Self {
            trace_id,
            parent_span: NO_PARENT,
            sampled: false,
            child_seq: 0,
            at_cycles: 0,
        }
    }

    /// A child context hanging under span `parent_span`, with the next
    /// free span index and the cycle cursor advanced to `at_cycles`.
    pub fn child(&self, parent_span: u32, child_seq: u32, at_cycles: u64) -> Self {
        Self {
            trace_id: self.trace_id,
            parent_span,
            sampled: self.sampled,
            child_seq,
            at_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_is_deterministic_and_ratioed() {
        let s = Sampler::one_in(256);
        let hits: Vec<u64> = (0..2048).filter(|&id| s.decide(id)).collect();
        assert_eq!(hits.len(), 8);
        assert!(hits.iter().all(|id| id % 256 == 0));
        // Same ids decide the same way on every call.
        for &id in &hits {
            assert!(s.decide(id));
        }
        assert!(Sampler::Always.decide(u64::MAX));
        assert!(!Sampler::Never.decide(0));
        assert_eq!(Sampler::one_in(1), Sampler::Always);
        assert_eq!(Sampler::one_in(0), Sampler::Always);
    }

    #[test]
    fn child_contexts_inherit_id_and_sampling() {
        let root = TraceContext::root(512, Sampler::one_in(256));
        assert!(root.sampled);
        assert_eq!(root.parent_span, NO_PARENT);
        let child = root.child(2, 3, 1600);
        assert_eq!(child.trace_id, 512);
        assert_eq!(child.parent_span, 2);
        assert_eq!(child.child_seq, 3);
        assert_eq!(child.at_cycles, 1600);
        assert!(child.sampled);

        let dark = TraceContext::root(513, Sampler::one_in(256));
        assert!(!dark.sampled);
        assert!(!dark.child(0, 1, 0).sampled);
    }
}
