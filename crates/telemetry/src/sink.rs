//! The instrumentation handle threaded through the stack.
//!
//! A [`TelemetrySink`] is what instrumented code holds: `Nx`, the
//! parallel pool, the async queue, and the nx-sys runner all accept one
//! and call it on their hot paths. A disabled sink is a `None` — every
//! call is a branch on a null pointer and returns immediately, so the
//! uninstrumented cost is near zero (E19 gates it at ≤ 5%). An enabled
//! sink owns the span ring and pre-registered core histograms and shares
//! a [`MetricsRegistry`] with whatever else wants to export.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::flight::FlightRecorder;
use crate::histogram::LogHistogram;
use crate::registry::MetricsRegistry;
use crate::span::{SpanEvent, SpanRing, Stage};
use crate::trace::{Sampler, TraceContext};

/// Default span-ring capacity (events) for [`TelemetrySink::enabled`].
pub const DEFAULT_TRACE_CAPACITY: usize = 64 * 1024;

#[derive(Debug)]
struct SinkInner {
    registry: MetricsRegistry,
    ring: SpanRing,
    next_request: AtomicU64,
    request_latency: Arc<LogHistogram>,
    shard_latency: Arc<LogHistogram>,
    queue_depth: Arc<LogHistogram>,
    bytes_per_request: Arc<LogHistogram>,
    /// Optional black-box tee: every span recorded here is also pushed
    /// into the flight recorder's (smaller) ring.
    flight: OnceLock<Arc<FlightRecorder>>,
}

/// A cheap, cloneable telemetry handle (see module docs).
#[derive(Debug, Clone, Default)]
pub struct TelemetrySink {
    inner: Option<Arc<SinkInner>>,
    sampler: Sampler,
}

impl TelemetrySink {
    /// The no-op sink: every recording call is a null-check and return.
    pub fn disabled() -> Self {
        Self {
            inner: None,
            sampler: Sampler::Always,
        }
    }

    /// An enabled sink recording into `registry`, with a span ring of
    /// [`DEFAULT_TRACE_CAPACITY`] events.
    pub fn enabled(registry: MetricsRegistry) -> Self {
        Self::enabled_with_capacity(registry, DEFAULT_TRACE_CAPACITY)
    }

    /// An enabled sink with an explicit span-ring capacity.
    pub fn enabled_with_capacity(registry: MetricsRegistry, trace_capacity: usize) -> Self {
        let inner = SinkInner {
            request_latency: registry.histogram("nx_request_latency_cycles"),
            shard_latency: registry.histogram("nx_shard_latency_cycles"),
            queue_depth: registry.histogram("nx_queue_depth"),
            bytes_per_request: registry.histogram("nx_request_bytes"),
            ring: SpanRing::new(trace_capacity),
            next_request: AtomicU64::new(0),
            flight: OnceLock::new(),
            registry,
        };
        Self {
            inner: Some(Arc::new(inner)),
            sampler: Sampler::Always,
        }
    }

    /// Sets the trace sampling policy (spans only — histograms and
    /// counters always record). Returns the sink for chaining.
    pub fn with_sampler(mut self, sampler: Sampler) -> Self {
        self.sampler = sampler;
        self
    }

    /// The sink's sampling policy.
    pub fn sampler(&self) -> Sampler {
        self.sampler
    }

    /// Attaches a flight recorder: from now on every span recorded via
    /// this sink (or any clone taken *after* the attach) is teed into
    /// the recorder's black-box ring. First attach wins.
    pub fn attach_flight(&self, recorder: Arc<FlightRecorder>) {
        if let Some(i) = &self.inner {
            let _ = i.flight.set(recorder);
        }
    }

    /// The attached flight recorder, if any.
    pub fn flight(&self) -> Option<&Arc<FlightRecorder>> {
        self.inner.as_deref().and_then(|i| i.flight.get())
    }

    /// Mints a new root [`TraceContext`]: fresh trace id, sampling
    /// decided by the sink's [`Sampler`]. A disabled sink still hands
    /// out unique ids but never samples.
    #[inline]
    pub fn begin_trace(&self) -> TraceContext {
        let id = self.begin_request();
        let mut ctx = TraceContext::root(id, self.sampler);
        ctx.sampled &= self.inner.is_some();
        ctx
    }

    /// Whether recording does anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The shared registry (`None` for a disabled sink).
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.inner.as_deref().map(|i| &i.registry)
    }

    /// Allocates the next request id. Disabled sinks hand out ids too
    /// (from a process-wide counter) so span-less call sites still get a
    /// usable coordinate.
    #[inline]
    pub fn begin_request(&self) -> u64 {
        match &self.inner {
            Some(i) => i.next_request.fetch_add(1, Ordering::Relaxed),
            None => {
                static FALLBACK: AtomicU64 = AtomicU64::new(0);
                FALLBACK.fetch_add(1, Ordering::Relaxed)
            }
        }
    }

    /// Records one span event.
    #[inline]
    pub fn span(&self, ev: &SpanEvent) {
        if let Some(i) = &self.inner {
            i.ring.push(ev);
            if let Some(fr) = i.flight.get() {
                fr.span(ev);
            }
        }
    }

    /// Convenience: build and record a span in one call.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn emit(
        &self,
        request: u64,
        seq: u32,
        parent: u32,
        stage: Stage,
        worker: u32,
        start_cycles: u64,
        dur_cycles: u64,
        bytes: u64,
        detail: u64,
    ) {
        self.span(&SpanEvent {
            request,
            seq,
            parent,
            worker,
            stage,
            start_cycles,
            dur_cycles,
            bytes,
            detail,
        });
    }

    /// Records an end-to-end request latency (cycles) and its size.
    #[inline]
    pub fn record_request(&self, latency_cycles: u64, bytes: u64) {
        if let Some(i) = &self.inner {
            i.request_latency.record(latency_cycles);
            i.bytes_per_request.record(bytes);
        }
    }

    /// Records an end-to-end request latency with its trace id as the
    /// bucket exemplar: the tail of `nx_request_latency_cycles` then
    /// links straight to the slow request's span breakdown.
    #[inline]
    pub fn record_request_traced(&self, latency_cycles: u64, bytes: u64, trace_id: u64) {
        if let Some(i) = &self.inner {
            i.request_latency.record_traced(latency_cycles, trace_id);
            i.bytes_per_request.record(bytes);
        }
    }

    /// Records one shard's latency (cycles).
    #[inline]
    pub fn record_shard(&self, latency_cycles: u64) {
        if let Some(i) = &self.inner {
            i.shard_latency.record(latency_cycles);
        }
    }

    /// Records an observed queue depth.
    #[inline]
    pub fn record_queue_depth(&self, depth: u64) {
        if let Some(i) = &self.inner {
            i.queue_depth.record(depth);
        }
    }

    /// The deterministic trace dump: all spans sorted by
    /// `(request, seq, stage, start)`. Empty for a disabled sink.
    pub fn trace(&self) -> Vec<SpanEvent> {
        match &self.inner {
            Some(i) => i.ring.sorted_snapshot(),
            None => Vec::new(),
        }
    }

    /// Spans evicted by ring overflow (0 when disabled).
    pub fn trace_dropped(&self) -> u64 {
        self.inner.as_deref().map_or(0, |i| i.ring.dropped())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_inert() {
        let sink = TelemetrySink::disabled();
        assert!(!sink.is_enabled());
        sink.record_request(100, 4096);
        sink.record_shard(10);
        sink.record_queue_depth(3);
        sink.emit(0, 0, 0, Stage::Engine, 0, 0, 10, 0, 0);
        assert!(sink.trace().is_empty());
        assert_eq!(sink.trace_dropped(), 0);
        assert!(sink.registry().is_none());
        let a = sink.begin_request();
        assert!(sink.begin_request() > a);
    }

    #[test]
    fn enabled_sink_records_into_registry_and_ring() {
        let reg = MetricsRegistry::new();
        let sink = TelemetrySink::enabled_with_capacity(reg.clone(), 64);
        assert!(sink.is_enabled());
        let req = sink.begin_request();
        assert_eq!(req, 0);
        sink.emit(req, 0, 0, Stage::Submit, 1, 0, 50, 4096, 0);
        sink.record_request(500, 4096);
        sink.record_shard(120);
        sink.record_queue_depth(2);

        assert_eq!(reg.histogram("nx_request_latency_cycles").count(), 1);
        assert_eq!(reg.histogram("nx_shard_latency_cycles").count(), 1);
        assert_eq!(reg.histogram("nx_queue_depth").count(), 1);
        assert_eq!(reg.histogram("nx_request_bytes").count(), 1);

        let trace = sink.trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].stage, Stage::Submit);
        assert_eq!(trace[0].bytes, 4096);
    }

    #[test]
    fn clones_share_the_ring() {
        let sink = TelemetrySink::enabled(MetricsRegistry::new());
        let other = sink.clone();
        other.emit(0, 0, 0, Stage::Complete, 0, 0, 1, 0, 0);
        assert_eq!(sink.trace().len(), 1);
    }

    #[test]
    fn sampler_gates_traces_not_ids() {
        let sink =
            TelemetrySink::enabled(MetricsRegistry::new()).with_sampler(Sampler::one_in(256));
        let a = sink.begin_trace();
        assert_eq!(a.trace_id, 0);
        assert!(a.sampled);
        let b = sink.begin_trace();
        assert_eq!(b.trace_id, 1);
        assert!(!b.sampled);
        // A disabled sink never samples but still hands out ids.
        let dark = TelemetrySink::disabled();
        assert!(!dark.begin_trace().sampled);
    }

    #[test]
    fn flight_tee_receives_spans() {
        let sink = TelemetrySink::enabled(MetricsRegistry::new());
        let fr = Arc::new(FlightRecorder::with_capacity(64, 64));
        sink.attach_flight(Arc::clone(&fr));
        sink.emit(5, 0, 0, Stage::Admit, 0, 0, 100, 64, 0);
        assert_eq!(sink.trace().len(), 1);
        assert_eq!(fr.spans().len(), 1);
        assert_eq!(fr.spans()[0].request, 5);
        assert!(sink.flight().is_some());
    }
}
