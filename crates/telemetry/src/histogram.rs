//! Log-bucketed latency/size histograms (HDR-style).
//!
//! Values land in power-of-two octaves subdivided into [`SUB_BUCKETS`]
//! linear sub-buckets, so relative quantization error is bounded by
//! `1/SUB_BUCKETS` (≈ 3.1%) at any magnitude while the whole `u64` range
//! fits in a fixed [`BUCKETS`]-slot array. Recording is one atomic add —
//! cheap enough for per-request hot paths — and two histograms with the
//! same geometry [`merge`](LogHistogram::merge) exactly (merging equals
//! having recorded into one histogram, a property the test battery pins).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

// The bucket geometry lives in `crate::buckets` — one shared
// implementation for the histogram, its exemplar table, and the SLO
// engine's latency accounting (re-exported at the crate root).
#[cfg(test)]
use crate::buckets::SUB_BUCKETS;
use crate::buckets::{bucket_high, bucket_index, BUCKETS};

/// A fresh all-zero bucket array (`AtomicU64` is not `Copy`; build the
/// array through a `Vec`).
fn zeroed_buckets() -> Box<[AtomicU64; BUCKETS]> {
    let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
    match v.into_boxed_slice().try_into() {
        Ok(b) => b,
        Err(_) => unreachable!("vector built with BUCKETS elements"),
    }
}

/// A lock-free, mergeable log-bucketed histogram over `u64` values.
///
/// All counters are monotone atomics: recording from many threads and
/// snapshotting concurrently are both safe (a snapshot taken mid-traffic
/// is a consistent-enough view: counts only grow).
pub struct LogHistogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// Per-bucket exemplar slots, allocated on the first traced record:
    /// each holds `trace_id + 1` of the bucket's most recent sample
    /// (0 = none). Untraced histograms never pay for the table.
    exemplars: OnceLock<Box<[AtomicU64; BUCKETS]>>,
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: zeroed_buckets(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            exemplars: OnceLock::new(),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records one observation carrying a trace id: the value's bucket
    /// keeps `trace_id` as its most recent exemplar, so a tail bucket
    /// links straight to that request's per-stage span breakdown.
    #[inline]
    pub fn record_traced(&self, v: u64, trace_id: u64) {
        self.record(v);
        let slots = self.exemplars.get_or_init(zeroed_buckets);
        slots[bucket_index(v)].store(trace_id.wrapping_add(1), Ordering::Relaxed);
    }

    /// The most recent exemplar trace id recorded into `v`'s bucket.
    pub fn exemplar_for(&self, v: u64) -> Option<u64> {
        let slots = self.exemplars.get()?;
        match slots[bucket_index(v)].load(Ordering::Relaxed) {
            0 => None,
            id => Some(id.wrapping_sub(1)),
        }
    }

    /// Records `n` observations of the same value.
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.saturating_mul(n), Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Folds every observation of `other` into `self`. Exactly equivalent
    /// to having recorded `other`'s observations here (same geometry).
    pub fn merge(&self, other: &LogHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
        if let Some(theirs) = other.exemplars.get() {
            let mine = self.exemplars.get_or_init(zeroed_buckets);
            for (m, t) in mine.iter().zip(theirs.iter()) {
                let id = t.load(Ordering::Relaxed);
                if id != 0 {
                    m.store(id, Ordering::Relaxed);
                }
            }
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.min.load(Ordering::Relaxed))
        }
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.max.load(Ordering::Relaxed))
        }
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Value at quantile `q` (in `[0, 1]`): the upper bound of the bucket
    /// holding the order statistic of rank `ceil(q * count)`, clamped to
    /// the observed min/max. Relative quantization error is bounded by
    /// `1/SUB_BUCKETS`. Returns `None` when empty.
    pub fn value_at_quantile(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let hi = bucket_high(i).min(self.max.load(Ordering::Relaxed));
                return Some(hi.max(self.min.load(Ordering::Relaxed)));
            }
        }
        self.max()
    }

    /// Median (p50).
    pub fn p50(&self) -> Option<u64> {
        self.value_at_quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> Option<u64> {
        self.value_at_quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.value_at_quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> Option<u64> {
        self.value_at_quantile(0.999)
    }

    /// An owned point-in-time copy, for export and reports.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let exemplars = self.exemplars.get();
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                let exemplar = exemplars.and_then(|slots| match slots[i].load(Ordering::Relaxed) {
                    0 => None,
                    id => Some(id.wrapping_sub(1)),
                });
                buckets.push(BucketCount {
                    le: bucket_high(i),
                    count: n,
                    exemplar,
                });
            }
        }
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
            p50: self.p50().unwrap_or(0),
            p90: self.p90().unwrap_or(0),
            p99: self.p99().unwrap_or(0),
            p999: self.p999().unwrap_or(0),
            buckets,
        }
    }
}

/// One non-empty bucket of a snapshot: `count` observations with values
/// `≤ le` (and greater than the previous bucket's `le`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketCount {
    /// Inclusive upper bound of the bucket.
    pub le: u64,
    /// Observations in the bucket (not cumulative).
    pub count: u64,
    /// Trace id of the bucket's most recent traced sample, when any
    /// observation arrived via [`LogHistogram::record_traced`].
    pub exemplar: Option<u64>,
}

/// A point-in-time copy of a [`LogHistogram`], used by the exporters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Non-empty buckets in ascending `le` order.
    pub buckets: Vec<BucketCount>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = LogHistogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        assert_eq!(h.count(), SUB_BUCKETS);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(SUB_BUCKETS - 1));
        // Below SUB_BUCKETS every value has its own bucket: quantiles are
        // exact.
        assert_eq!(h.value_at_quantile(0.0), Some(0));
        assert_eq!(h.value_at_quantile(1.0), Some(SUB_BUCKETS - 1));
    }

    #[test]
    fn exemplars_track_most_recent_trace() {
        let h = LogHistogram::new();
        h.record(10_000); // untraced: no exemplar table yet
        assert_eq!(h.exemplar_for(10_000), None);
        h.record_traced(10_000, 41);
        h.record_traced(10_000, 42); // most recent wins
        h.record_traced(77, 7);
        assert_eq!(h.exemplar_for(10_000), Some(42));
        assert_eq!(h.exemplar_for(77), Some(7));
        assert_eq!(h.exemplar_for(3), None);
        let snap = h.snapshot();
        let tail = snap.buckets.iter().find(|b| b.le >= 10_000).unwrap();
        assert_eq!(tail.exemplar, Some(42));
        assert_eq!(tail.count, 3);
        // Trace id 0 is representable (slots store id + 1).
        h.record_traced(3, 0);
        assert_eq!(h.exemplar_for(3), Some(0));

        // Merge carries exemplars across.
        let other = LogHistogram::new();
        other.record_traced(10_000, 99);
        h.merge(&other);
        assert_eq!(h.exemplar_for(10_000), Some(99));
    }

    #[test]
    fn relative_error_is_bounded() {
        let h = LogHistogram::new();
        for v in [100u64, 10_000, 1_000_000, 123_456_789] {
            h.record(v);
        }
        for (q, exact) in [(0.25, 100u64), (0.5, 10_000), (0.75, 1_000_000)] {
            let got = h.value_at_quantile(q).unwrap();
            let err = got.abs_diff(exact) as f64 / exact as f64;
            assert!(err <= 1.0 / SUB_BUCKETS as f64, "q={q} got={got} err={err}");
        }
    }

    #[test]
    fn merge_equals_single_histogram() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        let one = LogHistogram::new();
        for i in 0..1000u64 {
            let v = i * i % 77_777;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            one.record(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), one.snapshot());
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p99(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        assert!(h.snapshot().buckets.is_empty());
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        a.record_n(12_345, 7);
        for _ in 0..7 {
            b.record(12_345);
        }
        assert_eq!(a.snapshot(), b.snapshot());
        a.record_n(1, 0); // no-op
        assert_eq!(a.count(), 7);
    }
}
