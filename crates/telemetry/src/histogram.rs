//! Log-bucketed latency/size histograms (HDR-style).
//!
//! Values land in power-of-two octaves subdivided into [`SUB_BUCKETS`]
//! linear sub-buckets, so relative quantization error is bounded by
//! `1/SUB_BUCKETS` (≈ 3.1%) at any magnitude while the whole `u64` range
//! fits in a fixed [`BUCKETS`]-slot array. Recording is one atomic add —
//! cheap enough for per-request hot paths — and two histograms with the
//! same geometry [`merge`](LogHistogram::merge) exactly (merging equals
//! having recorded into one histogram, a property the test battery pins).

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each power-of-two octave splits into this many
/// linear buckets. 32 bounds relative error at 1/32 ≈ 3.1%.
pub const SUB_BUCKETS: u64 = 32;

/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 5;

/// Total bucket count covering all of `u64`.
///
/// Values below `SUB_BUCKETS` index directly; above, each of the
/// remaining `64 - SUB_BITS` octaves contributes `SUB_BUCKETS` buckets.
pub const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB_BUCKETS as usize;

/// Bucket index for a value (shared by record and the bound helpers).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    // Top SUB_BITS+1 bits of v, in [SUB_BUCKETS, 2*SUB_BUCKETS).
    let top = v >> shift;
    ((u64::from(shift) + 1) * SUB_BUCKETS + (top - SUB_BUCKETS)) as usize
}

/// Smallest value mapping to bucket `i`.
fn bucket_low(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB_BUCKETS {
        return i;
    }
    let block = i / SUB_BUCKETS; // ≥ 1
    let off = i % SUB_BUCKETS;
    (SUB_BUCKETS + off) << (block - 1)
}

/// Largest value mapping to bucket `i` (saturating at `u64::MAX`).
fn bucket_high(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB_BUCKETS {
        return i;
    }
    let block = i / SUB_BUCKETS;
    let width = 1u64 << (block - 1);
    bucket_low(i as usize).saturating_add(width - 1)
}

/// A lock-free, mergeable log-bucketed histogram over `u64` values.
///
/// All counters are monotone atomics: recording from many threads and
/// snapshotting concurrently are both safe (a snapshot taken mid-traffic
/// is a consistent-enough view: counts only grow).
pub struct LogHistogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not Copy; build the array through a Vec.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> = match v.into_boxed_slice().try_into() {
            Ok(b) => b,
            Err(_) => unreachable!("vector built with BUCKETS elements"),
        };
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records `n` observations of the same value.
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.saturating_mul(n), Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Folds every observation of `other` into `self`. Exactly equivalent
    /// to having recorded `other`'s observations here (same geometry).
    pub fn merge(&self, other: &LogHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.min.load(Ordering::Relaxed))
        }
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.max.load(Ordering::Relaxed))
        }
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Value at quantile `q` (in `[0, 1]`): the upper bound of the bucket
    /// holding the order statistic of rank `ceil(q * count)`, clamped to
    /// the observed min/max. Relative quantization error is bounded by
    /// `1/SUB_BUCKETS`. Returns `None` when empty.
    pub fn value_at_quantile(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let hi = bucket_high(i).min(self.max.load(Ordering::Relaxed));
                return Some(hi.max(self.min.load(Ordering::Relaxed)));
            }
        }
        self.max()
    }

    /// Median (p50).
    pub fn p50(&self) -> Option<u64> {
        self.value_at_quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> Option<u64> {
        self.value_at_quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.value_at_quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> Option<u64> {
        self.value_at_quantile(0.999)
    }

    /// An owned point-in-time copy, for export and reports.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push(BucketCount {
                    le: bucket_high(i),
                    count: n,
                });
            }
        }
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
            p50: self.p50().unwrap_or(0),
            p90: self.p90().unwrap_or(0),
            p99: self.p99().unwrap_or(0),
            p999: self.p999().unwrap_or(0),
            buckets,
        }
    }
}

/// One non-empty bucket of a snapshot: `count` observations with values
/// `≤ le` (and greater than the previous bucket's `le`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketCount {
    /// Inclusive upper bound of the bucket.
    pub le: u64,
    /// Observations in the bucket (not cumulative).
    pub count: u64,
}

/// A point-in-time copy of a [`LogHistogram`], used by the exporters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Non-empty buckets in ascending `le` order.
    pub buckets: Vec<BucketCount>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = LogHistogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        assert_eq!(h.count(), SUB_BUCKETS);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(SUB_BUCKETS - 1));
        // Below SUB_BUCKETS every value has its own bucket: quantiles are
        // exact.
        assert_eq!(h.value_at_quantile(0.0), Some(0));
        assert_eq!(h.value_at_quantile(1.0), Some(SUB_BUCKETS - 1));
    }

    #[test]
    fn bucket_bounds_partition_the_range() {
        // Each bucket's low is the previous bucket's high + 1, and every
        // value maps into the bucket whose bounds contain it.
        for i in 1..BUCKETS - 1 {
            assert_eq!(bucket_low(i), bucket_high(i - 1) + 1, "bucket {i}");
        }
        for v in [0u64, 1, 31, 32, 33, 1000, 1 << 20, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_low(i) <= v && v <= bucket_high(i), "value {v}");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let h = LogHistogram::new();
        for v in [100u64, 10_000, 1_000_000, 123_456_789] {
            h.record(v);
        }
        for (q, exact) in [(0.25, 100u64), (0.5, 10_000), (0.75, 1_000_000)] {
            let got = h.value_at_quantile(q).unwrap();
            let err = got.abs_diff(exact) as f64 / exact as f64;
            assert!(err <= 1.0 / SUB_BUCKETS as f64, "q={q} got={got} err={err}");
        }
    }

    #[test]
    fn merge_equals_single_histogram() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        let one = LogHistogram::new();
        for i in 0..1000u64 {
            let v = i * i % 77_777;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            one.record(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), one.snapshot());
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p99(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        assert!(h.snapshot().buckets.is_empty());
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        a.record_n(12_345, 7);
        for _ in 0..7 {
            b.record(12_345);
        }
        assert_eq!(a.snapshot(), b.snapshot());
        a.record_n(1, 0); // no-op
        assert_eq!(a.count(), 7);
    }
}
