//! Always-on flight recorder: a black-box ring of recent activity.
//!
//! Aircraft-style: the [`FlightRecorder`] continuously records the last
//! few thousand spans and counter deltas into fixed-size lock-free rings
//! (the same claim/publish stamp discipline as [`SpanRing`]), cheap
//! enough to leave on in production — recording is a `fetch_add` plus a
//! handful of relaxed stores, no locks, no allocation. When something
//! goes wrong — a fault-injection storm, an SLO burn-rate breach, a
//! panic — [`dump`](FlightRecorder::dump) serializes everything it holds
//! into one self-contained JSON snapshot: recent spans (with trace ids
//! and parent links), recent counter deltas, recent [`SloEvent`]s, and
//! the trigger reason, so the black box answers "what was the service
//! doing right before this?" without any external state.
//!
//! Counter names are interned once at registration
//! ([`counter_id`](FlightRecorder::counter_id), cold path, mutex);
//! the hot [`note`](FlightRecorder::note) path carries only the interned
//! id. SLO events are rare state transitions and go through a small
//! bounded mutex-guarded buffer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::slo::SloEvent;
use crate::span::{SpanEvent, SpanRing};

/// Default span capacity for [`FlightRecorder::new`].
pub const DEFAULT_FLIGHT_SPANS: usize = 2048;

/// Default counter-delta capacity for [`FlightRecorder::new`].
pub const DEFAULT_FLIGHT_NOTES: usize = 1024;

/// Most recent SLO events kept for the dump.
const MAX_SLO_EVENTS: usize = 64;

/// One recorded counter delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterNote {
    /// Virtual-cycle timestamp of the delta.
    pub at_cycles: u64,
    /// Interned counter id (resolve via the dump, which inlines names).
    pub id: u32,
    /// The delta applied at `at_cycles`.
    pub delta: u64,
}

/// Payload words per note slot: at, id, delta.
const NOTE_WORDS: usize = 3;

struct NoteSlot {
    /// Publication stamp: `2*index + 2` once written (odd = in flight).
    seq: AtomicU64,
    words: [AtomicU64; NOTE_WORDS],
}

/// A bounded lock-free ring of counter deltas (same discipline as
/// [`SpanRing`]: wait-free writers, stamp-validated snapshot reader).
struct NoteRing {
    slots: Box<[NoteSlot]>,
    mask: u64,
    head: AtomicU64,
}

impl NoteRing {
    fn new(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        Self {
            slots: (0..cap)
                .map(|_| NoteSlot {
                    seq: AtomicU64::new(0),
                    words: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
            mask: cap as u64 - 1,
            head: AtomicU64::new(0),
        }
    }

    fn push(&self, at_cycles: u64, id: u32, delta: u64) {
        let idx = self.head.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(idx & self.mask) as usize];
        slot.seq.store(2 * idx + 1, Ordering::Release);
        slot.words[0].store(at_cycles, Ordering::Relaxed);
        slot.words[1].store(u64::from(id), Ordering::Relaxed);
        slot.words[2].store(delta, Ordering::Relaxed);
        slot.seq.store(2 * idx + 2, Ordering::Release);
    }

    fn snapshot(&self) -> Vec<CounterNote> {
        let head = self.head.load(Ordering::Acquire);
        let start = head.saturating_sub(self.slots.len() as u64);
        let mut out = Vec::with_capacity((head - start) as usize);
        for idx in start..head {
            let slot = &self.slots[(idx & self.mask) as usize];
            let stamp = 2 * idx + 2;
            if slot.seq.load(Ordering::Acquire) != stamp {
                continue;
            }
            let words: [u64; NOTE_WORDS] =
                std::array::from_fn(|i| slot.words[i].load(Ordering::Relaxed));
            if slot.seq.load(Ordering::Acquire) != stamp {
                continue;
            }
            out.push(CounterNote {
                at_cycles: words[0],
                id: words[1] as u32,
                delta: words[2],
            });
        }
        out
    }
}

/// The black box (see module docs).
pub struct FlightRecorder {
    spans: SpanRing,
    notes: NoteRing,
    names: Mutex<Vec<&'static str>>,
    slo_events: Mutex<Vec<SloEvent>>,
    dumps: AtomicU64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("span_capacity", &self.spans.capacity())
            .field("spans_recorded", &self.spans.recorded())
            .field("dumps", &self.dumps.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightRecorder {
    /// A recorder with the default capacities.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_FLIGHT_SPANS, DEFAULT_FLIGHT_NOTES)
    }

    /// A recorder holding up to `spans` span events and `notes` counter
    /// deltas (each rounded up to a power of two).
    pub fn with_capacity(spans: usize, notes: usize) -> Self {
        Self {
            spans: SpanRing::new(spans),
            notes: NoteRing::new(notes),
            names: Mutex::new(Vec::new()),
            slo_events: Mutex::new(Vec::new()),
            dumps: AtomicU64::new(0),
        }
    }

    /// Records one span (wait-free; called from the sink's tee).
    #[inline]
    pub fn span(&self, ev: &SpanEvent) {
        self.spans.push(ev);
    }

    /// Interns a counter name, returning the id [`note`](Self::note)
    /// takes. Idempotent per name; cold path (takes a mutex).
    pub fn counter_id(&self, name: &'static str) -> u32 {
        let mut names = match self.names.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(i) = names.iter().position(|n| *n == name) {
            return i as u32;
        }
        names.push(name);
        (names.len() - 1) as u32
    }

    /// Records a counter delta (wait-free).
    #[inline]
    pub fn note(&self, at_cycles: u64, id: u32, delta: u64) {
        if delta != 0 {
            self.notes.push(at_cycles, id, delta);
        }
    }

    /// Records an SLO state transition (bounded: keeps the most recent
    /// [`MAX_SLO_EVENTS`]).
    pub fn slo_event(&self, ev: &SloEvent) {
        let mut events = match self.slo_events.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if events.len() >= MAX_SLO_EVENTS {
            events.remove(0);
        }
        events.push(ev.clone());
    }

    /// Spans currently recorded (deterministic sorted dump order).
    pub fn spans(&self) -> Vec<SpanEvent> {
        self.spans.sorted_snapshot()
    }

    /// Dumps taken so far.
    pub fn dump_count(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }

    /// Serializes the black box into one self-contained JSON snapshot.
    ///
    /// `reason` says what pulled the handle (`"fault_storm"`,
    /// `"slo_breach"`, `"panic"`, ...); `at_cycles` is the virtual-clock
    /// time of the trigger. The output is deterministic for a
    /// deterministic recording (spans sorted, f64s fixed-point).
    pub fn dump(&self, reason: &str, at_cycles: u64) -> String {
        self.dumps.fetch_add(1, Ordering::Relaxed);
        let spans = self.spans.sorted_snapshot();
        let notes = self.notes.snapshot();
        let names: Vec<&'static str> = match self.names.lock() {
            Ok(g) => g.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        };
        let slo_events: Vec<SloEvent> = match self.slo_events.lock() {
            Ok(g) => g.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        };

        let span_json: Vec<String> = spans
            .iter()
            .map(|s| {
                format!(
                    "{{\"trace\":{},\"seq\":{},\"parent\":{},\"worker\":{},\"stage\":\"{}\",\"start\":{},\"dur\":{},\"bytes\":{},\"detail\":{}}}",
                    s.request,
                    s.seq,
                    s.parent,
                    s.worker,
                    s.stage.name(),
                    s.start_cycles,
                    s.dur_cycles,
                    s.bytes,
                    s.detail
                )
            })
            .collect();
        let note_json: Vec<String> = notes
            .iter()
            .map(|n| {
                let name = names
                    .get(n.id as usize)
                    .copied()
                    .unwrap_or("unknown_counter");
                format!(
                    "{{\"at\":{},\"name\":\"{}\",\"delta\":{}}}",
                    n.at_cycles, name, n.delta
                )
            })
            .collect();
        let slo_json: Vec<String> = slo_events
            .iter()
            .map(|e| {
                format!(
                    "{{\"at\":{},\"slo\":\"{}\",\"class\":\"{}\",\"kind\":\"{}\",\"fast_burn\":{:.3},\"slow_burn\":{:.3}}}",
                    e.at_cycles,
                    crate::export::json_escape(&e.slo),
                    crate::export::json_escape(&e.class),
                    e.kind.name(),
                    e.fast_burn,
                    e.slow_burn
                )
            })
            .collect();
        format!(
            "{{\"version\":1,\"reason\":\"{}\",\"at_cycles\":{},\"spans_dropped\":{},\"spans\":[{}],\"counters\":[{}],\"slo_events\":[{}]}}",
            crate::export::json_escape(reason),
            at_cycles,
            self.spans.dropped(),
            span_json.join(","),
            note_json.join(","),
            slo_json.join(",")
        )
    }
}

/// Installs a process-wide panic hook that writes a flight dump to
/// `path` before delegating to the previous hook. Opt-in (examples and
/// servers call it); IO errors are swallowed — a failing black-box write
/// must never mask the original panic.
pub fn install_flight_panic_hook(
    recorder: std::sync::Arc<FlightRecorder>,
    path: std::path::PathBuf,
) {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let dump = recorder.dump("panic", 0);
        let _ = std::fs::write(&path, dump);
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::SloEventKind;
    use crate::span::Stage;

    fn span(trace: u64, seq: u32, stage: Stage) -> SpanEvent {
        SpanEvent {
            request: trace,
            seq,
            parent: 0,
            worker: 0,
            stage,
            start_cycles: u64::from(seq) * 100,
            dur_cycles: 100,
            bytes: 512,
            detail: 0,
        }
    }

    #[test]
    fn dump_is_self_contained_and_complete() {
        let fr = FlightRecorder::with_capacity(64, 64);
        fr.span(&span(1, 0, Stage::Admit));
        fr.span(&span(1, 1, Stage::Engine));
        fr.span(&span(1, 2, Stage::Complete));
        let faults = fr.counter_id("faults_injected");
        fr.note(500, faults, 3);
        fr.slo_event(&SloEvent {
            at_cycles: 600,
            slo: "rpc".into(),
            class: "latency".into(),
            kind: SloEventKind::BurnAlert,
            fast_burn: 15.25,
            slow_burn: 6.5,
        });
        let dump = fr.dump("fault_storm", 700);
        assert!(dump.contains("\"version\":1"));
        assert!(dump.contains("\"reason\":\"fault_storm\""));
        assert!(dump.contains("\"stage\":\"admit\""));
        assert!(dump.contains("\"stage\":\"complete\""));
        assert!(dump.contains("\"name\":\"faults_injected\",\"delta\":3"));
        assert!(dump.contains("\"kind\":\"burn_alert\""));
        assert!(dump.contains("\"fast_burn\":15.250"));
        assert_eq!(fr.dump_count(), 1);
    }

    #[test]
    fn counter_ids_are_interned_once() {
        let fr = FlightRecorder::new();
        let a = fr.counter_id("retries");
        let b = fr.counter_id("fallbacks");
        assert_ne!(a, b);
        assert_eq!(fr.counter_id("retries"), a);
    }

    #[test]
    fn note_ring_overflows_to_newest() {
        let fr = FlightRecorder::with_capacity(8, 8);
        let id = fr.counter_id("x");
        for i in 0..20u64 {
            fr.note(i, id, i + 1);
        }
        let dump = fr.dump("test", 0);
        // Oldest notes evicted, newest retained.
        assert!(!dump.contains("\"delta\":1}"));
        assert!(dump.contains("\"delta\":20"));
    }

    #[test]
    fn zero_deltas_are_not_recorded() {
        let fr = FlightRecorder::new();
        let id = fr.counter_id("y");
        fr.note(1, id, 0);
        let dump = fr.dump("test", 0);
        assert!(dump.contains("\"counters\":[]"));
    }

    #[test]
    fn concurrent_recording_is_safe() {
        use std::sync::Arc;
        let fr = Arc::new(FlightRecorder::with_capacity(4096, 4096));
        let id = fr.counter_id("c");
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let fr = Arc::clone(&fr);
                std::thread::spawn(move || {
                    for i in 0..256u32 {
                        fr.span(&span(t, i, Stage::Engine));
                        fr.note(u64::from(i), id, 1);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().expect("recorder thread");
        }
        assert_eq!(fr.spans().len(), 4 * 256);
    }
}
