//! Whole-stack consistency tests: the calibrated system-level cost model
//! must agree with the cycle-level engine model it was calibrated from,
//! and the analytics layer's codec must agree with both.

use nx_accel::{AccelConfig, Accelerator};
use nx_analytics::Codec;
use nx_corpus::CorpusKind;
use nx_sys::crb::Function;
use nx_sys::CostModel;

/// The system-level cost model is a linear fit of the engine model; on
/// the calibration-sized requests they must agree closely.
#[test]
fn cost_model_tracks_engine_model() {
    let cfg = AccelConfig::power9();
    let cost = CostModel::calibrate(&cfg, 1234);
    let mut engine = Accelerator::new(cfg);
    for &kind in CorpusKind::all() {
        let data = kind.generate(1234, 256 * 1024);
        let (_, report) = engine.compress(&data);
        let engine_secs = report.latency_secs();
        let model_secs = cost
            .service_time(Function::Compress, kind, data.len() as u64)
            .as_secs_f64();
        let rel = (model_secs - engine_secs).abs() / engine_secs;
        assert!(rel < 0.05, "{kind}: cost model off by {:.1}%", rel * 100.0);
    }
}

/// Cost-model ratios equal the engine's actual output ratio at the
/// calibration point.
#[test]
fn cost_model_ratios_match_real_streams() {
    let cfg = AccelConfig::power9();
    let cost = CostModel::calibrate(&cfg, 99);
    let mut engine = Accelerator::new(cfg);
    for &kind in CorpusKind::all() {
        let data = kind.generate(99, 256 * 1024);
        let (stream, _) = engine.compress(&data);
        let real = data.len() as f64 / stream.len() as f64;
        let modeled = cost.ratio(kind);
        let rel = (modeled - real).abs() / real;
        assert!(
            rel < 0.02,
            "{kind}: ratio model {modeled:.3} vs real {real:.3}"
        );
    }
}

/// The analytics codec's compressed sizes must match the system cost
/// model (same source of truth).
#[test]
fn analytics_codec_sizes_are_consistent_with_cost_model() {
    let codec = Codec::nx_offload_default();
    let cost = CostModel::calibrate(&AccelConfig::power9(), 77);
    for &kind in CorpusKind::all() {
        let bytes = 8 << 20;
        let a = codec.compressed_size(kind, bytes) as f64;
        let b = cost.output_bytes(Function::Compress, kind, bytes) as f64;
        let rel = (a - b).abs() / b;
        assert!(rel < 0.01, "{kind}: codec {a} vs cost model {b}");
    }
}

/// The headline numbers derived through completely different layers must
/// be mutually consistent: the z15/POWER9 rate doubling must show up in
/// the engine model, the cost model, and the topology peak.
#[test]
fn generation_scaling_is_consistent_across_layers() {
    let p9 = CostModel::calibrate(&AccelConfig::power9(), 5);
    let z15 = CostModel::calibrate(&AccelConfig::z15(), 5);
    for &kind in &[CorpusKind::Text, CorpusKind::Json, CorpusKind::Columnar] {
        let ratio = z15.compress_rate_bps(kind) / p9.compress_rate_bps(kind);
        assert!(
            (1.5..=2.5).contains(&ratio),
            "{kind}: generation ratio {ratio:.2}"
        );
    }
    let peak9 = nx_sys::Topology::power9_chip().peak_compress_bps();
    let peak15 = nx_sys::Topology::z15_chip().peak_compress_bps();
    assert!((peak15 / peak9 - 2.0).abs() < 1e-9);
}
