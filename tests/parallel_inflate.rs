//! End-to-end tests for the parallel + seekable inflate path, driven
//! through the public API only: the `Nx` facade, `ParallelInflater`,
//! and the serializable `SeekIndex`.
//!
//! The contract under test, from DESIGN.md: (1) parallel decompression
//! is byte-identical to serial decompression on every input, including
//! corrupt and truncated streams (same error, or same bytes — never a
//! third behaviour); (2) multi-member gzip decodes member-per-worker at
//! any worker count; (3) `decompress_at` through a `SeekIndex` returns
//! exactly the bytes a full serial decode would place at that range,
//! without decoding the prefix.

use nx_core::{software, Format, Nx, ParallelInflateOptions, ParallelInflater, SeekIndex};
use nx_deflate::CompressionLevel;

const SEED: u64 = 0x5EEC_AB1E;

fn inflater(workers: usize) -> ParallelInflater {
    ParallelInflater::new(ParallelInflateOptions {
        workers,
        chunk_size: 32 * 1024,
        checkpoint_every: 64 * 1024,
    })
}

fn gzip(data: &[u8]) -> Vec<u8> {
    software::compress(data, CompressionLevel::default(), Format::Gzip)
}

/// A deterministic multi-member gzip stream: `n` members of varying,
/// seeded sizes, plus the concatenated payload they must decode to.
fn multi_member(n: usize) -> (Vec<u8>, Vec<u8>) {
    let mut stream = Vec::new();
    let mut payload = Vec::new();
    for i in 0..n {
        let part = nx_corpus::mixed(SEED + i as u64, 24 * 1024 + 7 * 1024 * (i % 3));
        stream.extend_from_slice(&gzip(&part));
        payload.extend_from_slice(&part);
    }
    (stream, payload)
}

#[test]
fn multi_member_roundtrip_at_every_worker_count() {
    let (stream, payload) = multi_member(8);
    for workers in [1, 2, 4, 8] {
        let inf = inflater(workers);
        let out = inf.decompress(&stream, Format::Gzip).expect("decodes");
        assert_eq!(out, payload, "workers={workers} changed the payload");
        if workers > 1 {
            assert_eq!(
                inf.stats().members_parallel(),
                8,
                "workers={workers} must take the member-per-worker path"
            );
        }
    }
}

#[test]
fn speculative_single_member_matches_serial_on_corpora() {
    // One large member per corpus flavour: the speculative chunked path
    // must reproduce the serial bytes exactly, for every container.
    for (seed, size) in [(SEED, 384 * 1024), (SEED ^ 0xFF, 1024 * 1024)] {
        let data = nx_corpus::mixed(seed, size);
        for format in [Format::Gzip, Format::Zlib, Format::RawDeflate] {
            let enc = software::compress(&data, CompressionLevel::default(), format);
            let inf = inflater(4);
            let par = inf.decompress(&enc, format).expect("parallel decodes");
            let ser = software::decompress(&enc, format).expect("serial decodes");
            assert_eq!(par, ser, "format {format:?} diverged from serial");
            assert_eq!(par, data);
        }
    }
}

#[test]
fn corrupt_and_truncated_streams_match_serial_semantics() {
    let data = nx_corpus::mixed(SEED, 512 * 1024);
    let gz = gzip(&data);
    let inf = inflater(4);
    // Corruption at several depths: header, mid-stream, trailer.
    for pos in [3usize, gz.len() / 3, gz.len() / 2, gz.len() - 4] {
        let mut bad = gz.clone();
        bad[pos] ^= 0x55;
        let par = inf.decompress(&bad, Format::Gzip);
        let ser = software::decompress(&bad, Format::Gzip);
        match (&par, &ser) {
            (Ok(p), Ok(s)) => assert_eq!(p, s, "flip at {pos}: both ok but bytes differ"),
            (Err(_), Err(_)) => {}
            _ => panic!("flip at {pos}: parallel={par:?} serial={ser:?} disagree on ok/err"),
        }
    }
    // Truncation: every prefix class must error, never panic or hang.
    for keep in [0, 5, 18, gz.len() / 4, gz.len() - 1] {
        let cut = &gz[..keep];
        assert!(
            inf.decompress(cut, Format::Gzip).is_err(),
            "truncated to {keep} bytes must be an error"
        );
    }
}

#[test]
fn truncated_multi_member_degrades_to_serial_error() {
    let (stream, _) = multi_member(4);
    let inf = inflater(4);
    let cut = &stream[..stream.len() - 6];
    // The member fast path cannot chain-validate a cut tail; it must
    // fall back and surface the serial error, not a bogus payload.
    assert!(inf.decompress(cut, Format::Gzip).is_err());
    assert!(inf.stats().serial_fallbacks() >= 1);
}

/// Minimal xorshift64* generator: deterministic fuzz positions without
/// pulling in an RNG dependency.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

#[test]
fn seek_index_random_slices_match_serial_bytes() {
    // Property test over (offset, len) pairs: any indexed random access
    // equals the same slice of a full serial decode.
    let data = nx_corpus::mixed(SEED, 768 * 1024);
    let gz = gzip(&data);
    let inf = inflater(4);
    let (full, index) = {
        let index = inf.build_index(&gz, Format::Gzip).expect("index");
        let full = software::decompress(&gz, Format::Gzip).expect("serial");
        (full, index)
    };
    assert_eq!(index.total_out(), full.len() as u64);
    let mut rng = Rng(SEED | 1);
    for round in 0..64 {
        let offset = (rng.next() % (full.len() as u64 + 1)) as usize;
        let len = (rng.next() % 40_000) as usize;
        let got = inf
            .decompress_at(&gz, &index, offset as u64, len)
            .unwrap_or_else(|e| panic!("round {round}: offset={offset} len={len}: {e}"));
        let want = &full[offset..(offset + len).min(full.len())];
        assert_eq!(got, want, "round {round}: offset={offset} len={len}");
    }
    // Edge cases the RNG may miss.
    assert_eq!(
        inf.decompress_at(&gz, &index, 0, full.len()).expect("all"),
        full
    );
    assert!(inf
        .decompress_at(&gz, &index, full.len() as u64, 10)
        .expect("at end")
        .is_empty());
    assert!(inf
        .decompress_at(&gz, &index, full.len() as u64 + 1, 1)
        .is_err());
}

#[test]
fn seek_index_survives_serialization() {
    let data = nx_corpus::mixed(SEED ^ 7, 256 * 1024);
    let gz = gzip(&data);
    let inf = inflater(2);
    let index = inf.build_index(&gz, Format::Gzip).expect("index");
    let wire = index.to_bytes();
    let back = SeekIndex::from_bytes(&wire).expect("parses");
    assert_eq!(back.total_out(), index.total_out());
    assert_eq!(back.checkpoints().len(), index.checkpoints().len());
    let got = inf
        .decompress_at(&gz, &back, 100_000, 5_000)
        .expect("seek via deserialized index");
    let full = software::decompress(&gz, Format::Gzip).expect("serial");
    assert_eq!(got, &full[100_000..105_000]);
    // Damaged wire forms are rejected, not misread.
    assert!(SeekIndex::from_bytes(&wire[..wire.len() - 1]).is_err());
    let mut bad = wire.clone();
    bad[0] ^= 0xFF;
    assert!(SeekIndex::from_bytes(&bad).is_err());
}

#[test]
fn facade_parallel_decode_and_seek_work_end_to_end() {
    let nx = Nx::power9();
    let (stream, payload) = multi_member(3);
    let out = nx
        .decompress_parallel(&stream, Format::Gzip)
        .expect("facade decode");
    assert_eq!(out, payload);
    let index = nx.build_index(&stream, Format::Gzip).expect("facade index");
    let got = nx
        .decompress_at(&stream, &index, 40_000, 8_192)
        .expect("facade seek");
    assert_eq!(got, &payload[40_000..48_192]);
    let s = nx.decode_parallel_stats();
    assert!(s.requests() >= 1);
    assert!(s.seek_index_hits() >= 1);
    assert!(s.bytes_out() >= payload.len() as u64);
}
