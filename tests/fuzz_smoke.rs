//! Deterministic fuzz smoke: ≥10 000 mutated streams per framing
//! through the inflate oracle.
//!
//! The shimmed proptest runner derives its RNG from the test name, so
//! this is a repeatable mutational fuzzer, not a flaky one: every CI run
//! sweeps the identical corpus. Each case seeds a splitmix64 mutator,
//! picks a cached valid base stream, applies a random stack of edits,
//! and pushes the result through `inflate_with_limit` and the container
//! parser. The only acceptable outcomes are a typed error or in-limit
//! output.
//!
//! Failures found by earlier sweeps are pinned at the bottom as plain
//! `#[test]` regression cases (the shim does not shrink, so keep these
//! minimal by hand).

use nx_core::{software, Format};
use nx_deflate::CompressionLevel;
use proptest::prelude::*;
use std::sync::OnceLock;

const LIMIT: usize = 256 << 10;

/// splitmix64 — one per case, seeded by the proptest draw.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = mix(self.0);
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Cached valid base streams (≤ 2 KiB payloads, levels 0/6/9) for one
/// framing — built once, mutated ten thousand times.
fn bases(format: Format) -> &'static [Vec<u8>] {
    static RAW: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    static GZ: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    static ZL: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    let cell = match format {
        Format::RawDeflate => &RAW,
        Format::Gzip => &GZ,
        Format::Zlib => &ZL,
    };
    cell.get_or_init(|| {
        let mut out = Vec::new();
        for (i, size) in [0usize, 1, 64, 512, 2048].iter().enumerate() {
            let data = nx_corpus::mixed(0xF022 + i as u64, *size);
            for level in [0u32, 6, 9] {
                let lvl = CompressionLevel::new(level).expect("valid level");
                out.push(software::compress(&data, lvl, format));
            }
        }
        out
    })
}

/// Applies 1–4 random edits drawn from `rng` to a copy of `base`.
fn mutate(base: &[u8], rng: &mut Rng) -> Vec<u8> {
    let mut m = base.to_vec();
    for _ in 0..rng.below(4) + 1 {
        match rng.below(7) {
            0 => m.truncate(rng.below(m.len() + 1)),
            1 if !m.is_empty() => {
                let i = rng.below(m.len());
                m[i] ^= 1 << rng.below(8);
            }
            2 if !m.is_empty() => {
                let i = rng.below(m.len());
                m[i] = rng.next() as u8;
            }
            3 => {
                let at = rng.below(m.len() + 1);
                m.insert(at, rng.next() as u8);
            }
            4 if !m.is_empty() => {
                m.remove(rng.below(m.len()));
            }
            5 if !m.is_empty() => {
                // Zero a short window (kills Huffman code words).
                let start = rng.below(m.len());
                let end = (start + rng.below(9) + 1).min(m.len());
                for b in &mut m[start..end] {
                    *b = 0;
                }
            }
            _ if !m.is_empty() => {
                // Swap two bytes across the buffer.
                let a = rng.below(m.len());
                let b = rng.below(m.len());
                m.swap(a, b);
            }
            _ => {}
        }
    }
    m
}

/// One fuzz case: mutate, decode, assert only typed outcomes.
fn case(format: Format, seed: u64) -> Result<(), TestCaseError> {
    let mut rng = Rng(seed);
    let pool = bases(format);
    let base = &pool[rng.below(pool.len())];
    let m = mutate(base, &mut rng);
    if let Ok(out) = nx_deflate::inflate_with_limit(&m, LIMIT) {
        prop_assert!(out.len() <= LIMIT, "inflate exceeded its output limit");
    }
    // The container parser has no explicit cap; boundedness comes from
    // DEFLATE's ≤1032:1 expansion over a ≤4 KiB input. Returning at all
    // (vs panicking/looping) is the property under test.
    let _ = software::decompress(&m, format);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10_000))]

    #[test]
    fn fuzz_raw_deflate_streams(seed in any::<u64>()) {
        case(Format::RawDeflate, seed)?;
    }

    #[test]
    fn fuzz_gzip_streams(seed in any::<u64>()) {
        case(Format::Gzip, seed)?;
    }

    #[test]
    fn fuzz_zlib_streams(seed in any::<u64>()) {
        case(Format::Zlib, seed)?;
    }
}

// ---------------------------------------------------------------------
// Pinned regression cases: minimal inputs for decoder edges the sweeps
// exercise. Each must return a typed error (or bounded Ok), not panic.
// ---------------------------------------------------------------------

#[test]
fn regression_empty_and_tiny_inputs() {
    for format in [Format::RawDeflate, Format::Gzip, Format::Zlib] {
        assert!(software::decompress(&[], format).is_err());
        for b in 0..=255u8 {
            let _ = software::decompress(&[b], format);
        }
    }
}

#[test]
fn regression_gzip_header_fragments() {
    // Magic alone, magic + method, and a header that promises FEXTRA /
    // FNAME fields the buffer does not contain.
    for frag in [
        &[0x1F, 0x8B][..],
        &[0x1F, 0x8B, 0x08][..],
        &[0x1F, 0x8B, 0x08, 0x04, 0, 0, 0, 0, 0, 0xFF][..], // FEXTRA, no extra
        &[0x1F, 0x8B, 0x08, 0x08, 0, 0, 0, 0, 0, 0xFF, b'x'][..], // FNAME, unterminated
    ] {
        assert!(
            software::decompress(frag, Format::Gzip).is_err(),
            "fragment {frag:02X?} must be rejected"
        );
    }
}

#[test]
fn regression_zlib_header_fragments() {
    // One byte short of a header; bad check bits; FDICT with no dictid.
    for frag in [&[0x78][..], &[0x78, 0x00][..], &[0x78, 0xBD][..]] {
        assert!(
            software::decompress(frag, Format::Zlib).is_err(),
            "fragment {frag:02X?} must be rejected"
        );
    }
}

#[test]
fn regression_stored_block_len_nlen_mismatch() {
    // BFINAL=1, BTYPE=00, LEN=4 but NLEN is not !LEN.
    let bad = [0x01, 0x04, 0x00, 0x00, 0x00, b'a', b'b', b'c', b'd'];
    assert!(nx_deflate::inflate_with_limit(&bad, LIMIT).is_err());
}

#[test]
fn regression_stored_block_promises_more_than_it_carries() {
    // LEN=65535 with a 4-byte body: the reader must hit EOF, not scan
    // past the buffer.
    let bad = [0x01, 0xFF, 0xFF, 0x00, 0x00, 1, 2, 3, 4];
    assert!(nx_deflate::inflate_with_limit(&bad, LIMIT).is_err());
}

#[test]
fn regression_reserved_block_type() {
    // BTYPE=11 is reserved by RFC 1951.
    assert!(nx_deflate::inflate_with_limit(&[0x07], LIMIT).is_err());
    assert!(nx_deflate::inflate_with_limit(&[0x07, 0xFF, 0x12], LIMIT).is_err());
}

#[test]
fn regression_fixed_block_with_no_end_of_block() {
    // A fixed-Huffman block that runs out of bits before symbol 256.
    assert!(nx_deflate::inflate_with_limit(&[0x03], LIMIT).is_err());
}

#[test]
fn regression_distance_before_any_output() {
    // Fixed block: length symbol then a distance pointing at history
    // that does not exist yet.
    // 0b011 (BFINAL=1, fixed) then symbol 257 + minimal distance bits.
    let bad = [0x63, 0x00, 0x02, 0x00];
    let _ = nx_deflate::inflate_with_limit(&bad, LIMIT); // must return, Ok or Err
}

#[test]
fn regression_dynamic_block_with_absurd_code_counts() {
    // BTYPE=10 with HLIT/HDIST/HCLEN fields at their maxima but no code
    // length data behind them.
    let bad = [0x05, 0xFF, 0xFF, 0xFF, 0xFF];
    assert!(nx_deflate::inflate_with_limit(&bad, LIMIT).is_err());
}
