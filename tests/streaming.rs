//! End-to-end streaming tests: incremental producers against incremental
//! consumers, across both engines — the full chunked path a storage or
//! network service would run.

use nx_accel::AccelConfig;
use nx_core::GzipStream;
use nx_corpus::CorpusKind;
use nx_deflate::stream::InflateStream;
use nx_deflate::CompressionLevel;

/// Strips the 10-byte gzip header and 8-byte trailer, verifying the CRC.
fn unwrap_gzip(stream: &[u8], expect: &[u8]) -> Vec<u8> {
    assert_eq!(&stream[..3], &[0x1F, 0x8B, 8]);
    let n = stream.len();
    let crc = u32::from_le_bytes(stream[n - 8..n - 4].try_into().unwrap());
    assert_eq!(
        crc,
        nx_deflate::crc32::crc32(expect),
        "trailer CRC mismatch"
    );
    stream[10..n - 8].to_vec()
}

#[test]
fn accel_stream_producer_feeds_inflate_stream_consumer() {
    let data = CorpusKind::Logs.generate(0xBEEF, 300_000);
    // Producer: accelerator chunked CRBs into gzip framing.
    let mut producer = GzipStream::accelerated(AccelConfig::power9());
    let mut wire = Vec::new();
    for chunk in data.chunks(20_000) {
        wire.extend(producer.write(chunk));
    }
    wire.extend(producer.finish());

    // Consumer: push-based software inflate over the raw DEFLATE payload.
    let deflate_payload = unwrap_gzip(&wire, &data);
    let mut consumer = InflateStream::new();
    let mut out = Vec::new();
    for piece in deflate_payload.chunks(777) {
        out.extend(consumer.push(piece).unwrap());
    }
    assert!(consumer.is_finished());
    assert_eq!(out, data);
}

#[test]
fn software_stream_producer_feeds_inflate_stream_consumer() {
    let data = CorpusKind::Code.generate(0xF00D, 200_000);
    let mut producer = GzipStream::software(CompressionLevel::new(9).unwrap());
    let mut wire = Vec::new();
    for chunk in data.chunks(33_333) {
        wire.extend(producer.write(chunk));
    }
    wire.extend(producer.finish());
    let deflate_payload = unwrap_gzip(&wire, &data);
    let mut consumer = InflateStream::new();
    let mut out = Vec::new();
    for piece in deflate_payload.chunks(1024) {
        out.extend(consumer.push(piece).unwrap());
    }
    assert!(consumer.is_finished());
    assert_eq!(out, data);
}

#[test]
fn both_engines_produce_interchangeable_streams() {
    // The same chunk schedule through both engines: outputs differ in
    // bytes (different parses) but both decode identically everywhere.
    let data = CorpusKind::Json.generate(0xABCD, 150_000);
    let engines: Vec<(&str, Vec<u8>)> = vec![
        ("software", {
            let mut s = GzipStream::software(CompressionLevel::default());
            let mut v = Vec::new();
            for c in data.chunks(10_000) {
                v.extend(s.write(c));
            }
            v.extend(s.finish());
            v
        }),
        ("accel", {
            let mut s = GzipStream::accelerated(AccelConfig::z15());
            let mut v = Vec::new();
            for c in data.chunks(10_000) {
                v.extend(s.write(c));
            }
            v.extend(s.finish());
            v
        }),
    ];
    for (name, wire) in &engines {
        assert_eq!(
            nx_deflate::gzip::decompress(wire).unwrap(),
            data,
            "{name} stream failed strict gzip decode"
        );
    }
}

#[test]
fn chunked_accel_compression_cycles_exceed_oneshot() {
    // The per-CRB overhead + history reload is the documented cost of
    // chunking; verify it end-to-end through the facade.
    let data = CorpusKind::Xmlish.generate(0x1234, 256 * 1024);
    let mut chunked = GzipStream::accelerated(AccelConfig::power9());
    for c in data.chunks(8 * 1024) {
        let _ = chunked.write(c);
    }
    let _ = chunked.finish();

    let nx = nx_core::Nx::power9();
    let oneshot = nx.compress(&data, nx_core::Format::Gzip).unwrap();
    assert!(
        chunked.engine_cycles() > oneshot.report.cycles,
        "chunked {} vs oneshot {}",
        chunked.engine_cycles(),
        oneshot.report.cycles
    );
}
