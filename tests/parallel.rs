//! Property tests for the sharded parallel engine: every combination of
//! chunk size, worker count and container framing must produce a stream
//! that round-trips bit-exactly through the software inflate oracle,
//! and the pool's output must be byte-identical to the single-threaded
//! reference (determinism independent of scheduling).

use nx_core::parallel::{ParallelEngine, ParallelOptions};
use nx_core::{software, Format};
use proptest::prelude::*;

/// Inputs with compressible structure and incompressible stretches, so
/// shards exercise both entropy-coded and stored blocks.
fn shardable_bytes() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop_oneof![
            // compressible motif
            (prop::collection::vec(any::<u8>(), 1..16), 1usize..600).prop_map(|(m, n)| m
                .iter()
                .copied()
                .cycle()
                .take(m.len() * n)
                .collect()),
            // incompressible run
            prop::collection::vec(any::<u8>(), 0..2048),
            // long byte run (RLE-ish)
            (any::<u8>(), 1usize..4000).prop_map(|(b, n)| vec![b; n]),
        ],
        0..12,
    )
    .prop_map(|chunks| chunks.concat())
}

fn format_strategy() -> impl Strategy<Value = Format> {
    prop_oneof![
        Just(Format::RawDeflate),
        Just(Format::Gzip),
        Just(Format::Zlib),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_streams_roundtrip_bit_exactly(
        data in shardable_bytes(),
        workers in 1usize..6,
        chunk_pow in 8u32..15, // 256 B .. 16 KB shards
        level in prop_oneof![Just(1u32), Just(6u32), Just(9u32)],
        format in format_strategy(),
    ) {
        let engine = ParallelEngine::new(ParallelOptions {
            workers,
            chunk_size: 1usize << chunk_pow,
        });
        let out = engine.compress(&data, level, format).unwrap();
        // Bit-exact round-trip through the software inflate oracle,
        // container checksums verified.
        prop_assert_eq!(software::decompress(&out, format).unwrap(), data.clone());
        // Scheduling-independent: the pool output equals the inline
        // single-threaded reference byte for byte.
        prop_assert_eq!(out, engine.compress_serial(&data, level, format).unwrap());
    }

    #[test]
    fn sharded_output_independent_of_chunking_for_decoding(
        data in shardable_bytes(),
        chunk_a in 9u32..14,
        chunk_b in 9u32..14,
    ) {
        // Different shard sizes give different bytes but the same payload.
        let a = ParallelEngine::new(ParallelOptions { workers: 2, chunk_size: 1 << chunk_a })
            .compress(&data, 6, Format::Gzip).unwrap();
        let b = ParallelEngine::new(ParallelOptions { workers: 3, chunk_size: 1 << chunk_b })
            .compress(&data, 6, Format::Gzip).unwrap();
        prop_assert_eq!(software::decompress(&a, Format::Gzip).unwrap(), data.clone());
        prop_assert_eq!(software::decompress(&b, Format::Gzip).unwrap(), data);
    }

    #[test]
    fn level_zero_shards_roundtrip(
        data in prop::collection::vec(any::<u8>(), 0..40_000),
        workers in 1usize..4,
    ) {
        let engine = ParallelEngine::new(ParallelOptions { workers, chunk_size: 4096 });
        let out = engine.compress(&data, 0, Format::Zlib).unwrap();
        prop_assert_eq!(software::decompress(&out, Format::Zlib).unwrap(), data);
    }
}
