//! Cross-crate telemetry integration: the determinism pin (identical
//! seeds → byte-identical trace dumps), registry unification across
//! every subsystem, and coverage of all three exporters on live data.

use nx_core::fault::{FaultPlan, FaultRates, RecoveryPolicy};
use nx_core::parallel::ParallelOptions;
use nx_core::{Format, Nx};
use nx_telemetry::{
    to_chrome_trace, to_json, to_prometheus, MetricValue, MetricsRegistry, TelemetrySink,
};

/// Modeled core cycles per microsecond for the trace export.
const CYCLES_PER_US: f64 = 2500.0;

/// A faulted, instrumented handle built from a fixed seed.
fn pinned_nx(seed: u64) -> Nx {
    Nx::with_faults(
        nx_accel::AccelConfig::power9(),
        FaultPlan::seeded(seed, FaultRates::sweep(0.15)),
        RecoveryPolicy::touch_ahead(8),
    )
    .with_telemetry(TelemetrySink::enabled(MetricsRegistry::new()))
}

/// Runs a fixed faulted workload and returns the sorted span dump plus
/// its Chrome rendering.
fn run_pinned(seed: u64) -> (Vec<nx_telemetry::SpanEvent>, String) {
    let nx = pinned_nx(seed);
    let data = nx_corpus::mixed(3, 512 << 10);
    for chunk in data.chunks(128 << 10) {
        let gz = nx.compress(chunk, Format::Gzip).expect("compress");
        let back = nx.decompress(&gz.bytes, Format::Gzip).expect("decompress");
        assert_eq!(back.bytes, chunk);
    }
    let spans = nx.telemetry().trace();
    let chrome = to_chrome_trace(&spans, CYCLES_PER_US);
    (spans, chrome)
}

#[test]
fn same_seed_gives_byte_identical_trace_dumps() {
    let (spans_a, chrome_a) = run_pinned(41);
    let (spans_b, chrome_b) = run_pinned(41);
    assert!(!spans_a.is_empty(), "faulted workload must leave spans");
    assert_eq!(spans_a, spans_b, "span dumps must match event-for-event");
    assert_eq!(
        chrome_a, chrome_b,
        "Chrome renderings must match byte-for-byte"
    );
    // A different seed injects a different fault schedule.
    let (_, chrome_c) = run_pinned(42);
    assert_ne!(
        chrome_a, chrome_c,
        "distinct seeds should trace differently"
    );
}

#[test]
fn parallel_shard_spans_are_independent_of_scheduling() {
    // The shard timeline is modeled (round-robin over shard index), so
    // the trace must not depend on which thread actually ran a shard —
    // re-running the same pool produces the same spans.
    let data = nx_corpus::mixed(9, 768 << 10);
    let run = || {
        let nx = Nx::power9().with_telemetry(TelemetrySink::enabled(MetricsRegistry::new()));
        let sess = nx.parallel_session(
            ParallelOptions {
                workers: 4,
                chunk_size: 64 << 10,
            },
            6,
        );
        let out = sess.compress(&data, Format::Gzip).expect("parallel");
        assert!(!out.is_empty());
        nx.telemetry().trace()
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "shard spans must be schedule-independent");
}

#[test]
fn registry_unifies_every_subsystem() {
    let nx = pinned_nx(5);
    let data = nx_corpus::mixed(11, 512 << 10);

    // Sync, both codecs.
    let gz = nx.compress(&data, Format::Gzip).expect("compress");
    let _ = nx.decompress(&gz.bytes, Format::Gzip).expect("decompress");
    let c842 = nx.compress_842(&data[..128 << 10]);
    let _ = nx.decompress_842(&c842).expect("842");

    // Parallel pool.
    let psess = nx.parallel_session(
        ParallelOptions {
            workers: 2,
            chunk_size: 64 << 10,
        },
        6,
    );
    let _ = psess.compress(&data, Format::Gzip).expect("parallel");

    // Async queue.
    let asess = nx.async_session();
    let h = asess
        .submit(data[..64 << 10].to_vec(), Format::Zlib)
        .expect("submit");
    let _ = h.wait().expect("async");

    let snap = nx.telemetry().registry().expect("registry").snapshot();
    let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();

    // One namespace per subsystem, all in a single snapshot.
    for required in [
        "nx_requests_total{format=\"deflate\",dir=\"compress\"}",
        "nx_requests_total{format=\"842\",dir=\"decompress\"}",
        "nx_retries_total",
        "nx_software_fallbacks_total",
        "nx_fault_page_faults_total",
        "nx_fault_resubmissions_total",
        "nx_parallel_shards_total",
        "nx_parallel_worker_shards_total{worker=\"0\"}",
        "nx_async_queue_depth",
        "nx_async_queue_overflows_total",
        "nx_request_latency_cycles",
        "nx_shard_latency_cycles",
        "nx_queue_depth",
        "nx_request_bytes",
    ] {
        assert!(names.contains(&required), "missing {required} in {names:?}");
    }
    // Snapshot is sorted — a requirement for deterministic exports.
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted);

    // The per-codec split is real: 842 traffic is priced in cycles and
    // does not leak into the DEFLATE counters.
    let stats = nx.stats();
    assert!(
        stats.p842().compress().engine_cycles() > 0,
        "842 cycles must be modeled"
    );
    assert_eq!(stats.p842().compress().requests(), 1);
    assert_eq!(stats.p842().decompress().requests(), 1);
    assert!(stats.deflate().compress().requests() >= 2);
}

#[test]
fn all_three_exporters_render_live_data() {
    let nx = pinned_nx(6);
    let data = nx_corpus::mixed(13, 256 << 10);
    let gz = nx.compress(&data, Format::Gzip).expect("compress");
    let _ = nx.decompress(&gz.bytes, Format::Gzip).expect("decompress");

    let sink = nx.telemetry();
    let snap = sink.registry().expect("registry").snapshot();

    let prom = to_prometheus(&snap);
    assert!(prom.contains("# TYPE nx_request_latency_cycles histogram"));
    assert!(prom.contains("nx_request_latency_cycles_bucket{le=\"+Inf\"}"));
    assert!(prom.contains("# TYPE nx_requests_total counter"));
    assert!(prom.contains("nx_requests_total{format=\"deflate\",dir=\"compress\"}"));

    let json = to_json(&snap);
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert!(json.contains("\"nx_request_latency_cycles\""));
    assert!(json.contains("\"p99\""));

    let chrome = to_chrome_trace(&sink.trace(), CYCLES_PER_US);
    assert!(chrome.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(chrome.trim_end().ends_with("]}"));
    assert!(chrome.contains("\"name\":\"submit\""));
    assert!(chrome.contains("\"name\":\"engine\""));
    assert!(chrome.contains("\"ph\":\"X\""));
}

#[test]
fn disabled_sink_records_nothing_and_costs_no_allocation() {
    let nx = Nx::power9();
    let data = nx_corpus::mixed(17, 128 << 10);
    let gz = nx.compress(&data, Format::Gzip).expect("compress");
    let _ = nx.decompress(&gz.bytes, Format::Gzip).expect("decompress");
    let sink = nx.telemetry();
    assert!(!sink.is_enabled());
    assert!(sink.registry().is_none());
    assert!(sink.trace().is_empty());
    assert_eq!(sink.trace_dropped(), 0);
}

#[test]
fn queue_depth_gauge_returns_to_zero() {
    let nx = Nx::power9().with_telemetry(TelemetrySink::enabled(MetricsRegistry::new()));
    let asess = nx.async_session();
    let data = nx_corpus::mixed(19, 256 << 10);
    let handles: Vec<_> = data
        .chunks(32 << 10)
        .map(|c| asess.submit(c.to_vec(), Format::Gzip).expect("submit"))
        .collect();
    for h in handles {
        let _ = h.wait().expect("job");
    }
    let snap = nx.telemetry().registry().expect("registry").snapshot();
    let depth = snap
        .iter()
        .find(|(n, _)| n == "nx_async_queue_depth")
        .expect("depth gauge registered");
    match depth.1 {
        MetricValue::Gauge(v) => assert_eq!(v, 0, "all jobs drained"),
        ref other => panic!("depth should be a gauge, got {other:?}"),
    }
}
