//! End-to-end fault-injection and recovery tests, driven through the
//! public API only: the `Nx` facade, the parallel engine, the async
//! queue, and the `nx_sys` system simulator.
//!
//! The contract under test, from DESIGN.md's error taxonomy: injected
//! faults are (1) replayable — the same plan seed reproduces the same
//! fault sequence and the same recovery counters; (2) invisible in the
//! payload — a recovered request returns bytes identical to a clean
//! run, whether recovery used resubmission, retry, or the software
//! path; and (3) typed at the edges — when recovery is exhausted and
//! fallback is disabled, the caller sees a specific `Error` variant,
//! never a panic.

use nx_core::fault::{CsbCode, FaultKind, FaultPlan, FaultRates, RecoveryPolicy, Scripted, Site};
use nx_core::{
    software, Error, Format, Nx, ParallelEngine, ParallelInflateOptions, ParallelOptions,
};
use nx_corpus::CorpusKind;
use std::sync::Arc;

const SEED: u64 = 0xFA_017;

fn faulted(plan: FaultPlan, policy: RecoveryPolicy) -> Nx {
    Nx::with_faults(nx_accel::AccelConfig::power9(), plan, policy)
}

/// Multi-page payload (Random stays ~incompressible, so the *compressed*
/// stream also spans several 64 KiB fault pages).
fn big_payload() -> Vec<u8> {
    CorpusKind::Random.generate(SEED, 512 * 1024)
}

#[test]
fn same_seed_same_faults_same_counters() {
    let data = big_payload();
    let gz = software::compress(&data, nx_deflate::CompressionLevel::default(), Format::Gzip);
    let run = || {
        let nx = faulted(
            FaultPlan::seeded(SEED, FaultRates::sweep(0.3)),
            RecoveryPolicy::default(),
        );
        let mut outs = Vec::new();
        for _ in 0..8 {
            outs.push(nx.decompress(&gz, Format::Gzip).expect("recovers").bytes);
        }
        let s = nx.fault_stats().expect("stats");
        (
            outs,
            [
                s.page_fault_count(),
                s.csb_error_count(),
                s.timeout_count(),
                s.queue_overflow_count(),
                s.corruption_count(),
                s.retry_count(),
                s.resubmission_count(),
                s.software_fallback_count(),
            ],
        )
    };
    let (outs_a, counters_a) = run();
    let (outs_b, counters_b) = run();
    assert_eq!(counters_a, counters_b, "replay produced different faults");
    assert!(
        counters_a.iter().sum::<u64>() > 0,
        "rate 0.3 over 8 requests must inject something"
    );
    assert_eq!(outs_a, outs_b);
    for out in &outs_a {
        assert_eq!(out, &data, "recovery must not change the payload");
    }
}

#[test]
fn scripted_page_fault_resubmits_and_succeeds() {
    let data = big_payload();
    let gz = software::compress(&data, nx_deflate::CompressionLevel::default(), Format::Gzip);
    let nx = faulted(
        FaultPlan::script(vec![Scripted {
            site: Site::Decompress,
            request: 0,
            attempt: 0,
            kind: FaultKind::PageFault { offset: 65_536 },
        }]),
        RecoveryPolicy::default(),
    );
    let out = nx.decompress(&gz, Format::Gzip).expect("resubmission");
    assert_eq!(out.bytes, data);
    let s = nx.fault_stats().expect("stats");
    assert_eq!(s.page_fault_count(), 1);
    assert_eq!(s.resubmission_count(), 1);
    assert_eq!(s.software_fallback_count(), 0);
}

#[test]
fn touch_ahead_suppresses_later_faults_on_the_same_request() {
    // Same heavy page-fault plan, two policies: the touch-ahead window
    // makes pages resident before they can fault, so it must absorb at
    // least as many draws as plain retry and log suppressions.
    let data = big_payload();
    let gz = software::compress(&data, nx_deflate::CompressionLevel::default(), Format::Gzip);
    let run = |policy: RecoveryPolicy| {
        let plan = FaultPlan::seeded(
            SEED,
            FaultRates {
                page_fault: 0.9,
                ..FaultRates::none()
            },
        );
        let nx = faulted(plan, policy);
        for _ in 0..6 {
            let out = nx.decompress(&gz, Format::Gzip).expect("recovers");
            assert_eq!(out.bytes, data);
        }
        let s = nx.fault_stats().expect("stats");
        (s.page_fault_count(), s.touch_ahead_suppressed_count())
    };
    let (retry_faults, retry_suppressed) = run(RecoveryPolicy::default());
    let (ahead_faults, ahead_suppressed) = run(RecoveryPolicy::touch_ahead(64));
    assert!(
        ahead_faults <= retry_faults,
        "touch-ahead took more faults ({ahead_faults}) than plain retry ({retry_faults})"
    );
    assert!(
        ahead_suppressed >= retry_suppressed,
        "the wider window must suppress at least as many draws"
    );
    assert!(retry_faults > 0, "the 0.9 plan must fault at all");
}

#[test]
fn accelerator_unavailable_degrades_to_identical_software_bytes() {
    let data = nx_corpus::mixed(SEED, 96 * 1024);
    let gz = software::compress(&data, nx_deflate::CompressionLevel::default(), Format::Gzip);
    let script = |site| {
        FaultPlan::script(vec![Scripted {
            site,
            request: 0,
            attempt: 0,
            kind: FaultKind::AccelUnavailable,
        }])
    };
    // Decompression: the software path is byte-identical (both sides
    // implement RFC 1951 exactly).
    let nx = faulted(script(Site::Decompress), RecoveryPolicy::default());
    let out = nx.decompress(&gz, Format::Gzip).expect("fallback");
    assert_eq!(out.bytes, data);
    assert_eq!(out.report.config_name, "software-fallback");
    assert_eq!(
        nx.fault_stats().expect("stats").software_fallback_count(),
        1
    );
    // Compression: the fallback stream need not match the accelerator's
    // bytes, but it must decode to the same payload.
    let nx = faulted(script(Site::Compress), RecoveryPolicy::default());
    let out = nx.compress(&data, Format::Gzip).expect("fallback");
    assert_eq!(out.report.config_name, "software-fallback");
    assert_eq!(
        software::decompress(&out.bytes, Format::Gzip).expect("valid"),
        data
    );
}

#[test]
fn fallback_disabled_surfaces_typed_errors() {
    let data = nx_corpus::mixed(SEED, 32 * 1024);
    let gz = software::compress(&data, nx_deflate::CompressionLevel::default(), Format::Gzip);
    let no_fallback = RecoveryPolicy {
        software_fallback: false,
        ..RecoveryPolicy::default()
    };
    // Unavailable accelerator.
    let nx = faulted(
        FaultPlan::script(vec![Scripted {
            site: Site::Decompress,
            request: 0,
            attempt: 0,
            kind: FaultKind::AccelUnavailable,
        }]),
        no_fallback,
    );
    assert!(matches!(
        nx.decompress(&gz, Format::Gzip),
        Err(Error::AcceleratorUnavailable)
    ));
    // CSB errors on every attempt: budget exhausts into a typed timeout.
    let storm: Vec<Scripted> = (0..no_fallback.max_attempts)
        .map(|attempt| Scripted {
            site: Site::Decompress,
            request: 0,
            attempt,
            kind: FaultKind::CsbError {
                code: CsbCode::Hardware,
            },
        })
        .collect();
    let nx = faulted(FaultPlan::script(storm), no_fallback);
    match nx.decompress(&gz, Format::Gzip) {
        Err(Error::SubmissionTimeout { attempts }) => {
            assert_eq!(attempts, no_fallback.max_attempts);
        }
        other => panic!("expected SubmissionTimeout, got {other:?}"),
    }
    // A later request on the same handle is clean (script only names
    // request 0): typed errors must not poison the session.
    assert_eq!(nx.decompress(&gz, Format::Gzip).expect("clean").bytes, data);
}

#[test]
fn injected_output_corruption_is_detected_and_retried() {
    let data = nx_corpus::mixed(SEED, 64 * 1024);
    let gz = software::compress(&data, nx_deflate::CompressionLevel::default(), Format::Gzip);
    let nx = faulted(
        FaultPlan::script(vec![Scripted {
            site: Site::Output,
            request: 0,
            attempt: 0,
            kind: FaultKind::BitFlip {
                offset: 1000,
                mask: 0x40,
            },
        }]),
        RecoveryPolicy::default(),
    );
    let out = nx.decompress(&gz, Format::Gzip).expect("retried");
    assert_eq!(out.bytes, data, "corrupted attempt must never escape");
    let s = nx.fault_stats().expect("stats");
    assert_eq!(s.corruption_detected_count(), 1);
    assert!(s.retry_count() >= 1);
}

#[test]
fn genuine_input_errors_are_not_retried() {
    // A malformed stream through a fault-injecting handle: the decode
    // error must surface immediately (no retries, no fallback — the
    // input is wrong, not the accelerator).
    let nx = faulted(
        FaultPlan::seeded(SEED, FaultRates::none()),
        RecoveryPolicy::default(),
    );
    assert!(nx.decompress(&[0x1F, 0x8B, 0x08], Format::Gzip).is_err());
    let s = nx.fault_stats().expect("stats");
    assert_eq!(s.retry_count(), 0);
    assert_eq!(s.software_fallback_count(), 0);
}

#[test]
fn dead_parallel_pool_falls_back_to_serial_bytes() {
    // Kill both workers on their first shard; the coordinator must
    // detect the dead pool and produce the serial engine's exact bytes.
    let script: Vec<Scripted> = (0..16)
        .map(|s| Scripted {
            site: Site::Worker,
            request: 0,
            attempt: s,
            kind: FaultKind::WorkerPanic,
        })
        .collect();
    let inj = Arc::new(nx_core::FaultInjector::new(
        FaultPlan::script(script),
        RecoveryPolicy::default(),
    ));
    let engine = ParallelEngine::with_faults(
        ParallelOptions {
            workers: 2,
            chunk_size: 32 * 1024,
        },
        Arc::clone(&inj),
    );
    let data = nx_corpus::mixed(SEED, 256 * 1024);
    let out = engine.compress(&data, 6, Format::Gzip).expect("fallback");
    let serial = engine
        .compress_serial(&data, 6, Format::Gzip)
        .expect("serial");
    assert_eq!(out, serial);
    assert_eq!(engine.stats().serial_fallbacks(), 1);
    assert_eq!(
        software::decompress(&out, Format::Gzip).expect("valid"),
        data
    );
}

#[test]
fn zero_worker_pool_is_a_typed_error() {
    match ParallelEngine::try_new(ParallelOptions {
        workers: 0,
        chunk_size: 128 * 1024,
    }) {
        Err(Error::NoWorkers) => {}
        other => panic!("expected NoWorkers, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn bounded_async_queue_overflow_is_typed_and_recoverable() {
    let nx = Nx::power9();
    let session = nx.async_session_bounded(1);
    let data = nx_corpus::mixed(SEED, 512 * 1024);
    let mut handles = Vec::new();
    let mut overflowed = false;
    for _ in 0..24 {
        match session.try_submit(data.clone(), Format::Gzip) {
            Ok(h) => handles.push(h),
            Err(Error::QueueOverflow) => {
                overflowed = true;
                break;
            }
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
    assert!(overflowed, "depth-1 queue never overflowed");
    // Everything accepted before the overflow still completes correctly.
    for h in handles {
        let out = h.wait().expect("accepted job completes");
        assert_eq!(
            software::decompress(&out.bytes, Format::Gzip).expect("valid"),
            data
        );
    }
}

#[test]
fn killed_decode_workers_degrade_to_serial_inflate_bytes() {
    // Kill every speculative decode chunk worker on the first request:
    // the patch pass finds no usable chunks and must re-decode serially
    // — same bytes as a clean run, never an error.
    let data = nx_corpus::mixed(SEED, 512 * 1024);
    let gz = software::compress(&data, nx_deflate::CompressionLevel::default(), Format::Gzip);
    let script: Vec<Scripted> = (0..64)
        .map(|chunk| Scripted {
            site: Site::Worker,
            request: 0,
            attempt: chunk,
            kind: FaultKind::WorkerPanic,
        })
        .collect();
    let opts = ParallelInflateOptions {
        workers: 4,
        chunk_size: 32 * 1024,
        ..Default::default()
    };
    let nx = faulted(FaultPlan::script(script), RecoveryPolicy::default());
    let out = nx
        .decompress_parallel_with(&gz, Format::Gzip, opts)
        .expect("degrades, does not error");
    assert_eq!(out, data, "fallback must reproduce the serial bytes");
    let fs = nx.fault_stats().expect("stats");
    assert!(fs.worker_panic_count() >= 1, "the script must fire");
    let ds = nx.decode_parallel_stats();
    assert!(
        ds.speculation_misses() >= 1 || ds.serial_fallbacks() >= 1,
        "a killed worker must be visible in the decode counters"
    );
    // A later request on the same handle runs parallel again — the
    // injected failure must not poison the session.
    assert_eq!(
        nx.decompress_parallel_with(&gz, Format::Gzip, opts)
            .expect("clean"),
        data
    );
}

#[test]
fn killed_member_worker_falls_back_on_multi_member_gzip() {
    // Multi-member streams take the member-per-worker fast path; a dead
    // member worker breaks the chain validation and the request must
    // degrade to the serial members walk with identical output.
    let mut stream = Vec::new();
    let mut payload = Vec::new();
    for i in 0..4u64 {
        let part = nx_corpus::mixed(SEED + i, 48 * 1024);
        stream.extend_from_slice(&software::compress(
            &part,
            nx_deflate::CompressionLevel::default(),
            Format::Gzip,
        ));
        payload.extend_from_slice(&part);
    }
    let script: Vec<Scripted> = (0..4)
        .map(|member| Scripted {
            site: Site::Worker,
            request: 0,
            attempt: member,
            kind: FaultKind::WorkerPanic,
        })
        .collect();
    let nx = faulted(FaultPlan::script(script), RecoveryPolicy::default());
    let out = nx
        .decompress_parallel_with(
            &stream,
            Format::Gzip,
            ParallelInflateOptions {
                workers: 4,
                ..Default::default()
            },
        )
        .expect("degrades, does not error");
    assert_eq!(out, payload);
    assert!(nx.decode_parallel_stats().serial_fallbacks() >= 1);
}

#[test]
fn simulator_replays_injected_csb_storms_exactly() {
    use nx_sys::crb::Function;
    use nx_sys::erat::FaultPolicy;
    use nx_sys::{CompletionMode, RequestStream, SystemSim, Topology};
    let stream = RequestStream::saturating(
        SEED,
        48,
        2 << 20,
        &[CorpusKind::Json, CorpusKind::Logs],
        Function::Compress,
    );
    let run = || {
        let mut sim = SystemSim::new(
            &Topology::power9_chip(),
            CompletionMode::Interrupt,
            FaultPolicy::RetryOnFault {
                fault_probability: 0.02,
            },
            SEED,
        )
        .with_injected_faults(FaultPlan::seeded(
            SEED,
            FaultRates {
                csb_error: 0.25,
                timeout: 0.05,
                ..FaultRates::none()
            },
        ));
        sim.run(&stream)
    };
    let a = run();
    let b = run();
    assert!(a.csb_errors > 0, "the storm must inject CSB errors");
    assert_eq!(a.csb_errors, b.csb_errors);
    assert_eq!(a.retries, b.retries);
    assert_eq!(a.completed, b.completed);
    assert_eq!(
        a.completed, 48,
        "every request must finish despite the storm"
    );
    assert_eq!(a.input_bytes, b.input_bytes);
}
