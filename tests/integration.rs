//! Cross-crate integration tests: the full stack (corpus → accelerator →
//! containers → decoders) and interoperability between every producer and
//! every consumer of DEFLATE streams in the workspace.

use nx_core::{software, Format, Nx};
use nx_corpus::CorpusKind;
use nx_deflate::CompressionLevel;

/// Every producer (software levels, both accelerator generations) ×
/// every consumer (software inflate, accelerator decompressor) on every
/// corpus class.
#[test]
fn full_interoperability_matrix() {
    let p9 = Nx::power9();
    let z15 = Nx::z15();
    for &kind in CorpusKind::all() {
        let data = kind.generate(0xFEED, 64 * 1024);

        // Producers: raw streams.
        let mut streams: Vec<(String, Vec<u8>)> = Vec::new();
        for level in [1u32, 6, 9] {
            streams.push((
                format!("sw-l{level}"),
                nx_deflate::deflate(&data, CompressionLevel::new(level).unwrap()),
            ));
        }
        streams.push((
            "p9".into(),
            p9.compress(&data, Format::RawDeflate).unwrap().bytes,
        ));
        streams.push((
            "z15".into(),
            z15.compress(&data, Format::RawDeflate).unwrap().bytes,
        ));

        for (name, stream) in &streams {
            // Consumer 1: software inflate.
            assert_eq!(
                nx_deflate::inflate(stream).unwrap(),
                data,
                "{kind}/{name} vs software inflate"
            );
            // Consumer 2: accelerator decompressor.
            assert_eq!(
                p9.decompress(stream, Format::RawDeflate).unwrap().bytes,
                data,
                "{kind}/{name} vs accelerator"
            );
        }
    }
}

#[test]
fn framed_formats_interoperate_between_paths() {
    let nx = Nx::power9();
    let data = CorpusKind::Logs.generate(5, 100_000);
    for format in [Format::Gzip, Format::Zlib] {
        let hw = nx.compress(&data, format).unwrap().bytes;
        let sw = software::compress(&data, CompressionLevel::new(6).unwrap(), format);
        assert_eq!(software::decompress(&hw, format).unwrap(), data);
        assert_eq!(nx.decompress(&sw, format).unwrap().bytes, data);
    }
}

#[test]
fn gzip_container_from_accelerator_passes_strict_parser() {
    let nx = Nx::z15();
    let data = CorpusKind::Xmlish.generate(9, 80_000);
    let gz = nx.compress(&data, Format::Gzip).unwrap().bytes;
    // The strict software gzip parser verifies CRC and ISIZE.
    let (out, header, used) = nx_deflate::gzip::decompress_with_header(&gz).unwrap();
    assert_eq!(out, data);
    assert_eq!(used, gz.len());
    assert_eq!(header.file_name, None);
}

#[test]
fn accelerator_reports_make_physical_sense_across_the_suite() {
    let nx = Nx::power9();
    for &kind in CorpusKind::all() {
        let data = kind.generate(3, 256 * 1024);
        let c = nx.compress(&data, Format::RawDeflate).unwrap();
        let r = &c.report;
        assert!(
            r.bytes_per_cycle() <= 8.0 + 1e-9,
            "{kind} exceeds lane width"
        );
        assert!(r.cycles > 0 && r.blocks > 0, "{kind} degenerate report");
        assert!(
            r.ratio() >= 0.9,
            "{kind}: expansion beyond stored-block overhead ({})",
            r.ratio()
        );
        let d = nx.decompress(&c.bytes, Format::RawDeflate).unwrap();
        assert_eq!(d.bytes, data);
        assert_eq!(d.report.output_bytes, data.len() as u64);
    }
}

#[test]
fn end_to_end_842_memory_compression_path() {
    let nx = Nx::power9();
    for &kind in CorpusKind::all() {
        let page = kind.generate(7, 64 * 1024); // one 64 KB page
        let c = nx.compress_842(&page);
        assert_eq!(nx.decompress_842(&c).unwrap(), page, "{kind}");
    }
}

#[test]
fn concurrent_clients_share_one_accelerator_safely() {
    let nx = Nx::power9();
    let threads: Vec<_> = (0..8)
        .map(|i| {
            let nx = nx.clone();
            std::thread::spawn(move || {
                let data = CorpusKind::Json.generate(i, 50_000);
                let c = nx.compress(&data, Format::Zlib).unwrap();
                assert_eq!(nx.decompress(&c.bytes, Format::Zlib).unwrap().bytes, data);
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(nx.stats().compress_requests(), 8);
    assert_eq!(nx.stats().decompress_requests(), 8);
}
