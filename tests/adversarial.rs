//! Adversarial-stream battery: hostile inputs through every public
//! decode surface.
//!
//! Every mutation of a valid stream — truncation, bit flips, corrupted
//! length/checksum fields, wholesale garbage — must come back as a typed
//! `Err`, a correct `Ok`, or a detected-corruption `Ok`; never a panic,
//! a hang, or output past the caller's limit. The decoders are the
//! attack surface of the stack (they parse untrusted bytes), so this
//! battery runs the same corpus through four of them:
//!
//! * `nx_deflate::inflate_with_limit` — the raw DEFLATE oracle,
//! * `nx_core::software::decompress` — container parsing (gzip/zlib
//!   headers and trailers) over the same core,
//! * `Nx::decompress` — the accelerator facade (framing + engine model),
//! * `nx_842::decompress_with_limit` — the 842 template parser.

use nx_core::{software, Format, Nx};
use nx_deflate::CompressionLevel;

/// Output cap handed to the `*_with_limit` decoders: generous enough for
/// every valid stream in the corpus, tight enough that a decoder running
/// away on corrupt lengths trips it instead of ballooning.
const LIMIT: usize = 1 << 20;

/// splitmix64 — the battery's only randomness; fully deterministic.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = mix(self.0);
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Valid streams at every level and framing, from a structured corpus.
fn valid_streams() -> Vec<(Format, Vec<u8>)> {
    let mut streams = Vec::new();
    for (i, size) in [0usize, 1, 257, 4096, 16384].iter().enumerate() {
        let data = nx_corpus::mixed(0xAD5 + i as u64, *size);
        for level in [0u32, 1, 6, 9] {
            let lvl = CompressionLevel::new(level).expect("valid level");
            for format in [Format::RawDeflate, Format::Gzip, Format::Zlib] {
                streams.push((format, software::compress(&data, lvl, format)));
            }
        }
    }
    streams
}

/// One mutated variant of `base` (never a verbatim copy is required —
/// correctness of valid streams is covered elsewhere).
fn mutate(base: &[u8], rng: &mut Rng) -> Vec<u8> {
    let mut m = base.to_vec();
    match rng.below(6) {
        // Truncate anywhere, including to empty.
        0 => m.truncate(rng.below(m.len() + 1)),
        // Flip one bit.
        1 if !m.is_empty() => {
            let i = rng.below(m.len());
            m[i] ^= 1 << rng.below(8);
        }
        // Stomp a whole byte.
        2 if !m.is_empty() => {
            let i = rng.below(m.len());
            m[i] = rng.next() as u8;
        }
        // Corrupt the tail (trailer CRC/ISIZE/Adler live there).
        3 if !m.is_empty() => {
            let n = m.len();
            let span = rng.below(8.min(n)) + 1;
            for b in &mut m[n - span..] {
                *b = rng.next() as u8;
            }
        }
        // Duplicate a slice into the middle.
        4 if !m.is_empty() => {
            let start = rng.below(m.len());
            let end = (start + rng.below(16) + 1).min(m.len());
            let slice = m[start..end].to_vec();
            let at = rng.below(m.len());
            m.splice(at..at, slice);
        }
        // Pure garbage of similar size.
        _ => {
            let n = rng.below(base.len().max(16)) + 1;
            m = (0..n).map(|_| rng.next() as u8).collect();
        }
    }
    m
}

/// The shared assertion: a hostile buffer through every decode surface.
/// Returning at all (no panic, no runaway allocation) is most of the
/// point; the explicit checks pin the output-limit contract and the
/// software/accelerator agreement.
fn assault(nx: &Nx, format: Format, m: &[u8]) {
    if let Ok(out) = nx_deflate::inflate_with_limit(m, LIMIT) {
        assert!(out.len() <= LIMIT, "inflate exceeded its output limit");
    }
    let sw = software::decompress(m, format);
    let nx = nx.decompress(m, format);
    match (&sw, &nx) {
        (Ok(a), Ok(b)) => assert_eq!(
            a, &b.bytes,
            "software and accelerator accepted the same stream but disagreed"
        ),
        (Err(_), Err(_)) => {}
        (a, b) => panic!(
            "software and accelerator disagree on acceptance: sw={:?} nx={:?}",
            a.is_ok(),
            b.is_ok()
        ),
    }
}

#[test]
fn mutated_streams_never_panic_or_overrun() {
    let streams = valid_streams();
    let nx = Nx::power9();
    let mut rng = Rng(0xBA771E);
    for (format, base) in &streams {
        for _ in 0..24 {
            let m = mutate(base, &mut rng);
            assault(&nx, *format, &m);
        }
    }
}

#[test]
fn every_truncation_of_a_small_stream_is_handled() {
    // Exhaustive truncation sweep on one stream per framing: every
    // prefix boundary (header, mid-block, trailer) must be a typed
    // error or a clean parse, never a panic.
    let data = nx_corpus::mixed(0x7211, 2048);
    let nx = Nx::power9();
    let lvl = CompressionLevel::new(6).expect("valid level");
    for format in [Format::RawDeflate, Format::Gzip, Format::Zlib] {
        let full = software::compress(&data, lvl, format);
        for cut in 0..full.len() {
            assault(&nx, format, &full[..cut]);
        }
    }
}

#[test]
fn random_garbage_is_rejected_not_parsed_forever() {
    let nx = Nx::power9();
    let mut rng = Rng(0x6A2BA6E);
    for _ in 0..256 {
        let n = rng.below(4096);
        let garbage: Vec<u8> = (0..n).map(|_| rng.next() as u8).collect();
        for format in [Format::RawDeflate, Format::Gzip, Format::Zlib] {
            assault(&nx, format, &garbage);
        }
    }
}

#[test]
fn corrupted_length_fields_are_caught() {
    // Stored blocks carry explicit LEN/NLEN; gzip carries ISIZE. Stomp
    // each directly instead of hoping the random mutator finds them.
    let data = nx_corpus::mixed(0x1E46, 4096);
    let lvl = CompressionLevel::new(0).expect("stored blocks");
    let mut raw = software::compress(&data, lvl, Format::RawDeflate);
    // Byte 0 is the block header; bytes 1..5 are LEN/NLEN of the first
    // stored block. Break the complement invariant.
    if raw.len() > 4 {
        raw[3] ^= 0xFF;
        assert!(
            nx_deflate::inflate_with_limit(&raw, LIMIT).is_err(),
            "LEN/NLEN mismatch must be rejected"
        );
    }
    let mut gz = software::compress(&data, lvl, Format::Gzip);
    let n = gz.len();
    for b in &mut gz[n - 4..] {
        *b ^= 0x5A; // ISIZE now disagrees with the inflated length
    }
    assert!(
        software::decompress(&gz, Format::Gzip).is_err(),
        "gzip ISIZE mismatch must be rejected"
    );
}

#[test]
fn mutated_842_streams_never_panic_or_overrun() {
    let mut rng = Rng(0x842_842);
    for (i, size) in [1usize, 64, 512, 4096].iter().enumerate() {
        let data = nx_corpus::mixed(0x842 + i as u64, *size);
        let base = nx_842::compress(&data);
        for _ in 0..48 {
            let m = mutate(&base, &mut rng);
            if let Ok(out) = nx_842::decompress_with_limit(&m, LIMIT) {
                assert!(out.len() <= LIMIT, "842 decode exceeded its output limit");
            }
        }
        // Exhaustive truncations as well — the 842 bit reader walks
        // templates right up to the end of the buffer.
        for cut in 0..base.len() {
            if let Ok(out) = nx_842::decompress_with_limit(&base[..cut], LIMIT) {
                assert!(out.len() <= LIMIT);
            }
        }
    }
}

#[test]
fn decode_is_deterministic_on_hostile_input() {
    // Same hostile buffer twice → byte-identical verdicts. Guards
    // against uninitialized reads or state leaking between calls.
    let mut rng = Rng(0xD37E);
    let data = nx_corpus::mixed(0xD37E, 4096);
    let lvl = CompressionLevel::new(6).expect("valid level");
    let base = software::compress(&data, lvl, Format::Zlib);
    for _ in 0..64 {
        let m = mutate(&base, &mut rng);
        let a = software::decompress(&m, Format::Zlib);
        let b = software::decompress(&m, Format::Zlib);
        match (a, b) {
            (Ok(x), Ok(y)) => assert_eq!(x, y),
            (Err(x), Err(y)) => assert_eq!(format!("{x}"), format!("{y}")),
            _ => panic!("nondeterministic accept/reject on identical input"),
        }
    }
}
