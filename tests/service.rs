//! The multi-tenant service test battery (issue 7).
//!
//! Four satellites in one file:
//! 1. **Integration**: hog isolation, typed credit backpressure without
//!    loss or reordering, QoS priority under storm (Latency p99 <
//!    Background p50), coalescing byte-identity.
//! 2. **Property tests**: loadgen determinism from seed, credit
//!    conservation for arbitrary tenant mixes, bounded-wait
//!    (no starvation) for the DWRR scheduler.
//! 3. **Chaos**: the PR 2 fault injector threaded through the service
//!    path — all tenants keep being served, no credit leaks across
//!    recovery, fairness stays above a floor.
//! 4. **Backpressure-counter regression**: credit- vs depth- vs
//!    fault-rejects are attributed separately in `NxStats`.
//!
//! Latency/fairness assertions run on the virtual-clock storm driver
//! (deterministic, no wall-clock flakiness); the threaded `NxService`
//! is exercised for protocol properties (typed errors, FIFO order,
//! byte-identity, drain-on-close).

use nx_core::fault::{FaultPlan, FaultRates, RecoveryPolicy};
use nx_core::service::loadgen::{self, LoadGen, PayloadDist, StormConfig, TenantLoad};
use nx_core::service::{QosClass, ServiceConfig, ServiceError, TenantSpec};
use nx_core::{Format, Nx};
use nx_corpus::CorpusKind;
use proptest::prelude::*;

fn storm_loads() -> Vec<TenantLoad> {
    vec![
        TenantLoad::new(
            TenantSpec::new("rpc", QosClass::Latency, 16),
            30_000.0,
            PayloadDist::new(CorpusKind::Json, 256, 4096, 1.2),
            120,
        ),
        TenantLoad::new(
            TenantSpec::new("bulk", QosClass::Throughput, 8),
            120_000.0,
            PayloadDist::new(CorpusKind::Binary, 16 << 10, 64 << 10, 1.3),
            50,
        ),
        TenantLoad::new(
            TenantSpec::new("scan", QosClass::Background, 4),
            200_000.0,
            PayloadDist::new(CorpusKind::Text, 32 << 10, 96 << 10, 1.3),
            30,
        ),
        TenantLoad::new(
            TenantSpec::new("logs", QosClass::Latency, 16),
            45_000.0,
            PayloadDist::new(CorpusKind::Logs, 512, 4096, 1.2),
            80,
        ),
    ]
}

/// The hog: an open-loop Throughput tenant offering far more than its
/// fair share.
fn hog_load() -> TenantLoad {
    TenantLoad::new(
        TenantSpec::new("hog", QosClass::Throughput, 12),
        12_000.0,
        PayloadDist::new(CorpusKind::Logs, 24 << 10, 48 << 10, 1.3),
        260,
    )
}

// ---------------------------------------------------------------------
// 1. Integration battery (virtual storm + threaded service)
// ---------------------------------------------------------------------

#[test]
fn hog_cannot_blow_up_victim_tail_latency() {
    // The victim's arrival stream is a pure function of (seed, name), so
    // the only thing that changes between runs is the hog's presence.
    let victim_only = storm_loads();
    let mut with_hog = storm_loads();
    with_hog.push(hog_load());
    let cfg = StormConfig::default();
    let alone = loadgen::run_storm(42, &victim_only, &cfg);
    let contended = loadgen::run_storm(42, &with_hog, &cfg);

    let p99_alone = alone.tenant("rpc").map(|t| t.p99_cycles()).unwrap_or(0);
    let p99_contended = contended.tenant("rpc").map(|t| t.p99_cycles()).unwrap_or(0);
    assert!(p99_alone > 0 && p99_contended > 0);
    // DWRR isolation: a Throughput-class hog may grow the Latency-class
    // victim's p99, but only by a bounded factor.
    let factor = p99_contended as f64 / p99_alone as f64;
    assert!(
        factor <= 8.0,
        "hog pushed victim p99 {p99_alone} -> {p99_contended} ({factor:.1}x)"
    );
    // And the victim keeps completing nearly everything it offers.
    let rpc = contended.tenant("rpc").map(|t| t.goodput()).unwrap_or(0.0);
    assert!(rpc >= 0.9, "victim goodput collapsed to {rpc}");
}

#[test]
fn qos_priority_holds_under_storm() {
    // A saturating mix in which every tenant stays active for the whole
    // storm window (~6M cycles), so Background requests actually queue
    // behind higher classes instead of catching an idle engine.
    let loads = vec![
        TenantLoad::new(
            TenantSpec::new("rpc", QosClass::Latency, 16),
            30_000.0,
            PayloadDist::new(CorpusKind::Json, 256, 4096, 1.2),
            200,
        ),
        TenantLoad::new(
            TenantSpec::new("logs", QosClass::Latency, 16),
            45_000.0,
            PayloadDist::new(CorpusKind::Logs, 512, 4096, 1.2),
            130,
        ),
        TenantLoad::new(
            TenantSpec::new("hog", QosClass::Throughput, 12),
            4_000.0,
            PayloadDist::new(CorpusKind::Logs, 24 << 10, 48 << 10, 1.3),
            1_200,
        ),
        TenantLoad::new(
            TenantSpec::new("scan", QosClass::Background, 4),
            150_000.0,
            PayloadDist::new(CorpusKind::Text, 32 << 10, 96 << 10, 1.3),
            40,
        ),
    ];
    let r = loadgen::run_storm(7, &loads, &StormConfig::default());
    let latency_p99 = r
        .tenants
        .iter()
        .filter(|t| t.class == QosClass::Latency)
        .map(|t| t.p99_cycles())
        .max()
        .unwrap_or(0);
    let background_p50 = r
        .tenants
        .iter()
        .filter(|t| t.class == QosClass::Background)
        .map(|t| t.p50_cycles())
        .min()
        .unwrap_or(0);
    assert!(latency_p99 > 0 && background_p50 > 0);
    assert!(
        latency_p99 < background_p50,
        "Latency-class p99 ({latency_p99}) not below Background-class p50 ({background_p50})"
    );
}

#[test]
fn credit_exhaustion_is_typed_lossless_and_ordered() {
    // Threaded service, tiny credit budget: rejections must be typed
    // NoCredit, accepted work must complete in admission order.
    let nx = Nx::power9();
    let service = nx.service(ServiceConfig {
        engine_depth: 64,
        ..ServiceConfig::default()
    });
    let w = service.open_window(TenantSpec::new("t0", QosClass::Latency, 2));
    let mut tickets = Vec::new();
    let mut rejected = 0u64;
    for i in 0..40u8 {
        match w.submit(vec![i; 20_000], Format::Gzip) {
            Ok(t) => tickets.push(t),
            Err(ServiceError::NoCredit) => rejected += 1,
            Err(e) => panic!("unexpected rejection {e}"),
        }
    }
    // With 2 credits and a fast open loop some submissions must bounce.
    assert!(rejected > 0, "credit budget of 2 never exhausted");
    assert_eq!(w.stats().rejected_no_credit(), rejected);
    // Everything admitted completes, in admission order, no drops.
    let mut prev = None;
    for t in tickets {
        let served = t.wait().expect("admitted request must complete");
        assert_eq!(served.admit_seq, served.complete_seq);
        if let Some(p) = prev {
            assert!(served.admit_seq > p, "completions reordered");
        }
        prev = Some(served.admit_seq);
    }
    assert!(service.credits_conserved());
    assert_eq!(nx.stats().credit_rejects(), rejected);
    service.close();
}

#[test]
fn coalesced_batches_roundtrip_byte_identical() {
    // Small payloads coalesce into shared engine submissions; the result
    // for each must be byte-identical to an individual submission on an
    // identical engine.
    let nx = Nx::power9();
    let service = nx.service(ServiceConfig {
        coalesce_limit: 4096,
        coalesce_batch: 8,
        ..ServiceConfig::default()
    });
    let w = service.open_window(TenantSpec::new("rpc", QosClass::Latency, 32));
    let payloads: Vec<Vec<u8>> = (0..24u64)
        .map(|i| CorpusKind::Json.generate(i, 1500 + (i as usize * 97) % 2000))
        .collect();
    let tickets: Vec<_> = payloads
        .iter()
        .map(|p| w.submit(p.clone(), Format::Gzip).expect("admission"))
        .collect();
    let served: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().expect("completion"))
        .collect();
    // At least some requests must actually have been coalesced for the
    // test to mean anything.
    assert!(
        served.iter().any(|s| s.batched > 1),
        "no coalescing happened"
    );
    assert!(service.stats().coalesced_batches() > 0);
    // Reference: a fresh accelerator handle, one request at a time.
    let reference = Nx::power9();
    for (p, s) in payloads.iter().zip(&served) {
        let solo = reference.compress(p, Format::Gzip).expect("reference");
        assert_eq!(
            solo.bytes, s.compressed.bytes,
            "coalesced output differs from individual submission"
        );
        let back = reference
            .decompress(&s.compressed.bytes, Format::Gzip)
            .expect("decode");
        assert_eq!(&back.bytes, p);
    }
    service.close();
}

#[test]
fn service_drains_on_close_and_depth_rejects_are_typed() {
    let nx = Nx::power9();
    let service = nx.service(ServiceConfig {
        engine_depth: 4,
        ..ServiceConfig::default()
    });
    let w = service.open_window(TenantSpec::new("t", QosClass::Throughput, 64));
    let mut tickets = Vec::new();
    let mut depth_rejects = 0u64;
    for i in 0..64u8 {
        match w.submit(vec![i; 60_000], Format::Gzip) {
            Ok(t) => tickets.push(t),
            Err(ServiceError::QueueFull) => depth_rejects += 1,
            Err(ServiceError::NoCredit) => panic!("credits should outlast depth 4"),
            Err(e) => panic!("unexpected {e}"),
        }
    }
    assert!(depth_rejects > 0, "depth bound of 4 never hit");
    assert_eq!(nx.stats().depth_rejects(), depth_rejects);
    for t in tickets {
        t.wait().expect("admitted jobs complete across close");
    }
    assert!(service.credits_conserved());
}

// ---------------------------------------------------------------------
// 2. Property tests
// ---------------------------------------------------------------------

fn arb_class() -> impl Strategy<Value = QosClass> {
    prop_oneof![
        Just(QosClass::Latency),
        Just(QosClass::Throughput),
        Just(QosClass::Background),
    ]
}

fn arb_loads() -> impl Strategy<Value = Vec<TenantLoad>> {
    prop::collection::vec(
        (arb_class(), 1u32..6, 1usize..25, 200usize..4000, 1u64..40).prop_map(
            |(class, credits, requests, max_bytes, gap_k)| {
                TenantLoad::new(
                    TenantSpec::new(
                        &format!("t{credits}-{requests}-{max_bytes}"),
                        class,
                        credits,
                    ),
                    gap_k as f64 * 5_000.0,
                    PayloadDist::new(CorpusKind::Logs, 64, max_bytes, 1.2),
                    requests,
                )
            },
        ),
        1..5,
    )
    .prop_map(|mut loads| {
        // Tenant names must be unique for stream independence to be
        // meaningful; suffix with the index.
        for (i, l) in loads.iter_mut().enumerate() {
            l.spec.name = format!("{}-{i}", l.spec.name);
        }
        loads
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The generator is deterministic from its seed, and the whole storm
    /// (arrival + response trace) replays identically.
    #[test]
    fn storm_is_deterministic_from_seed(seed in 0u64..1000, loads in arb_loads()) {
        let cfg = StormConfig::default();
        let a = loadgen::run_storm(seed, &loads, &cfg);
        let b = loadgen::run_storm(seed, &loads, &cfg);
        prop_assert_eq!(LoadGen::arrivals(seed, &loads), LoadGen::arrivals(seed, &loads));
        prop_assert_eq!(&a.trace, &b.trace);
        prop_assert_eq!(a.makespan_cycles, b.makespan_cycles);
        prop_assert_eq!(a.jain_fairness.to_bits(), b.jain_fairness.to_bits());
    }

    /// Conservation for arbitrary tenant mixes and credit budgets: every
    /// arrival is admitted or rejected typed; everything admitted
    /// completes; credits return to budget at drain.
    #[test]
    fn storm_conserves_credits_for_arbitrary_mixes(seed in 0u64..1000, loads in arb_loads()) {
        let r = loadgen::run_storm(seed, &loads, &StormConfig::default());
        prop_assert_eq!(r.credit_violations, 0);
        for t in &r.tenants {
            prop_assert_eq!(
                t.generated,
                t.admitted + t.rejected_no_credit + t.rejected_queue_full
            );
            prop_assert_eq!(t.admitted, t.completed);
        }
    }

    /// Bounded wait: the DWRR scheduler never starves a non-empty queue.
    /// With B backlogged tenants, any tenant's head request is served
    /// within one full drain of every other tenant's round grants — we
    /// assert the much looser bound that each tenant is served at least
    /// once every `total_queued` batches while it has work queued.
    #[test]
    fn scheduler_never_starves_a_nonempty_queue(
        seed in 0u64..1000,
        shape in prop::collection::vec((1u64..17, 1usize..30, 100u64..50_000), 2..6),
    ) {
        use nx_core::service::sched::DwrrScheduler;
        let mut sched: DwrrScheduler<usize> = DwrrScheduler::new(8 << 10, 4096, 4);
        let mut rng = loadgen::StormRng::new(seed, "starve");
        let mut queued: Vec<usize> = Vec::new();
        for (weight, count, max_bytes) in &shape {
            let t = sched.add_tenant(*weight);
            queued.push(0);
            for _ in 0..*count {
                let bytes = 1 + rng.next_u64() % max_bytes;
                sched.push(t, t, bytes);
                queued[t] += 1;
            }
        }
        let mut waited: Vec<u64> = vec![0; queued.len()];
        let total: usize = queued.iter().sum();
        while let Some(batch) = sched.next_batch() {
            for (t, w) in waited.iter_mut().enumerate() {
                if queued[t] > 0 && t != batch.tenant {
                    *w += 1;
                    // Generous bound: tenant count × total backlog
                    // batches; a starved queue would blow far past it.
                    prop_assert!(
                        *w <= (queued.len() as u64 + 1) * total as u64,
                        "tenant {} starved ({} batches waited)", t, *w
                    );
                }
            }
            waited[batch.tenant] = 0;
            queued[batch.tenant] -= batch.items.len();
        }
        prop_assert!(queued.iter().all(|&q| q == 0));
    }
}

// ---------------------------------------------------------------------
// 3. Chaos battery: the fault injector through the service path
// ---------------------------------------------------------------------

#[test]
fn chaos_storm_serves_all_tenants_without_credit_leaks() {
    let mut loads = storm_loads();
    loads.push(hog_load());
    let inj = nx_core::FaultInjector::new(
        FaultPlan::seeded(99, FaultRates::sweep(0.08)),
        RecoveryPolicy::default(),
    );
    let clean = loadgen::run_storm(13, &loads, &StormConfig::default());
    let r = loadgen::run_storm_faulted(13, &loads, &StormConfig::default(), &inj);
    // The storm actually hit faults (worker deaths, CSB storms, stalls)…
    assert!(
        r.retries + r.fallbacks + r.worker_deaths > 10,
        "chaos storm too quiet: retries={} fallbacks={} deaths={}",
        r.retries,
        r.fallbacks,
        r.worker_deaths
    );
    // …yet every tenant keeps completing work (degrade-to-serial, never
    // drop), no credits leak across recovery, and fairness holds a floor.
    assert_eq!(r.credit_violations, 0);
    for t in &r.tenants {
        assert!(t.completed > 0, "tenant {} starved under chaos", t.name);
        assert_eq!(t.admitted, t.completed, "tenant {} lost work", t.name);
    }
    assert!(
        r.jain_fairness >= 0.75,
        "fairness collapsed under chaos: {}",
        r.jain_fairness
    );
    // Sanity: chaos costs time, it does not create it.
    assert!(r.makespan_cycles >= clean.makespan_cycles / 2);
}

#[test]
fn chaos_threaded_service_recovers_and_conserves() {
    // Threaded path: deterministic seeded faults with software fallback
    // on — every admitted request must still complete Ok.
    let nx = Nx::with_faults(
        nx_accel::AccelConfig::power9(),
        FaultPlan::seeded(3, FaultRates::sweep(0.1)),
        RecoveryPolicy::default(),
    );
    let service = nx.service(ServiceConfig::default());
    let w = service.open_window(TenantSpec::new("chaos", QosClass::Latency, 16));
    let b = service.open_window(TenantSpec::new("bulk", QosClass::Background, 8));
    let mut tickets = Vec::new();
    for i in 0..30u64 {
        let data = CorpusKind::Logs.generate(i, 8_000);
        if let Ok(t) = w.submit(data, Format::Gzip) {
            tickets.push(t);
        }
        if i % 3 == 0 {
            let data = CorpusKind::Text.generate(i, 30_000);
            if let Ok(t) = b.submit(data, Format::Gzip) {
                tickets.push(t);
            }
        }
        // Open loop with occasional drain so credits recycle.
        if i % 8 == 7 {
            for t in tickets.drain(..) {
                t.wait().expect("recovery must absorb injected faults");
            }
        }
    }
    for t in tickets {
        t.wait().expect("recovery must absorb injected faults");
    }
    let fs = nx.fault_stats().expect("faulted handle");
    let injected = fs.page_fault_count()
        + fs.csb_error_count()
        + fs.partial_count()
        + fs.queue_overflow_count()
        + fs.timeout_count()
        + fs.corruption_count()
        + fs.unavailable_count();
    assert!(injected > 0, "no faults injected");
    assert!(
        service.credits_conserved(),
        "credits leaked across recovery"
    );
    service.close();
}

// ---------------------------------------------------------------------
// 4. Backpressure-counter attribution regression
// ---------------------------------------------------------------------

#[test]
fn backpressure_is_attributed_by_cause() {
    // Credit-reject: tiny window.
    let nx = Nx::power9();
    let service = nx.service(ServiceConfig::default());
    let w = service.open_window(TenantSpec::new("tiny", QosClass::Latency, 1));
    let mut held = Vec::new();
    let mut credit_rejects = 0;
    for i in 0..8u8 {
        match w.submit(vec![i; 50_000], Format::Gzip) {
            Ok(t) => held.push(t),
            Err(ServiceError::NoCredit) => credit_rejects += 1,
            Err(e) => panic!("unexpected {e}"),
        }
    }
    for t in held {
        let _ = t.wait();
    }
    service.close();
    assert!(credit_rejects > 0);
    assert_eq!(nx.stats().credit_rejects(), credit_rejects);
    assert_eq!(nx.stats().depth_rejects(), 0, "credit miscounted as depth");

    // Depth-reject: bounded async queue (the PR 2 try_submit path).
    let nx2 = Nx::power9();
    let session = nx2.async_session_bounded(1);
    let mut handles = Vec::new();
    let mut depth_rejects = 0;
    for _ in 0..32 {
        match session.try_submit(vec![0x5Au8; 400_000], Format::Gzip) {
            Ok(h) => handles.push(h),
            Err(nx_core::Error::QueueOverflow) => depth_rejects += 1,
            Err(e) => panic!("unexpected {e}"),
        }
    }
    for h in handles {
        let _ = h.wait();
    }
    session.close();
    assert!(depth_rejects > 0);
    assert_eq!(nx2.stats().depth_rejects(), depth_rejects);
    assert_eq!(
        nx2.stats().credit_rejects(),
        0,
        "depth miscounted as credit"
    );

    // Fault-reject: injected queue-overflow storm on the sync path.
    let rates = FaultRates {
        queue_overflow: 1.0,
        ..FaultRates::none()
    };
    let nx3 = Nx::with_faults(
        nx_accel::AccelConfig::power9(),
        FaultPlan::seeded(1, rates),
        RecoveryPolicy::default(),
    );
    let _ = nx3.compress(&[0u8; 4096], Format::Gzip);
    assert!(
        nx3.stats().fault_rejects() > 0,
        "injected paste rejections not attributed"
    );
    assert_eq!(nx3.stats().credit_rejects(), 0);
    assert_eq!(nx3.stats().depth_rejects(), 0);
}
