//! Canned-profile + preset-dictionary battery (issue 10).
//!
//! Covers the one-pass canned encode path end to end:
//!
//! 1. **Roundtrip**: every shipped content class, every framing, small
//!    (1–16 KiB) payloads — the traffic canned profiles target — decode
//!    byte-identically through our inflate; gzip-framed streams (which
//!    never carry a dictionary) also decode through the system
//!    `gzip -dc` referee when available.
//! 2. **FDICT semantics**: zlib streams from a dictionary-bearing
//!    profile demand the dictionary (typed `DictionaryRequired` without
//!    it) and decode with it — both one-shot and through a scratch
//!    session's transparent dictionary injection.
//! 3. **Session plumbing**: async queue, parallel shards and the
//!    multi-tenant service all honour a selected profile, reported as
//!    the `software-canned` config; an id the registry does not hold
//!    degrades to the ladder and counts a profile miss.
//! 4. **Registry wire format**: golden header, roundtrip, corruption
//!    and truncation rejection.
//! 5. **Property tests**: arbitrary payloads against freshly derived
//!    dictionary profiles roundtrip in all three framings.

use std::io::Write as _;
use std::process::{Command, Stdio};
use std::sync::Arc;

use nx_core::parallel::ParallelOptions;
use nx_core::service::{QosClass, ServiceConfig, TenantSpec};
use nx_core::{
    profiles, software, CompressOptions, Format, Nx, Profile, ProfileId, ProfileRegistry,
};
use nx_corpus::CorpusKind;
use nx_telemetry::{MetricValue, MetricsRegistry, TelemetrySink};
use proptest::prelude::*;

/// Decompresses a gzip member with the system `gzip -dc`, returning
/// `None` when the binary is unavailable so the battery degrades to
/// our-decoder-only instead of failing on minimal containers.
fn gzip_dc(gz: &[u8]) -> Option<Vec<u8>> {
    let mut child = Command::new("gzip")
        .arg("-dc")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .ok()?;
    let mut stdin = child.stdin.take().expect("stdin piped");
    let payload = gz.to_vec();
    let writer = std::thread::spawn(move || {
        let _ = stdin.write_all(&payload);
    });
    let out = child.wait_with_output().ok()?;
    writer.join().ok()?;
    if !out.status.success() {
        panic!("gzip -dc rejected a stream we produced");
    }
    Some(out.stdout)
}

/// Decodes a canned stream produced with `profile` under `format`,
/// honouring each framing's dictionary mode.
fn decode_canned(bytes: &[u8], format: Format, profile: &Profile) -> Vec<u8> {
    match format {
        Format::Gzip => software::decompress(bytes, format).expect("gzip canned decode"),
        // An empty profile dictionary means plain framing (no FDICT).
        Format::Zlib if profile.dict().is_empty() => {
            software::decompress(bytes, format).expect("plain zlib canned decode")
        }
        _ => software::decompress_with_dict(bytes, format, profile.dict()).expect("dict decode"),
    }
}

#[test]
fn canned_streams_roundtrip_every_class_and_format() {
    let nx = Nx::power9();
    let reg = profiles::default_registry();
    for kind in profiles::DEFAULT_CLASSES {
        let (id, profile) = reg.by_name(kind.name()).expect("shipped class");
        let opts = CompressOptions::new().with_profile(id);
        for (seed, len) in [(1u64, 1 << 10), (2, 4 << 10), (3, 16 << 10)] {
            let data = kind.generate(seed, len);
            for format in [Format::RawDeflate, Format::Zlib, Format::Gzip] {
                let out = nx.compress_with(&data, format, opts).expect("compress");
                assert_eq!(out.report.config_name, "software-canned");
                assert_eq!(
                    decode_canned(&out.bytes, format, profile),
                    data,
                    "{} {format:?} seed {seed} len {len}",
                    kind.name(),
                );
                if format == Format::Gzip {
                    if let Some(theirs) = gzip_dc(&out.bytes) {
                        assert_eq!(theirs, data, "gzip(1) rejected canned {}", kind.name());
                    }
                }
            }
        }
    }
}

#[test]
fn zlib_fdict_streams_demand_their_dictionary() {
    let nx = Nx::power9();
    let reg = profiles::default_registry();
    let (id, profile) = reg.by_name("json").expect("json profile");
    assert!(!profile.dict().is_empty(), "json profile must carry a dict");
    let data = CorpusKind::Json.generate(11, 2 << 10);
    let out = nx
        .compress_with(&data, Format::Zlib, CompressOptions::new().with_profile(id))
        .expect("compress");
    // Without the dictionary the stream must fail typed, not misdecode.
    assert!(
        software::decompress(&out.bytes, Format::Zlib).is_err(),
        "FDICT stream decoded without its dictionary"
    );
    // The wrong dictionary fails the DICTID check.
    assert!(
        software::decompress_with_dict(&out.bytes, Format::Zlib, b"not the dictionary").is_err(),
        "FDICT stream accepted a mismatched dictionary"
    );
    assert_eq!(
        software::decompress_with_dict(&out.bytes, Format::Zlib, profile.dict()).unwrap(),
        data
    );
}

#[test]
fn scratch_session_injects_the_profile_dictionary_on_decode() {
    let nx = Nx::power9();
    let reg = profiles::default_registry();
    let (id, profile) = reg.by_name("logs").expect("logs profile");
    let opts = CompressOptions::new().with_profile(id);
    let mut sess = nx.scratch_session_with(opts);
    assert!(sess.profile().is_some());
    let mut out = Vec::new();
    let mut back = Vec::new();
    for seed in 0..6u64 {
        let data = CorpusKind::Logs.generate(seed, 3 << 10);
        for format in [Format::RawDeflate, Format::Zlib, Format::Gzip] {
            out.clear();
            back.clear();
            sess.compress_into(&data, format, &mut out)
                .expect("compress");
            if format == Format::RawDeflate {
                // Raw framing has no in-band dictionary agreement; decode
                // one-shot with the profile dict.
                assert_eq!(
                    software::decompress_with_dict(&out, format, profile.dict()).unwrap(),
                    data
                );
            } else {
                // Zlib FDICT streams decode through the same session —
                // the dictionary is supplied transparently.
                sess.decompress_into(&out, format, &mut back)
                    .expect("decompress");
                assert_eq!(back, data, "{format:?} seed {seed}");
            }
        }
    }
}

#[test]
fn async_session_reports_the_canned_config() {
    let nx = Nx::power9();
    let reg = profiles::default_registry();
    let (id, profile) = reg.by_name("text").expect("text profile");
    let sess = nx.async_session();
    let data = CorpusKind::Text.generate(21, 6 << 10);
    let h = sess
        .submit_with(
            data.clone(),
            Format::Zlib,
            CompressOptions::new().with_profile(id),
        )
        .expect("submit");
    let done = h.wait().expect("wait");
    assert_eq!(done.report.config_name, "software-canned");
    assert_eq!(
        software::decompress_with_dict(&done.bytes, Format::Zlib, profile.dict()).unwrap(),
        data
    );
}

#[test]
fn parallel_session_routes_small_payloads_through_the_canned_path() {
    let nx = Nx::power9();
    let reg = profiles::default_registry();
    let (id, profile) = reg.by_name("code").expect("code profile");
    let sess = nx.parallel_session_with(
        ParallelOptions {
            workers: 4,
            chunk_size: 32 << 10,
        },
        CompressOptions::new().with_profile(id),
    );
    // Single-shard payload: one-pass canned bytes, identical to the
    // one-shot canned path.
    let small = CorpusKind::Code.generate(5, 8 << 10);
    let out = sess.compress(&small, Format::Zlib).expect("small");
    assert_eq!(
        out,
        software::compress_with_profile(&small, nx_deflate::Engine::Auto, profile, Format::Zlib)
    );
    assert_eq!(
        software::decompress_with_dict(&out, Format::Zlib, profile.dict()).unwrap(),
        small
    );
    // Multi-shard payload: the regular sharded ladder — decodable
    // without any dictionary.
    let large = CorpusKind::Code.generate(6, 200 << 10);
    let out = sess.compress(&large, Format::Gzip).expect("large");
    assert_eq!(sess.decompress(&out, Format::Gzip).unwrap(), large);
}

#[test]
fn service_tenants_bind_profiles_at_window_open() {
    let nx = Nx::power9();
    let reg = profiles::default_registry();
    let (id, profile) = reg.by_name("json").expect("json profile");
    let svc = nx.service(ServiceConfig::default());
    let canned = svc.open_window_with(
        TenantSpec::new("rpc", QosClass::Latency, 8),
        CompressOptions::new().with_profile(id),
    );
    let plain = svc.open_window(TenantSpec::new("bulk", QosClass::Throughput, 8));
    assert_eq!(canned.default_options().profile(), Some(id));
    assert_eq!(plain.default_options(), CompressOptions::default());
    let data = CorpusKind::Json.generate(31, 2 << 10);
    let a = canned
        .submit(data.clone(), Format::Zlib)
        .expect("admit")
        .wait()
        .expect("serve");
    assert_eq!(a.compressed.report.config_name, "software-canned");
    assert_eq!(
        software::decompress_with_dict(&a.compressed.bytes, Format::Zlib, profile.dict()).unwrap(),
        data
    );
    // The plain tenant's streams stay dictionary-free.
    let b = plain
        .submit(data.clone(), Format::Zlib)
        .expect("admit")
        .wait()
        .expect("serve");
    assert_eq!(
        software::decompress(&b.compressed.bytes, Format::Zlib).unwrap(),
        data
    );
    // A per-request override beats the window default.
    let c = canned
        .submit_with(data.clone(), Format::Zlib, CompressOptions::new())
        .expect("admit")
        .wait()
        .expect("serve");
    assert_eq!(
        software::decompress(&c.compressed.bytes, Format::Zlib).unwrap(),
        data
    );
    svc.close();
}

#[test]
fn unknown_profile_degrades_to_the_ladder_and_counts_a_miss() {
    let nx = Nx::power9();
    let before = nx_deflate::profile_counters().profile_misses;
    let data = CorpusKind::Text.generate(41, 4 << 10);
    let out = nx
        .compress_with(
            &data,
            Format::Gzip,
            CompressOptions::new().with_profile(ProfileId::new(u16::MAX)),
        )
        .expect("compress");
    assert_eq!(out.report.config_name, "software-fallback");
    assert_eq!(
        software::decompress(&out.bytes, Format::Gzip).unwrap(),
        data
    );
    assert!(
        nx_deflate::profile_counters().profile_misses > before,
        "a miss must be counted"
    );
}

#[test]
fn profile_metrics_export_through_the_registry() {
    let nx = Nx::power9().with_telemetry(TelemetrySink::enabled(MetricsRegistry::new()));
    let reg = profiles::default_registry();
    let (id, _) = reg.by_name("xmlish").expect("xmlish profile");
    let data = CorpusKind::Xmlish.generate(51, 4 << 10);
    nx.compress_with(&data, Format::Gzip, CompressOptions::new().with_profile(id))
        .expect("compress");
    let snapshot = nx
        .telemetry()
        .registry()
        .expect("registry attached")
        .snapshot();
    let get = |name: &str| {
        snapshot
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("{name} missing from snapshot"))
            .1
            .clone()
    };
    match get("nx_profile_canned_requests_total") {
        MetricValue::Counter(v) => assert!(v >= 1, "canned request must be counted"),
        other => panic!("unexpected metric shape: {other:?}"),
    }
    for name in [
        "nx_profile_canned_blocks_total",
        "nx_profile_fallback_blocks_total",
        "nx_profile_dict_encodes_total",
        "nx_profile_misses_total",
        "nx_profile_canned_bp",
    ] {
        let _ = get(name);
    }
}

#[test]
fn registry_wire_format_golden() {
    let reg = profiles::default_registry();
    let bytes = reg.to_bytes();
    // Golden header: magic "NXPR", version 1 LE, profile count LE.
    assert_eq!(&bytes[..4], b"NXPR");
    assert_eq!(&bytes[4..6], &1u16.to_le_bytes());
    assert_eq!(
        u16::from_le_bytes([bytes[6], bytes[7]]) as usize,
        profiles::DEFAULT_CLASSES.len()
    );
    let back = ProfileRegistry::from_bytes(&bytes).expect("roundtrip");
    assert_eq!(back.to_bytes(), bytes);
    // Corruption: bad magic and unknown version both fail typed.
    let mut bad = bytes.clone();
    bad[0] ^= 0xFF;
    assert!(ProfileRegistry::from_bytes(&bad).is_err());
    let mut bad = bytes.clone();
    bad[4] = 0xEE;
    assert!(ProfileRegistry::from_bytes(&bad).is_err());
    // Truncation at every byte short of the full length fails, never
    // panics (sampled stride keeps the test quick).
    for cut in (0..bytes.len()).step_by(97) {
        assert!(ProfileRegistry::from_bytes(&bytes[..cut]).is_err());
    }
}

#[test]
fn explicit_registry_overrides_the_default() {
    let kind = CorpusKind::Sensor;
    let samples: Vec<Vec<u8>> = (0..8u64)
        .map(|s| kind.generate(9_000 + s, 4 << 10))
        .collect();
    let refs: Vec<&[u8]> = samples.iter().map(|s| s.as_slice()).collect();
    let profile = Profile::derive(
        "sensor",
        &refs,
        nx_deflate::CompressionLevel::new(6).unwrap(),
        nx_deflate::profile::DEFAULT_DICT_CAP,
    )
    .expect("derive");
    let mut reg = ProfileRegistry::new();
    let id = reg.push(profile);
    let nx = Nx::power9().with_profiles(Arc::new(reg));
    let profile = nx.profile_registry().get(id).unwrap().clone();
    let data = kind.generate(1, 4 << 10);
    let out = nx
        .compress_with(&data, Format::Zlib, CompressOptions::new().with_profile(id))
        .expect("compress");
    assert_eq!(out.report.config_name, "software-canned");
    assert_eq!(decode_canned(&out.bytes, Format::Zlib, &profile), data);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary payloads against a freshly derived dictionary profile
    /// roundtrip in all three framings — the preset-dictionary analogue
    /// of the encode differential battery.
    #[test]
    fn derived_profiles_roundtrip_arbitrary_payloads(
        seed in any::<u64>(),
        len in 1usize..(16 << 10),
        class_ix in 0usize..4,
    ) {
        let class = [
            CorpusKind::Json,
            CorpusKind::Logs,
            CorpusKind::Text,
            CorpusKind::Code,
        ][class_ix];
        let samples: Vec<Vec<u8>> = (0..4u64)
            .map(|s| class.generate(seed ^ (0xD1C7 + s), 2 << 10))
            .collect();
        let refs: Vec<&[u8]> = samples.iter().map(|s| s.as_slice()).collect();
        let profile = Profile::derive(
            class.name(),
            &refs,
            nx_deflate::CompressionLevel::new(6).unwrap(),
            nx_deflate::profile::DEFAULT_DICT_CAP,
        )
        .expect("derive");
        let data = class.generate(seed, len);
        for format in [Format::RawDeflate, Format::Zlib, Format::Gzip] {
            let out = software::compress_with_profile(
                &data,
                nx_deflate::Engine::Auto,
                &profile,
                format,
            );
            prop_assert_eq!(
                decode_canned(&out, format, &profile),
                data.clone(),
                "{:?}", format
            );
        }
        // The gzip member (dictionary-free by construction) also passes
        // the system referee.
        let gz = software::compress_with_profile(
            &data,
            nx_deflate::Engine::Auto,
            &profile,
            Format::Gzip,
        );
        if let Some(theirs) = gzip_dc(&gz) {
            prop_assert_eq!(theirs, data);
        }
    }
}
